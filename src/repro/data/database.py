"""In-memory transaction database with pass accounting.

``D`` in the paper is "a set of variable length transactions over L" (the
leaf items), each with a unique TID. Here the TID is the transaction's index.
Transactions are stored in canonical itemset form (sorted tuples) so subset
tests against candidates are cheap and deterministic.

The class deliberately models the paper's IO cost: algorithms must go through
:meth:`TransactionDatabase.scan` to read the data, and every completed
iteration increments :attr:`TransactionDatabase.scans`. The ablation bench A6
uses this to verify the Naive miner's ``2n`` passes against the Improved
miner's ``n + 1``.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator

from ..errors import DatabaseError
from ..itemset import Itemset, itemset


class TransactionDatabase:
    """A list of customer transactions with scan counting.

    Parameters
    ----------
    transactions:
        Iterable of item-id iterables. Each transaction is canonicalized
        (sorted, de-duplicated); empty transactions are rejected because
        they carry no information and would skew support fractions.
    """

    __slots__ = (
        "_transactions",
        "_scans",
        "_logical_scans",
        "_item_counts",
        "_vertical_index",
        "_shard_cache",
        "_epoch",
        "_epoch_rows",
    )

    def __init__(self, transactions: Iterable[Iterable[int]]) -> None:
        rows: list[Itemset] = []
        for index, raw in enumerate(transactions):
            row = itemset(raw)
            if not row:
                raise DatabaseError(f"transaction {index} is empty")
            rows.append(row)
        if not rows:
            raise DatabaseError("database must contain at least 1 transaction")
        self._transactions: tuple[Itemset, ...] = tuple(rows)
        self._scans = 0
        self._logical_scans = 0
        self._item_counts: dict[int, int] | None = None
        self._vertical_index = None
        self._shard_cache = None
        self._epoch = object()
        self._epoch_rows = self._transactions

    @classmethod
    def from_canonical_rows(cls, rows: Iterable[Itemset]) -> (
        "TransactionDatabase"
    ):
        """Build a database from rows that are *already canonical*.

        Trusted fast path used by sharding and slicing: rows must be
        sorted, de-duplicated, non-empty tuples (the invariant every row
        in an existing database already satisfies), and are stored
        without re-canonicalization. Prefer the regular constructor for
        untrusted input.
        """
        database = cls.__new__(cls)
        database._transactions = tuple(rows)
        database._scans = 0
        database._logical_scans = 0
        database._item_counts = None
        database._vertical_index = None
        database._shard_cache = None
        database._epoch = object()
        database._epoch_rows = database._transactions
        if not database._transactions:
            raise DatabaseError(
                "database must contain at least 1 transaction"
            )
        return database

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[Itemset]:
        """Iterate over all transactions, counting one full pass.

        The scan counter is incremented up-front: algorithms that scan are
        assumed to read the whole database (partial scans are not part of
        the paper's cost model). A ``scan()`` is simultaneously one
        *logical* pass (a counting pass in the paper's cost model) and one
        *physical* pass (an actual read of the rows); the ``"cached"``
        engine splits the two via :meth:`physical_scan` and
        :meth:`count_logical_pass`.
        """
        self._scans += 1
        self._logical_scans += 1
        return iter(self._transactions)

    def physical_scan(self) -> Iterator[Itemset]:
        """Read all rows, counting a *physical* pass only.

        Used by the vertical index cache (:mod:`repro.mining.vertical`)
        when it materializes or repairs bitmaps: the read is real IO but
        not an algorithmic counting pass.
        """
        self._scans += 1
        return iter(self._transactions)

    def count_logical_pass(self) -> None:
        """Record one *logical* counting pass served without reading rows."""
        self._logical_scans += 1

    def transaction(self, tid: int) -> Itemset:
        """Return the transaction with the given TID (its index)."""
        try:
            return self._transactions[tid]
        except IndexError:
            raise DatabaseError(f"unknown TID {tid}") from None

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[Itemset]:
        """Iterate *without* counting a pass (for tests and reports)."""
        return iter(self._transactions)

    def slice(self, start: int, stop: int) -> "TransactionDatabase":
        """A new database holding rows ``[start, stop)`` of this one.

        Rows are shared (no copy, no re-canonicalization). The slice is
        an independent database with its own pass counter starting at
        zero: scans of the slice — e.g. worker-local counting over one
        shard — do **not** increment the parent's :attr:`scans`. Callers
        modeling the paper's cost must account sharded passes at the
        parent (see :func:`repro.parallel.shards.plan_shards`, which
        records one parent pass for the whole plan).
        """
        rows = self._transactions[start:stop]
        if not rows:
            raise DatabaseError(
                f"slice [{start}, {stop}) of {len(self)} transactions "
                "is empty"
            )
        return TransactionDatabase.from_canonical_rows(rows)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, transactions: Iterable[Iterable[int]]) -> int:
        """Append transactions; returns the number of rows added.

        Rows are canonicalized exactly like the constructor's. The
        database keeps its *append epoch* (see :meth:`append_epoch`), so
        incrementally maintained caches recognize the growth as an
        append — they extend with :meth:`tail_rows` instead of
        rebuilding. The ``cache_token`` changes (the rows tuple is new),
        invalidating any cache that only understands whole-database
        fingerprints.
        """
        rows: list[Itemset] = []
        start = len(self._transactions)
        for index, raw in enumerate(transactions):
            row = itemset(raw)
            if not row:
                raise DatabaseError(f"transaction {start + index} is empty")
            rows.append(row)
        if not rows:
            return 0
        self.append_epoch()  # absorb any out-of-band rewrite first
        self._transactions = self._transactions + tuple(rows)
        self._epoch_rows = self._transactions
        if self._item_counts is not None:
            for row in rows:
                for item in row:
                    self._item_counts[item] = (
                        self._item_counts.get(item, 0) + 1
                    )
        return len(rows)

    def append_epoch(self) -> tuple[object, int]:
        """The database's append lineage: ``(epoch, n_rows)``.

        The *epoch* object is allocated at construction and preserved by
        :meth:`append` — two observations with the same epoch identity
        differ only by appended tail rows (never by rewritten history),
        so a cache synced at ``k`` rows needs only ``tail_rows(k)`` to
        catch up in O(append). Anything that replaces history gets a
        fresh epoch: a new database object, or — for tests and tools
        that swap ``_transactions`` out from under the database — the
        identity check against the last sanctioned rows tuple below,
        which allocates a new epoch on any out-of-band rewrite.
        """
        if self._transactions is not self._epoch_rows:
            self._epoch = object()
            self._epoch_rows = self._transactions
        return self._epoch, len(self._transactions)

    def tail_rows(self, start: int) -> tuple[Itemset, ...]:
        """Canonical rows from *start* on, **without** pass accounting.

        The incremental-maintenance read: callers pair it with
        :meth:`append_epoch` to absorb appends without a physical pass
        over the head of the database.
        """
        if not 0 <= start <= len(self._transactions):
            raise DatabaseError(
                f"tail start {start} outside [0, {len(self._transactions)}]"
            )
        return self._transactions[start:]

    # ------------------------------------------------------------------
    # Pass accounting
    # ------------------------------------------------------------------
    @property
    def scans(self) -> int:
        """Number of full *physical* passes made over the data so far."""
        return self._scans

    @property
    def logical_scans(self) -> int:
        """Number of *logical* counting passes.

        Equal to :attr:`scans` for the row-scanning engines; with the
        ``"cached"`` engine logical passes exceed physical ones, since
        most counts are served from bitmaps without reading rows.
        """
        return self._logical_scans

    def reset_scans(self) -> None:
        """Zero both pass counters (called between benchmark runs)."""
        self._scans = 0
        self._logical_scans = 0

    # ------------------------------------------------------------------
    # Cache fingerprinting
    # ------------------------------------------------------------------
    def cache_token(self) -> object:
        """An identity token for cache invalidation.

        The rows tuple itself: it is immutable, so a vertical index built
        against it stays valid exactly as long as the database still holds
        the same tuple object (or an equal one). Anything that swaps the
        rows out from under the database invalidates every cache keyed on
        the old token.
        """
        return self._transactions

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def items(self) -> frozenset[int]:
        """The set of distinct items occurring in any transaction."""
        return frozenset(self._count_items())

    def item_counts(self) -> dict[int, int]:
        """Absolute occurrence count of every item (cached; not a pass)."""
        return dict(self._count_items())

    def _count_items(self) -> dict[int, int]:
        if self._item_counts is None:
            counts: Counter[int] = Counter()
            for row in self._transactions:
                counts.update(row)
            self._item_counts = dict(counts)
        return self._item_counts

    def average_length(self) -> float:
        """Average transaction length |T|."""
        total = sum(len(row) for row in self._transactions)
        return total / len(self._transactions)

    def absolute(self, fraction: float) -> float:
        """Convert a fractional support threshold to an absolute count."""
        return fraction * len(self._transactions)

    def fraction(self, count: int) -> float:
        """Convert an absolute occurrence count to fractional support."""
        return count / len(self._transactions)

    def __repr__(self) -> str:
        return (
            f"TransactionDatabase(transactions={len(self)}, "
            f"items={len(self.items)}, "
            f"avg_length={self.average_length():.2f})"
        )
