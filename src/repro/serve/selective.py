"""On-demand rule generation around a single target item.

Materializing every rule of a large database is exactly what a serving
system wants to avoid; per Hahsler, Buchta & Hornik ("Selective
Association Rule Generation", Comput. Stat. 2008), rules *about one
item of interest* can be mined at query time by restricting the
level-wise search to the target's neighborhood instead of the full item
lattice. :func:`mine_selective` is that restriction wired into this
repo's machinery — the generalized counting, the negative-candidate
generator and the RI rule generator of :mod:`repro.core` — driven
through a :class:`~repro.core.session.MiningSession`, so every counting
engine (bitmap, cached, numpy, ``parallel:*``) works unchanged.

Pass schedule (all through ``session.count``):

1. one pass over all taxonomy nodes for the 1-itemset supports (the
   expectation ratios need them anyway);
2. one pass counting ``{seed, x}`` pairs, where the *seeds* are the
   target plus its large parent and siblings (the nodes whose presence
   in a large source itemset can put the target into a negative
   candidate — Cases 1–3 of §2.1.1) and ``x`` ranges over the large
   singles; items forming a large pair with a seed become the
   *neighborhood*, capped at ``max_neighbors`` by co-occurrence;
3. level-wise Apriori over the (small) neighborhood universe only —
   the selective restriction;
4. one final pass counting the negative candidates that contain the
   target, generated from the indexed sources that involve the target
   or its relatives.

Soundness: every rule returned is exact — supports, expectations and RI
all come from real counting passes over the full database — and appears
verbatim in a full (non-selective) mining run at the same thresholds.
Completeness is bounded by the neighborhood: rules whose side itemsets
involve items outside the ``max_neighbors`` strongest co-occurring
items are not explored, which is the selective trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util import check_fraction
from ..core.candidates import generate_negative_candidates
from ..core.negmining import (
    MiningStats,
    NegativeItemset,
    _build_stats,
    resolve_measure,
    select_negatives,
)
from ..core.rulegen import NegativeRule, generate_negative_rules
from ..core.session import MiningSession
from ..errors import ServingError
from ..itemset import Itemset, itemset
from ..mining.apriori import apriori_gen
from ..mining.itemset_index import LargeItemsetIndex
from ..mining.rules import AssociationRule, generate_rules
from ..obs import api as obs
from ..taxonomy.tree import Taxonomy


@dataclass(slots=True)
class SelectiveResult:
    """Everything one on-target selective run produces.

    Attributes
    ----------
    target:
        The item (or category) the run was restricted to.
    negative_rules, positive_rules:
        Rules mentioning the target, in the generators' canonical
        orders (descending RI / confidence).
    negatives:
        The confirmed negative itemsets behind the negative rules.
    large_itemsets:
        All large itemsets explored (all singles, plus every size >= 2
        itemset inside the neighborhood universe).
    neighborhood:
        The restricted item universe the lattice search ran over.
    stats:
        Pass/candidate accounting for the run.
    """

    target: int
    negative_rules: list[NegativeRule]
    positive_rules: list[AssociationRule]
    negatives: list[NegativeItemset]
    large_itemsets: LargeItemsetIndex
    neighborhood: tuple[int, ...]
    stats: MiningStats


def _lineage_related(taxonomy: Taxonomy, a: int, b: int) -> bool:
    """True when one of *a*, *b* is a taxonomy ancestor of the other."""
    if a not in taxonomy or b not in taxonomy:
        return False
    return taxonomy.is_ancestor(a, b) or taxonomy.is_ancestor(b, a)


def _target_relatives(
    taxonomy: Taxonomy, target: int, large: set[int]
) -> set[int]:
    """The large nodes whose presence in a source can yield the target.

    A negative candidate contains the target when the source itemset
    kept it (source contains the target), a children-case replacement
    specialized the target's parent into it, or a sibling-case
    replacement swapped one of its siblings for it — so those are the
    nodes selective candidate generation must treat as seeds.
    """
    seeds = {target}
    parent = taxonomy.parent(target)
    if parent is not None and parent in large:
        seeds.add(parent)
    seeds.update(
        sibling for sibling in taxonomy.siblings(target)
        if sibling in large
    )
    return seeds


def mine_selective(
    database,
    taxonomy: Taxonomy,
    target: int,
    minsup: float,
    minri: float,
    minconf: float = 0.5,
    session: MiningSession | None = None,
    max_size: int | None = None,
    max_neighbors: int = 32,
    max_sibling_replacements: int | None = None,
    prune_small_antecedents: bool = True,
    measure=None,
) -> SelectiveResult:
    """Mine the rules mentioning *target* without a full mining run.

    Parameters
    ----------
    database, taxonomy:
        The data and domain knowledge, as for the offline miners.
    target:
        A taxonomy node id (leaf item or category). Must be a large
        single at *minsup* for any rule to exist; a small target
        returns an empty result after one counting pass.
    minsup, minri, minconf:
        The usual thresholds (*minconf* applies to the positive rules).
    session:
        The :class:`~repro.core.session.MiningSession` every counting
        pass goes through; ``None`` builds a serial default-engine
        session. The run is bracketed with
        ``begin_run(kind="serving")`` / ``publish_run``, so its
        headline counters land under ``serving.*``.
    max_size:
        Optional cap on explored itemset size.
    max_neighbors:
        Neighborhood budget: at most this many non-seed items enter the
        restricted universe, ranked by co-occurrence with the seeds.
    max_sibling_replacements, prune_small_antecedents:
        Passed through to candidate generation / Figure 4 pruning.
    measure:
        The interestingness measure judging candidates and rules — a
        registered spec or instance; ``None`` uses the session's bound
        measure (the registry default for a fresh session), so a
        service configured with ``--measure`` serves selective rules
        consistent with its offline index.

    Returns
    -------
    SelectiveResult
    """
    check_fraction(minsup, "minsup")
    check_fraction(minri, "minri")
    check_fraction(minconf, "minconf")
    if max_neighbors < 1:
        raise ServingError(
            f"max_neighbors must be >= 1, got {max_neighbors}"
        )
    if target not in taxonomy:
        raise ServingError(
            f"unknown selective target {target!r}: not a taxonomy node"
        )
    if session is None:
        session = MiningSession(database, taxonomy)
    measure = resolve_measure(measure, session)
    session.begin_run(kind="serving")
    total = len(database)
    min_count = minsup * total
    start_physical = database.scans
    start_logical = getattr(database, "logical_scans", database.scans)

    with obs.span("serve.selective") as span:
        span.annotate("target", target)
        index, large_singles, passes = _count_singles(
            database, taxonomy, session, total, min_count
        )
        candidates: dict[Itemset, object] = {}
        negatives: list[NegativeItemset] = []
        neighborhood: tuple[int, ...] = ()
        batches = 0
        if target in large_singles:
            universe, passes2 = _build_universe(
                taxonomy, target, large_singles, session, total,
                min_count, index, max_neighbors,
            )
            passes += passes2
            neighborhood = tuple(sorted(universe))
            passes += _mine_universe_lattice(
                universe, taxonomy, session, total, min_count, index,
                max_size,
            )
            seeds = _target_relatives(taxonomy, target, large_singles)
            sources = [
                items for items in index
                if len(items) >= 2 and any(s in items for s in seeds)
            ]
            candidates = generate_negative_candidates(
                index,
                taxonomy,
                minsup,
                minri,
                sources=sources,
                max_size=max_size,
                max_sibling_replacements=max_sibling_replacements,
            )
            candidates = {
                items: candidate
                for items, candidate in candidates.items()
                if target in items
            }
            if candidates:
                counts = session.count(
                    sorted(candidates), restrict_to_candidate_items=True
                )
                passes += 1
                batches = 1
                negatives = select_negatives(
                    candidates,
                    counts,
                    total,
                    minsup,
                    minri,
                    measure=measure,
                    index=index,
                )
        negative_rules = [
            rule
            for rule in generate_negative_rules(
                negatives, index, minri,
                prune_small_antecedents=prune_small_antecedents,
                measure=measure,
                minsup=minsup,
            )
            if target in rule.items
        ]
        positive_rules = [
            rule
            for rule in generate_rules(index, minconf)
            if target in rule.antecedent or target in rule.consequent
        ]
        span.annotate("neighborhood", len(neighborhood))
        span.annotate("negative_rules", len(negative_rules))
        span.annotate("positive_rules", len(positive_rules))

    logical_now = getattr(database, "logical_scans", database.scans)
    stats = _build_stats(
        logical_now - start_logical,
        index,
        candidates,
        negatives,
        batches,
        session.parallel_stats,
        physical_passes=database.scans - start_physical,
        cache=session.cache_stats,
    )
    session.publish_run(stats)
    return SelectiveResult(
        target=target,
        negative_rules=negative_rules,
        positive_rules=positive_rules,
        negatives=negatives,
        large_itemsets=index,
        neighborhood=neighborhood,
        stats=stats,
    )


def _count_singles(
    database, taxonomy, session, total, min_count
) -> tuple[LargeItemsetIndex, set[int], int]:
    """Pass 1: supports of every node; index the large singles."""
    nodes: set[int] = set(database.items)
    nodes.update(
        taxonomy.ancestor_closure(
            item for item in nodes if item in taxonomy
        )
    )
    singles = [(node,) for node in sorted(nodes)]
    counts = session.count(singles)
    index = LargeItemsetIndex()
    large: set[int] = set()
    for items, count in counts.items():
        if count >= min_count:
            index.add(items, count / total)
            large.add(items[0])
    return index, large, 1


def _build_universe(
    taxonomy, target, large_singles, session, total, min_count, index,
    max_neighbors,
) -> tuple[set[int], int]:
    """Pass 2: seed pairs -> the restricted neighborhood universe.

    Neighbors are ranked by their strongest co-occurrence count with
    any seed (ties by node id) and capped at *max_neighbors*; their
    large pair supports are folded into *index* so the lattice stage
    does not recount them.
    """
    seeds = _target_relatives(taxonomy, target, large_singles)
    pairs = sorted(
        {
            itemset((seed, other))
            for seed in seeds
            for other in large_singles
            if other != seed
            and not _lineage_related(taxonomy, seed, other)
        }
    )
    if not pairs:
        return set(seeds), 0
    counts = session.count(pairs, restrict_to_candidate_items=True)
    strength: dict[int, int] = {}
    for items, count in counts.items():
        if count < min_count:
            continue
        index.add(items, count / total)
        for member in items:
            if member not in seeds:
                strength[member] = max(strength.get(member, 0), count)
    ranked = sorted(strength, key=lambda node: (-strength[node], node))
    return set(seeds) | set(ranked[:max_neighbors]), 1


def _mine_universe_lattice(
    universe, taxonomy, session, total, min_count, index, max_size
) -> int:
    """Level-wise Apriori restricted to *universe*; returns pass count.

    Lineage pairs (an item with its own ancestor) are excluded exactly
    as Cumulate excludes them — their support equals the descendant
    subset's — and Apriori's downward-closure prune then keeps every
    larger lineage-carrying itemset out automatically.
    """
    if max_size is not None and max_size < 2:
        return 0
    members = sorted(universe)
    wanted = [
        itemset((a, b))
        for i, a in enumerate(members)
        for b in members[i + 1:]
        if not _lineage_related(taxonomy, a, b)
    ]
    missing = [pair for pair in wanted if pair not in index]
    passes = 0
    if missing:
        counts = session.count(missing, restrict_to_candidate_items=True)
        passes += 1
        for items, count in counts.items():
            if count >= min_count:
                index.add(items, count / total)
    frontier = [pair for pair in wanted if pair in index]
    size = 3
    while frontier and (max_size is None or size <= max_size):
        candidates = apriori_gen(frontier)
        if not candidates:
            break
        counts = session.count(
            candidates, restrict_to_candidate_items=True
        )
        passes += 1
        frontier = []
        for items, count in counts.items():
            if count >= min_count:
                index.add(items, count / total)
                frontier.append(items)
        frontier.sort()
        size += 1
    return passes
