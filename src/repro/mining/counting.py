"""Deprecated compat shim over the engine registry.

Historically this module held every counting engine and the
``count_supports`` free function that routed between them through a
string ``engine=`` kwarg plus ~8 companion kwargs. The engines now live
in :mod:`repro.mining.engines` behind the :class:`~repro.mining.engines.
CountingEngine` protocol, and callers are expected to bind policy once
in a :class:`~repro.core.session.MiningSession` and call
``session.count()``.

:func:`count_supports` is kept as a thin delegating shim so existing
code keeps working: the plain form
``count_supports(rows, candidates, taxonomy)`` stays supported (and
silent), while passing any of the legacy engine-policy kwargs
(``engine=``, ``n_jobs=``, ``use_cache=``, …) emits a
:class:`DeprecationWarning`. The kwarg path is scheduled for removal
(see CHANGES.md for the horizon); internal code no longer uses it and
CI runs one test leg with ``-W error::DeprecationWarning`` to keep it
that way.

``ENGINES`` / ``SERIAL_ENGINES`` / ``DEFAULT_ENGINE`` are re-exported
from the registry for compatibility.
"""

from __future__ import annotations

import warnings
from collections.abc import Collection

from ..itemset import Itemset
from ..taxonomy.tree import Taxonomy
from .engines import (  # noqa: F401  (compat re-exports)
    DEFAULT_ENGINE,
    ENGINES,
    SERIAL_ENGINES,
    EnginePolicy,
    count_pass,
    create_engine,
)

_UNSET = object()

#: (kwarg name, EnginePolicy field?) for the deprecated policy kwargs.
_POLICY_KWARGS = (
    "engine",
    "n_jobs",
    "shard_rows",
    "use_cache",
    "cache_bytes",
    "packed",
    "batch_words",
)


def count_supports(
    transactions,
    candidates: Collection[Itemset],
    taxonomy: Taxonomy | None = None,
    engine=_UNSET,
    restrict_to_candidate_items: bool = False,
    n_jobs=_UNSET,
    shard_rows=_UNSET,
    parallel_stats=_UNSET,
    use_cache=_UNSET,
    cache_bytes=_UNSET,
    cache_stats=_UNSET,
    packed=_UNSET,
    batch_words=_UNSET,
) -> dict[Itemset, int]:
    """Count how many transactions contain each candidate (deprecated
    kwargs path).

    The plain form — *transactions*, *candidates*, optional *taxonomy*
    and *restrict_to_candidate_items* — counts with the default engine
    and stays fully supported. Every other kwarg mirrors a
    :class:`~repro.core.session.MiningSession` /
    :class:`~repro.mining.engines.EnginePolicy` field and is deprecated:
    bind the policy once in a session and call ``session.count()``
    instead. Passing any of them warns; behavior is unchanged
    (``n_jobs > 1`` still auto-shards, ``engine="parallel"`` still means
    one worker per CPU).

    Returns the absolute count per candidate; every candidate appears
    as a key, with 0 when unsupported.
    """
    legacy = {
        name: value
        for name, value in (
            ("engine", engine),
            ("n_jobs", n_jobs),
            ("shard_rows", shard_rows),
            ("parallel_stats", parallel_stats),
            ("use_cache", use_cache),
            ("cache_bytes", cache_bytes),
            ("cache_stats", cache_stats),
            ("packed", packed),
            ("batch_words", batch_words),
        )
        if value is not _UNSET
    }
    if legacy:
        warnings.warn(
            "count_supports(" + ", ".join(sorted(legacy)) + "=...) is "
            "deprecated: bind the engine policy once in a "
            "repro.core.session.MiningSession and call session.count() "
            "(see CHANGES.md for the removal horizon)",
            DeprecationWarning,
            stacklevel=2,
        )
    policy = EnginePolicy(
        **{
            name: legacy[name]
            for name in _POLICY_KWARGS
            if name in legacy and name != "engine"
        }
    )
    resolved = create_engine(legacy.get("engine", DEFAULT_ENGINE), policy)
    return count_pass(
        resolved,
        resolved.prepare(transactions, taxonomy),
        candidates,
        restrict_to_candidate_items=restrict_to_candidate_items,
        cache_stats=legacy.get("cache_stats"),
        parallel_stats=legacy.get("parallel_stats"),
    )
