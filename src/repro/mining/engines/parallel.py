"""The ``parallel`` engines: sharding wrapper and shared-memory kernel.

Unlike the serial engines, ``parallel`` is not a counting strategy of
its own — it wraps any shardable inner engine, splits each pass into
contiguous row ranges, counts every shard with the inner engine in a
worker process and sums the partial counts (bit-identical to a serial
count; see :mod:`repro.parallel`). The spec syntax is
``"parallel:<inner>"`` (``"parallel"`` alone wraps the default engine),
so ``--engine parallel:numpy`` runs the bit-packed kernel per shard and
``"parallel:cached"`` ships shard-local vertical indexes.

``parallel-shm`` (:class:`ParallelShmEngine`) is the zero-copy
evolution of ``parallel:numpy``: the driver packs the database once,
publishes the word matrix into OS shared memory
(:mod:`repro.parallel.shm`), and a persistent worker pool attaches the
segment and counts candidate *batches* against the whole matrix —
nothing row-shaped ever crosses a pipe. It is reachable either by spec
(``--engine parallel-shm``) or by the ``shm=True`` policy knob on a
parallel configuration (DESIGN.md §11).
"""

from __future__ import annotations

import atexit
import weakref
from collections.abc import Collection
from dataclasses import replace

from ...errors import ConfigError
from ...itemset import Itemset
from ...obs import api as obs
from .base import (
    Capabilities,
    CountingEngine,
    EnginePolicy,
    EngineState,
    create_engine,
    register_engine,
)

#: The inner engine used by a bare ``"parallel"`` spec.
DEFAULT_INNER = "bitmap"


@register_engine("parallel")
class ParallelEngine(CountingEngine):
    """Shard the pass across worker processes; sum partial counts.

    ``n_jobs=None`` means one worker per CPU; ``n_jobs=1`` (or a single
    shard) degrades to an in-process serial count with no worker
    transport. Worker failures follow the pool's retry-then-serial
    ladder.
    """

    capabilities = Capabilities(shardable=False)
    wraps = True

    def __init__(
        self,
        inner: CountingEngine | None = None,
        n_jobs: int | None = None,
        shard_rows: int | None = None,
        pool_config=None,
    ) -> None:
        if inner is None:
            inner = create_engine(DEFAULT_INNER)
        if inner.wraps or not inner.capabilities.shardable:
            raise ConfigError(
                f"engine 'parallel' cannot wrap {inner.spec!r}; the "
                f"inner engine must be a shardable serial engine"
            )
        self.inner = inner
        self.n_jobs = n_jobs
        self.shard_rows = shard_rows
        self.pool_config = pool_config

    @classmethod
    def from_policy(
        cls, policy: EnginePolicy, inner=None
    ) -> "ParallelEngine":
        if inner is None:
            inner = DEFAULT_INNER
        if not isinstance(inner, CountingEngine):
            # The inner engine runs one shard in one process: build it
            # from the same policy, minus the parallelism fields.
            inner = create_engine(
                inner, replace(policy, n_jobs=None)
            )
        return cls(
            inner,
            n_jobs=policy.n_jobs,
            shard_rows=policy.shard_rows,
        )

    @property
    def spec(self) -> str:
        return f"parallel:{self.inner.spec}"

    @property
    def wants_cache_stats(self) -> bool:
        return self.inner.wants_cache_stats

    @property
    def wants_parallel_stats(self) -> bool:
        return True

    def count(
        self,
        state: EngineState,
        candidates: Collection[Itemset],
        *,
        restrict_to_candidate_items: bool = False,
        cache_stats=None,
        parallel_stats=None,
    ) -> dict[Itemset, int]:
        # Imported lazily: repro.parallel.engine imports this package.
        from ...parallel.engine import parallel_count_supports

        return parallel_count_supports(
            state.transactions,
            candidates,
            taxonomy=state.taxonomy,
            engine=self.inner,
            restrict_to_candidate_items=restrict_to_candidate_items,
            n_jobs=self.n_jobs,
            shard_rows=self.shard_rows,
            pool_config=self.pool_config,
            stats=parallel_stats,
            cache_stats=cache_stats,
        )


def _numpy_available() -> bool:
    """Patchable probe so spec validation can be tested without NumPy."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover — NumPy is installed in CI
        return False
    return True


#: Engines with live pools/segments; the atexit sweep closes whatever a
#: caller forgot so no /dev/shm name outlives the process.
_LIVE_SHM_ENGINES: "weakref.WeakSet[ParallelShmEngine]" = weakref.WeakSet()


def _close_live_shm_engines() -> None:
    for engine in list(_LIVE_SHM_ENGINES):
        engine.close()


atexit.register(_close_live_shm_engines)

_NO_TOKEN = object()


@register_engine("parallel-shm")
class ParallelShmEngine(CountingEngine):
    """Zero-copy shared-memory counting over a persistent worker pool.

    The driver packs the database into one
    :class:`~repro.mining.bitpack.PackedMatrix`, publishes it via
    ``multiprocessing.shared_memory``, and keeps ``n_jobs`` long-lived
    workers attached (:class:`~repro.parallel.pool.
    PersistentWorkerPool`). Each pass ships only candidate batches out
    and count vectors back; candidates are partitioned (not rows), so
    every candidate is counted once over all rows and the merge is a
    plain union — bit-identical to serial by construction.

    The packed matrix persists across passes like the cached engine:
    the physical build happens once per database fingerprint, each
    ``count()`` records one logical pass, and a mutated database
    (changed ``cache_token()``) triggers a re-publish — a fresh segment,
    a ``setup`` message to the pool, and an unlink of the old name.
    ``n_jobs=1`` bypasses shared memory and workers entirely and counts
    in-process against the same matrix. Call :meth:`close` (or let the
    atexit sweep do it) to stop the workers and unlink the segment.
    """

    capabilities = Capabilities(
        packed=True,
        caching=True,
        shardable=False,
        needs_numpy=True,
        shared_memory=True,
    )

    def __init__(
        self,
        n_jobs: int | None = None,
        batch_words: int | None = None,
        pool_config=None,
    ) -> None:
        self.n_jobs = n_jobs
        self.batch_words = batch_words
        self.pool_config = pool_config
        self._matrix = None
        self._token = _NO_TOKEN
        self._shared = None
        self._pool = None
        self._pool_taxonomy = None
        self._fingerprint = 0
        self._dirty = False
        _LIVE_SHM_ENGINES.add(self)

    @classmethod
    def from_policy(
        cls, policy: EnginePolicy, inner=None
    ) -> "ParallelShmEngine":
        cls._reject_inner(inner)
        if not _numpy_available():
            raise ConfigError(
                "engine 'parallel-shm' requires NumPy (the packed word "
                "matrix is published through the bit-packed kernel); "
                "install numpy or choose a pure-Python engine"
            )
        return cls(
            n_jobs=policy.n_jobs,
            batch_words=policy.batch_words,
        )

    @property
    def wants_parallel_stats(self) -> bool:
        return True

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Stop workers, drop the matrix, unlink the segment."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
        self._pool_taxonomy = None
        self._matrix = None
        self._token = _NO_TOKEN
        shared, self._shared = self._shared, None
        if shared is not None:
            shared.close()
            shared.unlink()

    def __del__(self) -> None:  # pragma: no cover — GC timing
        try:
            self.close()
        except Exception:
            pass

    # -- counting ------------------------------------------------------

    def count(
        self,
        state: EngineState,
        candidates: Collection[Itemset],
        *,
        restrict_to_candidate_items: bool = False,
        cache_stats=None,
        parallel_stats=None,
    ) -> dict[Itemset, int]:
        # Like the numpy/cached engines, taxonomy candidates are matched
        # by descendant-OR, so restrict_to_candidate_items is moot.
        from ...parallel.pool import resolve_n_jobs

        candidate_list = list(candidates)
        if not candidate_list:
            return {}
        jobs = resolve_n_jobs(self.n_jobs)
        matrix = self._ensure_matrix(state, cache_stats)
        source = state.transactions
        if hasattr(source, "count_logical_pass"):
            source.count_logical_pass()
        if jobs == 1:
            # Serial bypass: no segment, no workers, same kernel.
            if parallel_stats is not None:
                parallel_stats.serial_tasks += 1
            return matrix.count(
                candidate_list,
                taxonomy=state.taxonomy,
                batch_words=self.batch_words,
                stats=cache_stats,
            )
        pool = self._ensure_pool(state.taxonomy, jobs, parallel_stats)
        observe = obs.enabled()
        n_batches = min(jobs, len(candidate_list))
        size = -(-len(candidate_list) // n_batches)
        batches = [
            candidate_list[start:start + size]
            for start in range(0, len(candidate_list), size)
        ]
        with obs.span("parallel.shm.map") as span:
            span.annotate("batches", len(batches))
            span.annotate("jobs", jobs)
            span.annotate("candidates", len(candidate_list))
            pairs = pool.map(
                [(batch, observe) for batch in batches]
            )
        counts: dict[Itemset, int] = {}
        for batch, (vector, worker_registry) in zip(batches, pairs):
            obs.merge_registry(worker_registry)
            counts.update(zip(batch, vector))
        for seconds in pool.drain_attach_seconds():
            obs.observe("parallel.shm.attach_s", seconds)
        if parallel_stats is not None:
            parallel_stats.shm_batches += len(batches)
            parallel_stats.absorb(pool.drain_stats())
        return counts

    # -- internals -----------------------------------------------------

    def _ensure_matrix(self, state: EngineState, cache_stats):
        """The packed matrix for the bound source, (re)built on change."""
        from ...mining.bitpack import PackedMatrix

        source = state.transactions
        token_fn = getattr(source, "cache_token", None)
        token = token_fn() if token_fn is not None else source
        if self._matrix is not None and (
            token is self._token or token == self._token
        ):
            if cache_stats is not None:
                cache_stats.hits += 1
            return self._matrix
        if hasattr(source, "physical_scan"):
            rows = list(source.physical_scan())
        elif hasattr(source, "scan"):  # pragma: no cover — odd database
            rows = list(source.scan())
        elif isinstance(source, (list, tuple)):
            rows = source
        else:
            rows = list(source)
        mutated = self._matrix is not None
        with obs.span("parallel.shm.pack") as span:
            matrix = PackedMatrix.from_rows(rows)
            span.annotate("rows", matrix.n_rows)
        if cache_stats is not None:
            cache_stats.misses += 1
            if mutated:
                cache_stats.invalidations += 1
        self._matrix = matrix
        self._token = token
        self._fingerprint += 1
        self._dirty = True
        return matrix

    def _ensure_pool(self, taxonomy, jobs: int, parallel_stats):
        """The persistent pool, attached to the current segment."""
        from ...parallel.pool import PersistentWorkerPool, PoolConfig
        from ...parallel.shm import SharedPackedMatrix

        if self._shared is None or self._dirty:
            with obs.span("parallel.shm.publish") as span:
                shared = SharedPackedMatrix.create(
                    self._matrix, fingerprint=self._fingerprint
                )
                span.annotate("bytes", shared.nbytes)
                span.annotate("fingerprint", self._fingerprint)
            # The engine's own matrix becomes a view over the segment:
            # one copy of the words in the whole process tree, and the
            # serial fallback counts against the exact published bits.
            self._matrix = shared.matrix
            old, self._shared = self._shared, shared
            self._dirty = False
            if parallel_stats is not None:
                parallel_stats.shm_publishes += 1
                parallel_stats.shm_bytes = max(
                    parallel_stats.shm_bytes, shared.nbytes
                )
            if self._pool is not None:
                self._pool.reconfigure(self._setup_payload(taxonomy))
                self._pool_taxonomy = taxonomy
            if old is not None:
                # Attached workers keep their (now re-pointed) mappings;
                # unlink drops the name, the pages die with the last
                # detach.
                old.close()
                old.unlink()
        if self._pool is not None and taxonomy is not self._pool_taxonomy:
            self._pool.reconfigure(self._setup_payload(taxonomy))
            self._pool_taxonomy = taxonomy
        if self._pool is None:
            from ...parallel.shm import shm_worker_count, shm_worker_setup

            config = self.pool_config or PoolConfig(n_jobs=jobs)
            self._pool = PersistentWorkerPool(
                config,
                setup_func=shm_worker_setup,
                setup_payload=self._setup_payload(taxonomy),
                func=shm_worker_count,
                fallback=self._count_batch_local,
            )
            self._pool_taxonomy = taxonomy
        return self._pool

    def _setup_payload(self, taxonomy):
        return (self._shared.handle, taxonomy, self.batch_words)

    def _count_batch_local(self, payload):
        """Parent-side serial fallback: one batch, driver matrix."""
        batch, _observe = payload
        counts = self._matrix.count(
            batch,
            taxonomy=self._pool_taxonomy,
            batch_words=self.batch_words,
        )
        return [counts[candidate] for candidate in batch], None
