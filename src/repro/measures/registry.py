"""The interestingness-measure protocol, capability flags and registry.

The paper's RI is one point in a design space of negative-rule
semantics; this registry makes the whole space pluggable the same way
:mod:`repro.mining.engines` made support counting pluggable. An
:class:`InterestMeasure` answers the two questions the pipeline asks —
*is this counted candidate a negative itemset?* and *how strong is this
rule split?* — while the counting machinery, the candidate generator
and the pass schedule stay untouched. Measures self-register under a
name with :func:`register_measure`, which is the single source of truth
the CLI (``python -m repro measures``), the cross-measure comparison
layer (:mod:`repro.measures.compare`) and the property tests enumerate.

Specs
-----
A measure *spec* is a plain registered name (``"ri"``,
``"kong-interest"``, ``"coherent"``); measures do not compose, so there
is no ``":"`` syntax. :func:`create_measure` resolves a spec plus a
:class:`MeasurePolicy` into a ready measure object, mirroring
``create_engine``.

Semantics contract
------------------
``admits_itemset`` judges one *counted candidate*: its taxonomy-derived
expected support, its measured actual support, and the single-item
supports of its members (only materialized for measures whose
capabilities declare ``needs_taxonomy_expectation=False`` — the RI path
never pays the lookups). ``rule_score`` maps one antecedent/consequent
split to the measure's strength value (stored in ``NegativeRule.ri``
and used for ranking); ``admits_rule`` applies the measure's rule
threshold to that score. Measures whose score is *not* antitone in the
antecedent support must declare ``monotone_prune=False`` so rule
generation keeps extending consequents past a failed score.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar

from ..errors import ConfigError


@dataclass(frozen=True, slots=True)
class MeasureCapabilities:
    """Declared properties of one interestingness measure.

    Attributes
    ----------
    needs_taxonomy_expectation:
        The itemset predicate consumes the taxonomy-derived expected
        support (the paper's ``E[sup]``). When ``False`` the measure
        judges candidates from independence over single-item supports
        instead, and selection materializes those supports for it.
    supports_positive:
        The measure's framework also admits positive rules (coherent
        rules do; RI is negative-only by construction).
    bounded_range:
        Scores live in a fixed finite interval (``[-1, 1]`` for the
        support-space measures); RI is unbounded above.
    monotone_prune:
        A failed rule score can never recover on a superset consequent
        (RI's antecedent-support monotonicity, Figure 4's pruning).
        Measures without this property are enumerated exhaustively.
    """

    needs_taxonomy_expectation: bool = True
    supports_positive: bool = False
    bounded_range: bool = False
    monotone_prune: bool = True

    def describe(self) -> str:
        """The set flags as a short comma-separated string."""
        names = [f.name for f in fields(self) if getattr(self, f.name)]
        return ", ".join(names) if names else "-"


@dataclass(frozen=True, slots=True)
class MeasurePolicy:
    """Run policy a measure is configured from (once, up front).

    The registry-side mirror of the measure-related ``MiningConfig``
    fields; :func:`create_measure` hands it to each measure class's
    ``from_policy`` so the class picks out the fields it understands
    and rejects the ones it cannot honor.
    """

    figure3_literal: bool = False


class InterestMeasure:
    """Base class and protocol for interestingness measures.

    Subclasses set :attr:`name` and :attr:`capabilities`, register with
    :func:`register_measure`, and implement :meth:`admits_itemset`,
    :meth:`rule_score` and :meth:`admits_rule`. They may override
    :meth:`from_policy` to consume policy fields.
    """

    name: ClassVar[str] = ""
    capabilities: ClassVar[MeasureCapabilities] = MeasureCapabilities()

    @property
    def spec(self) -> str:
        """The spec string that would recreate this measure's shape."""
        return self.name

    @classmethod
    def from_policy(cls, policy: MeasurePolicy) -> "InterestMeasure":
        """Build a measure from *policy*.

        The base implementation rejects the RI-specific
        ``figure3_literal`` knob; the RI measure overrides this to
        honor it.
        """
        if policy.figure3_literal:
            raise ConfigError(
                "figure3_literal is the RI measure's literal Figure 3 "
                f"predicate; measure {cls.name!r} does not support it"
            )
        return cls()

    def admits_itemset(
        self,
        expected: float,
        actual: float,
        singles: tuple[float, ...],
        minsup: float,
        minri: float,
    ) -> bool:
        """Judge one counted candidate as a negative itemset."""
        raise NotImplementedError

    def rule_score(
        self,
        expected: float,
        actual: float,
        antecedent_support: float,
        consequent_support: float,
    ) -> float:
        """The measure's strength of one antecedent/consequent split."""
        raise NotImplementedError

    def admits_rule(
        self, score: float, minsup: float | None, minri: float
    ) -> bool:
        """Apply the measure's rule threshold to a :meth:`rule_score`.

        *minsup* may be ``None`` for measures that do not need it (RI,
        coherent); measures that do raise :class:`ConfigError` when it
        is missing.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.spec!r}>"


_REGISTRY: dict[str, type[InterestMeasure]] = {}

DEFAULT_MEASURE = "ri"


def register_measure(name: str):
    """Class decorator: register an :class:`InterestMeasure` as *name*."""

    def decorate(cls: type[InterestMeasure]) -> type[InterestMeasure]:
        if name in _REGISTRY:
            raise ValueError(f"measure {name!r} is already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def registered_measures() -> dict[str, type[InterestMeasure]]:
    """Name -> measure class, in registration order (a copy)."""
    return dict(_REGISTRY)


def measure_names() -> tuple[str, ...]:
    """All registered measure names, in registration order."""
    return tuple(_REGISTRY)


def parse_spec(spec: str) -> str:
    """Validate a measure spec (a plain registered name)."""
    if not isinstance(spec, str):
        raise ConfigError(
            f"measure spec must be a string or InterestMeasure, got "
            f"{type(spec).__name__}"
        )
    if spec not in _REGISTRY:
        raise ConfigError(
            f"unknown interest measure {spec!r}; "
            f"choose from {measure_names()}"
        )
    return spec


def validate_spec(spec: "str | InterestMeasure") -> str:
    """Validate a measure spec and return it normalized (for configs)."""
    if isinstance(spec, InterestMeasure):
        return spec.spec
    return parse_spec(spec)


def create_measure(
    spec: "str | InterestMeasure",
    policy: MeasurePolicy | None = None,
) -> InterestMeasure:
    """Resolve a spec + policy into a ready measure object.

    An :class:`InterestMeasure` instance passes through unchanged (the
    policy, if any, must then already be baked into it).
    """
    if isinstance(spec, InterestMeasure):
        return spec
    if policy is None:
        policy = MeasurePolicy()
    name = parse_spec(spec)
    return _REGISTRY[name].from_policy(policy)


def _first_doc_line(cls: type) -> str:
    doc = cls.__doc__ or ""
    for line in doc.splitlines():
        line = line.strip()
        if line:
            return line
    return ""


def measure_table(markdown: bool = False) -> str:
    """A capability table of every registered measure.

    The text form backs ``python -m repro measures``; the markdown form
    (``--markdown``) is pasted into the README, so the docs can never
    drift from the registry.
    """
    flag_names = [f.name for f in fields(MeasureCapabilities)]
    header = ["measure", *flag_names, "description"]
    rows = []
    for name, cls in _REGISTRY.items():
        caps = cls.capabilities
        rows.append(
            [
                name,
                *[
                    ("yes" if getattr(caps, flag) else "-")
                    for flag in flag_names
                ],
                _first_doc_line(cls),
            ]
        )
    if markdown:
        lines = ["| " + " | ".join(header) + " |"]
        lines.append("|" + "|".join("---" for _ in header) + "|")
        for row in rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)
    widths = [
        max(len(str(cell)) for cell in column)
        for column in zip(header, *rows)
    ]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(header, widths))
    ]
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            )
        )
    return "\n".join(lines)


# Import the built-in measures so registration happens on first import
# of the registry; the import order fixes the registry (and table)
# order. Implementation modules must only depend on this module and
# leaf utilities — never on repro.core — so the miners can import the
# registry mid-initialization.
from . import ri as _ri  # noqa: E402,F401  (registration side effect)
from . import kong as _kong  # noqa: E402,F401
from . import coherent as _coherent  # noqa: E402,F401
