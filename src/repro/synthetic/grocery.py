"""A curated grocery world: named taxonomy + persona-driven demand.

The Section 3.1 generator produces statistically controlled but anonymous
data. For documentation, demos and interpretable tests this module
provides the opposite: a small hand-curated supermarket taxonomy with
readable names, and a *persona* demand model that plants realistic
positive and negative associations:

* every persona shops a few categories regularly (positive associations
  across categories, as in the paper's cluster model);
* within a category each persona is **brand loyal** with some
  probability — the mechanism behind the paper's motivating examples
  (Ruffles buyers drink Coke, so Ruffles is negatively associated with
  Pepsi).

Because the loyalties are declared explicitly, tests can assert that the
miner recovers exactly the planted negative associations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.database import TransactionDatabase
from ..errors import GenerationError
from ..taxonomy.builders import taxonomy_from_nested
from ..taxonomy.tree import Taxonomy

#: The store layout: department -> category -> brands.
GROCERY_TREE = {
    "beverages": {
        "cola": ["KolaRed", "KolaBlue"],
        "bottled water": ["ClearSpring", "AlpinePeak"],
        "coffee": ["MorningRoast", "DarkBean"],
    },
    "snacks": {
        "chips": ["CrispWave", "SaltRidge"],
        "cookies": ["ChocoBite", "OatRound"],
    },
    "breakfast": {
        "cereal": ["CornFlakelets", "BranBits"],
        "yogurt": ["CreamTop", "LightCup"],
    },
    "household": {
        "detergent": ["SudsMax", "EcoWash"],
        "paper goods": ["SoftRoll", "ValueRoll"],
    },
}


@dataclass(frozen=True, slots=True)
class Persona:
    """One household type in the demand model.

    Attributes
    ----------
    name:
        Label for reports.
    weight:
        Relative share of shoppers of this persona.
    categories:
        Category name -> purchase probability per trip.
    loyalties:
        Category name -> brand name the persona (almost) always picks
        there. Categories without an entry get a uniform brand choice.
    """

    name: str
    weight: float
    categories: dict[str, float] = field(hash=False)
    loyalties: dict[str, str] = field(hash=False)


#: Default persona mix. The planted signal: gamers are loyal to KolaRed
#: and CrispWave, households to EcoWash/ClearSpring, breakfast lovers to
#: BranBits/CreamTop. KolaRed shoppers therefore (almost) never buy
#: KolaBlue, etc.
DEFAULT_PERSONAS = (
    Persona(
        name="gamer",
        weight=0.35,
        categories={"cola": 0.9, "chips": 0.8, "cookies": 0.3},
        loyalties={"cola": "KolaRed", "chips": "CrispWave"},
    ),
    Persona(
        name="household",
        weight=0.35,
        categories={
            "detergent": 0.6,
            "paper goods": 0.7,
            "bottled water": 0.5,
            "cola": 0.2,
        },
        loyalties={"detergent": "EcoWash", "bottled water": "ClearSpring",
                   "cola": "KolaBlue"},
    ),
    Persona(
        name="breakfast",
        weight=0.30,
        categories={"cereal": 0.8, "yogurt": 0.7, "coffee": 0.6},
        loyalties={"cereal": "BranBits", "yogurt": "CreamTop"},
    ),
)


@dataclass(frozen=True, slots=True)
class GroceryDataset:
    """Taxonomy, transactions and the personas that generated them."""

    taxonomy: Taxonomy
    database: TransactionDatabase
    personas: tuple[Persona, ...]
    seed: int


def grocery_taxonomy() -> Taxonomy:
    """The curated supermarket taxonomy with readable names."""
    return taxonomy_from_nested(GROCERY_TREE)


def generate_grocery_dataset(
    num_transactions: int = 5000,
    personas: tuple[Persona, ...] = DEFAULT_PERSONAS,
    loyalty_strength: float = 0.95,
    seed: int = 0,
) -> GroceryDataset:
    """Generate persona-driven grocery transactions.

    Parameters
    ----------
    num_transactions:
        Number of shopping trips.
    personas:
        The household mix; weights are normalized internally.
    loyalty_strength:
        Probability that a loyal persona picks its declared brand
        (the remainder is spread over the category's other brands).
    seed:
        Reproducibility seed.
    """
    if num_transactions < 1:
        raise GenerationError("num_transactions must be >= 1")
    if not personas:
        raise GenerationError("at least one persona is required")
    if not 0.5 <= loyalty_strength <= 1.0:
        raise GenerationError(
            f"loyalty_strength must be in [0.5, 1], got {loyalty_strength}"
        )
    taxonomy = grocery_taxonomy()
    rng = np.random.default_rng(seed)
    weights = np.array([persona.weight for persona in personas], float)
    if (weights <= 0).any():
        raise GenerationError("persona weights must be positive")
    weights = weights / weights.sum()

    brand_ids = {
        category: [
            taxonomy.id_of(brand)
            for brand in taxonomy_children_names(category)
        ]
        for category in _category_names()
    }

    rows: list[list[int]] = []
    for _ in range(num_transactions):
        persona = personas[int(rng.choice(len(personas), p=weights))]
        basket: set[int] = set()
        for category, probability in persona.categories.items():
            if rng.random() >= probability:
                continue
            brands = brand_ids[category]
            loyal_brand = persona.loyalties.get(category)
            if loyal_brand is not None and rng.random() < loyalty_strength:
                basket.add(taxonomy.id_of(loyal_brand))
            else:
                choices = [
                    brand
                    for brand in brands
                    if loyal_brand is None
                    or brand != taxonomy.id_of(loyal_brand)
                ] or brands
                basket.add(int(rng.choice(choices)))
        if not basket:
            # Window shopper: buys one random staple so the basket is
            # a valid transaction.
            basket.add(taxonomy.id_of("ClearSpring"))
        rows.append(sorted(basket))
    return GroceryDataset(
        taxonomy=taxonomy,
        database=TransactionDatabase(rows),
        personas=tuple(personas),
        seed=seed,
    )


def _category_names() -> list[str]:
    return [
        category
        for department in GROCERY_TREE.values()
        for category in department
    ]


def taxonomy_children_names(category: str) -> list[str]:
    """Brand names under a named category of the grocery tree."""
    for department in GROCERY_TREE.values():
        if category in department:
            return list(department[category])
    raise GenerationError(f"unknown grocery category {category!r}")
