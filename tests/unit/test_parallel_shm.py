"""Unit tests for shared-memory counting: segment, pool, and engine.

Covers the lifecycle edges the zero-copy design leans on: an owner that
exits without cleanup never leaks a ``/dev/shm`` name (atexit unlink), a
worker killed mid-batch is respawned and its task retried, a mutated
database triggers a re-publish under a fresh segment name, and
``n_jobs=1`` bypasses shared memory entirely. The injected failures
misbehave *only inside a worker process* (sentinel files /
``multiprocessing.parent_process()``), so the parent-side fallbacks can
be observed succeeding without hanging the suite.
"""

import multiprocessing
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytest.importorskip("numpy")

import repro
from repro.core.api import MiningConfig, mine_negative_rules
from repro.core.session import MiningSession
from repro.data.database import TransactionDatabase
from repro.mining.bitpack import PackedMatrix
from repro.mining.engines.parallel import ParallelShmEngine
from repro.parallel import shm
from repro.parallel.pool import PersistentWorkerPool, PoolConfig
from repro.parallel.shm import (
    SharedPackedMatrix,
    live_segments,
    shm_worker_count,
    shm_worker_setup,
)
from repro.taxonomy.builders import taxonomy_from_parents

ROWS = [(1, 2, 3), (2, 3), (1, 3), (3,), (1, 2), (4,), (1, 4)] * 3
CANDIDATES = [(1,), (2, 3), (1, 2, 3), (4,), (1, 3)]


def expected_counts(rows=ROWS, candidates=CANDIDATES, taxonomy=None):
    return MiningSession(list(rows), taxonomy, "brute").count(candidates)


def fresh_engine(n_jobs=2, **pool_kwargs):
    config = PoolConfig(n_jobs=n_jobs, backoff=0.0, **pool_kwargs)
    return ParallelShmEngine(n_jobs=n_jobs, pool_config=config)


# ----------------------------------------------------------------------
# Segment lifecycle
# ----------------------------------------------------------------------

class TestSharedPackedMatrix:
    def test_create_attach_roundtrip_counts_bit_identical(self):
        matrix = PackedMatrix.from_rows(ROWS)
        owner = SharedPackedMatrix.create(matrix, fingerprint=7)
        try:
            assert owner.handle.name in live_segments()
            assert owner.handle.fingerprint == 7
            attached = SharedPackedMatrix.attach(owner.handle)
            try:
                assert (
                    attached.matrix.count(CANDIDATES)
                    == matrix.count(CANDIDATES)
                    == expected_counts()
                )
            finally:
                attached.close()
        finally:
            owner.close()
            owner.unlink()
        assert owner.handle.name not in live_segments()

    def test_unlink_while_attached_keeps_mapping_alive(self):
        """POSIX semantics the re-publish path relies on: the name dies
        immediately, the pages live until the last detach."""
        matrix = PackedMatrix.from_rows(ROWS)
        owner = SharedPackedMatrix.create(matrix)
        attached = SharedPackedMatrix.attach(owner.handle)
        owner.close()
        owner.unlink()
        assert owner.handle.name not in live_segments()
        try:
            assert attached.matrix.count(CANDIDATES) == expected_counts()
        finally:
            attached.close()

    def test_owner_exit_without_cleanup_unlinks_via_atexit(self):
        """An owner interpreter that exits without close/unlink leaves no
        stale ``/dev/shm`` entry behind (the module's atexit hook)."""
        script = (
            "from repro.mining.bitpack import PackedMatrix\n"
            "from repro.parallel.shm import SharedPackedMatrix\n"
            "matrix = PackedMatrix.from_rows([(1, 2), (2, 3)])\n"
            "shared = SharedPackedMatrix.create(matrix)\n"
            "print(shared.handle.name)\n"
        )
        src = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ, PYTHONPATH=str(src))
        done = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert done.returncode == 0, done.stderr
        name = done.stdout.strip()
        assert name.startswith(shm.SEGMENT_PREFIX)
        assert name not in live_segments()

    def test_close_is_idempotent_and_unlink_tolerates_missing(self):
        owner = SharedPackedMatrix.create(PackedMatrix.from_rows(ROWS))
        owner.close()
        owner.close()
        owner.unlink()
        owner.unlink()

    def test_worker_protocol_functions_roundtrip(self):
        owner = SharedPackedMatrix.create(PackedMatrix.from_rows(ROWS))
        try:
            state = shm_worker_setup((owner.handle, None, None))
            vector, registry = shm_worker_count(
                state, (CANDIDATES, False)
            )
            state.close()
            assert registry is None
            assert dict(zip(CANDIDATES, vector)) == expected_counts()
        finally:
            owner.close()
            owner.unlink()


# ----------------------------------------------------------------------
# Persistent pool failure ladder
# ----------------------------------------------------------------------

def _echo_setup(payload):
    if payload == "bad":
        raise RuntimeError("segment gone")
    return payload


def _echo_task(state, payload):
    return (state, payload * 2)


def _crash_once_task(state, payload):
    sentinel, value = payload
    in_worker = multiprocessing.parent_process() is not None
    if in_worker and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(1)
    return value * 2


def _hang_task(state, payload):
    if multiprocessing.parent_process() is not None:
        time.sleep(60)
    return ("parent", payload)


def _fallback(payload):
    return ("fallback", payload)


class TestPersistentWorkerPool:
    def make(self, setup="base", func=_echo_task, **config):
        config.setdefault("backoff", 0.0)
        return PersistentWorkerPool(
            PoolConfig(n_jobs=2, **config),
            setup_func=_echo_setup,
            setup_payload=setup,
            func=func,
            fallback=_fallback,
        )

    def test_workers_persist_across_maps(self):
        pool = self.make()
        try:
            assert pool.map([1, 2, 3]) == [
                ("base", 2), ("base", 4), ("base", 6),
            ]
            assert pool.map([4]) == [("base", 8)]
            stats = pool.drain_stats()
            assert stats.workers_launched == 2  # spawned once, reused
            assert stats.tasks == 4
            assert pool.alive_workers == 2
        finally:
            pool.close()
        assert pool.alive_workers == 0

    def test_n_jobs_1_runs_fallback_in_parent(self):
        pool = PersistentWorkerPool(
            PoolConfig(n_jobs=1),
            setup_func=_echo_setup,
            setup_payload="base",
            func=_echo_task,
            fallback=_fallback,
        )
        assert pool.map(["x"]) == [("fallback", "x")]
        assert pool.stats.serial_tasks == 1
        assert pool.stats.workers_launched == 0

    def test_killed_worker_respawns_and_retries(self, tmp_path):
        sentinel = str(tmp_path / "crashed")
        pool = self.make(func=_crash_once_task, retries=2)
        try:
            payloads = [(sentinel, value) for value in (1, 2, 3)]
            assert pool.map(payloads) == [2, 4, 6]
            stats = pool.drain_stats()
            assert stats.crashes >= 1
            assert stats.retries >= 1
            assert stats.fallbacks == 0
        finally:
            pool.close()

    def test_timeout_terminates_then_falls_back(self):
        pool = self.make(func=_hang_task, timeout=0.5, retries=0)
        try:
            start = time.monotonic()
            assert pool.map(["t"]) == [("fallback", "t")]
            assert time.monotonic() - start < 30.0
            assert pool.stats.timeouts == 1
            assert pool.stats.fallbacks == 1
        finally:
            pool.close()

    def test_setup_failure_budget_breaks_pool(self):
        pool = self.make(setup="bad", retries=1)
        try:
            assert pool.map([1, 2, 3]) == [
                ("fallback", 1), ("fallback", 2), ("fallback", 3),
            ]
            assert pool._broken
            assert pool.stats.fallbacks == 3
            assert pool.alive_workers == 0
        finally:
            pool.close()

    def test_reconfigure_unbreaks_a_broken_pool(self):
        pool = self.make(setup="bad", retries=0)
        try:
            pool.map([1])
            assert pool._broken
            pool.reconfigure("good")
            assert not pool._broken
            assert pool.map([5]) == [("good", 10)]
            assert pool.stats.fallbacks == 1  # only the broken-era task
        finally:
            pool.close()

    def test_map_after_close_falls_back(self):
        pool = self.make()
        pool.map([1])
        pool.close()
        assert pool.map([9]) == [("fallback", 9)]

    def test_stale_ready_keeps_result_expectation(self):
        # A map() can return while a worker's "ready" reply is still
        # unread; a later reconfigure() queues a second setup behind it.
        # When that stale "ready" is finally serviced after the worker
        # has been handed a task, the worker must stay in the wait set —
        # clearing ``expecting`` here livelocked the scheduler (spinning
        # on ``_in_flight()`` with an empty wait set).
        from collections import deque

        from repro.parallel.pool import _PersistentTask, _PersistentWorker

        class _StubConnection:
            def recv(self):
                return ("ready", 0.01)

        pool = self.make()
        try:
            worker = _PersistentWorker(object(), _StubConnection())
            worker.task = _PersistentTask(0, "payload")
            worker.expecting = "result"
            worker.deadline = 123.0
            pool._service(worker, deque(), [None])
            assert worker.expecting == "result"
            assert worker.task is not None
            assert worker.deadline == 123.0
            assert pool.drain_attach_seconds() == [0.01]
        finally:
            pool.close()

    def test_reconfigure_map_cycles_do_not_livelock(self):
        # Single-payload maps leave one worker's "ready" unread; the
        # repeated reconfigure/map cycle stacks stale readies exactly
        # like the property tests' per-example re-publish loop does.
        pool = self.make()
        try:
            assert pool.map([1, 2]) == [("base", 2), ("base", 4)]
            for round_ in range(25):
                payload = f"gen{round_}"
                pool.reconfigure(payload)
                assert pool.map([round_]) == [(payload, round_ * 2)]
            assert pool.drain_stats().fallbacks == 0
        finally:
            pool.close()


# ----------------------------------------------------------------------
# Engine lifecycle
# ----------------------------------------------------------------------

class TestParallelShmEngine:
    def test_counts_match_brute_flat(self):
        engine = fresh_engine()
        try:
            state = engine.prepare(list(ROWS), None)
            assert engine.count(state, CANDIDATES) == expected_counts()
            assert live_segments()  # published while the engine lives
        finally:
            engine.close()
        assert not live_segments()

    def test_counts_match_brute_with_taxonomy(self):
        taxonomy = taxonomy_from_parents({1: 0, 2: 0, 3: 10, 4: 10})
        candidates = [(0,), (10,), (0, 10), (1, 10)]
        engine = fresh_engine()
        try:
            state = engine.prepare(list(ROWS), taxonomy)
            assert engine.count(state, candidates) == expected_counts(
                candidates=candidates, taxonomy=taxonomy
            )
        finally:
            engine.close()

    def test_session_reuses_matrix_pool_and_segment(self):
        session = MiningSession(
            TransactionDatabase(ROWS), engine="parallel-shm", n_jobs=2
        )
        try:
            first = session.count(CANDIDATES)
            second = session.count(CANDIDATES)
            assert first == second == expected_counts()
            assert session.parallel_stats.shm_publishes == 1
            assert session.parallel_stats.shm_batches >= 2
            assert session.cache_stats.hits >= 1  # matrix reused
            assert session.parallel_stats.workers_launched == 2
            assert session.parallel_stats.shm_bytes > 0
        finally:
            session.engine.close()

    def test_mutated_database_fingerprint_triggers_republish(self):
        engine = fresh_engine()
        try:
            first_db = TransactionDatabase(ROWS)
            engine.count(engine.prepare(first_db, None), CANDIDATES)
            first_name = engine._shared.handle.name
            assert engine._shared.handle.fingerprint == 1

            mutated = TransactionDatabase(list(ROWS) + [(1, 2, 3, 4)])
            counts = engine.count(
                engine.prepare(mutated, None), CANDIDATES
            )
            assert counts == expected_counts(rows=mutated)
            assert engine._shared.handle.fingerprint == 2
            assert engine._shared.handle.name != first_name
            assert first_name not in live_segments()  # old name dropped
        finally:
            engine.close()

    def test_n_jobs_1_bypasses_shared_memory_entirely(self):
        engine = ParallelShmEngine(n_jobs=1)
        try:
            state = engine.prepare(list(ROWS), None)
            assert engine.count(state, CANDIDATES) == expected_counts()
            assert engine._shared is None
            assert engine._pool is None
            assert not live_segments()
        finally:
            engine.close()

    def test_worker_killed_mid_batch_retries_no_stale_segments(
        self, tmp_path, monkeypatch
    ):
        sentinel = str(tmp_path / "crashed")
        real_count = shm.shm_worker_count

        def crash_once(state, payload):
            in_worker = multiprocessing.parent_process() is not None
            if in_worker and not os.path.exists(sentinel):
                open(sentinel, "w").close()
                os._exit(1)
            return real_count(state, payload)

        monkeypatch.setattr(shm, "shm_worker_count", crash_once)
        engine = fresh_engine(retries=2)
        try:
            state = engine.prepare(list(ROWS), None)
            from repro.parallel.engine import ParallelStats

            stats = ParallelStats()
            counts = engine.count(
                state, CANDIDATES, parallel_stats=stats
            )
            assert counts == expected_counts()
            assert stats.worker_crashes >= 1
            assert stats.worker_retries >= 1
        finally:
            engine.close()
        assert not live_segments()

    def test_spawn_start_method_roundtrip(self):
        engine = fresh_engine(start_method="spawn")
        try:
            state = engine.prepare(list(ROWS), None)
            assert engine.count(state, CANDIDATES) == expected_counts()
        finally:
            engine.close()
        assert not live_segments()

    def test_shm_policy_mines_identically_end_to_end(self):
        taxonomy = taxonomy_from_parents({1: 0, 2: 0, 3: 10, 4: 10})
        rows = [row for row in ROWS for _ in range(2)]
        config = MiningConfig(minsup=0.2, minri=0.2)
        baseline = mine_negative_rules(rows, taxonomy, config=config)
        shm_run = mine_negative_rules(
            rows,
            taxonomy,
            config=config,
            engine="numpy",
            n_jobs=2,
            shm=True,
        )
        assert [r.format() for r in shm_run.rules] == [
            r.format() for r in baseline.rules
        ]
        assert shm_run.stats.data_passes == baseline.stats.data_passes
