"""Unit tests for substitute-item knowledge (future-work extension)."""

import pytest

from repro.core.candidates import NegativeCandidate
from repro.core.substitutes import (
    SubstituteGroups,
    generate_substitute_candidates,
    merge_candidate_sets,
)
from repro.errors import ConfigError
from repro.mining.itemset_index import LargeItemsetIndex


class TestSubstituteGroups:
    def test_partners_within_group(self):
        groups = SubstituteGroups([[1, 2, 3]])
        assert groups.substitutes_of(1) == (2, 3)
        assert groups.substitutes_of(3) == (1, 2)

    def test_union_across_groups(self):
        groups = SubstituteGroups([[1, 2], [2, 9]])
        assert groups.substitutes_of(2) == (1, 9)

    def test_unknown_item_has_no_partners(self):
        groups = SubstituteGroups([[1, 2]])
        assert groups.substitutes_of(42) == ()

    def test_items_property(self):
        groups = SubstituteGroups([[1, 2], [5, 6]])
        assert groups.items == {1, 2, 5, 6}
        assert len(groups) == 4

    def test_duplicates_in_group_collapse(self):
        groups = SubstituteGroups([[1, 1, 2]])
        assert groups.substitutes_of(1) == (2,)

    def test_singleton_group_rejected(self):
        with pytest.raises(ConfigError):
            SubstituteGroups([[1]])
        with pytest.raises(ConfigError):
            SubstituteGroups([[2, 2]])


class TestGenerateSubstituteCandidates:
    @pytest.fixture
    def index(self):
        # Items: 1 (butter), 2 (margarine, substitute of 1), 3 (bread).
        return LargeItemsetIndex(
            {
                (1,): 0.4,
                (2,): 0.2,
                (3,): 0.5,
                (1, 3): 0.3,
            }
        )

    @pytest.fixture
    def substitutes(self):
        return SubstituteGroups([[1, 2]])

    def test_case3_style_expectation(self, index, substitutes):
        candidates = generate_substitute_candidates(
            index, substitutes, minsup=0.05, minri=0.5
        )
        assert (2, 3) in candidates
        candidate = candidates[(2, 3)]
        # E[sup(2,3)] = sup(1,3) * sup(2)/sup(1).
        assert candidate.expected_support == pytest.approx(
            0.3 * (0.2 / 0.4)
        )
        assert candidate.source == (1, 3)
        assert candidate.case == "substitutes"

    def test_existing_large_itemset_excluded(self, index, substitutes):
        index.add((2, 3), 0.2)
        candidates = generate_substitute_candidates(
            index, substitutes, minsup=0.05, minri=0.5
        )
        assert (2, 3) not in candidates

    def test_small_partner_excluded(self, substitutes):
        index = LargeItemsetIndex({(1,): 0.4, (3,): 0.5, (1, 3): 0.3})
        # 2 is not a large 1-itemset.
        candidates = generate_substitute_candidates(
            index, substitutes, minsup=0.05, minri=0.5
        )
        assert candidates == {}

    def test_expectation_threshold(self, index, substitutes):
        candidates = generate_substitute_candidates(
            index, substitutes, minsup=0.5, minri=0.5
        )
        # Threshold 0.25 > 0.15 expectation.
        assert (2, 3) not in candidates

    def test_keeps_at_least_one_original(self, substitutes):
        # Large itemset {1, 2} of mutual substitutes: replacing either
        # item with the other collapses to a duplicate, and replacing
        # both is forbidden (limit = size - 1), so nothing is generated.
        index = LargeItemsetIndex({(1,): 0.4, (2,): 0.2, (1, 2): 0.1})
        candidates = generate_substitute_candidates(
            index, substitutes, minsup=0.05, minri=0.5
        )
        assert candidates == {}

    def test_bad_max_replacements(self, index, substitutes):
        with pytest.raises(ConfigError):
            generate_substitute_candidates(
                index, substitutes, 0.05, 0.5, max_replacements=0
            )


class TestMergeCandidateSets:
    def make(self, items, expectation, case="children"):
        return NegativeCandidate(
            items=items,
            expected_support=expectation,
            source=(9, 10),
            case=case,
        )

    def test_max_expectation_wins(self):
        low = {(1, 2): self.make((1, 2), 0.1)}
        high = {(1, 2): self.make((1, 2), 0.3, case="substitutes")}
        merged = merge_candidate_sets(low, high)
        assert merged[(1, 2)].expected_support == 0.3
        assert merged[(1, 2)].case == "substitutes"

    def test_order_independent(self):
        low = {(1, 2): self.make((1, 2), 0.1)}
        high = {(1, 2): self.make((1, 2), 0.3)}
        assert merge_candidate_sets(low, high) == merge_candidate_sets(
            high, low
        )

    def test_disjoint_union(self):
        first = {(1, 2): self.make((1, 2), 0.1)}
        second = {(3, 4): self.make((3, 4), 0.2)}
        merged = merge_candidate_sets(first, second)
        assert set(merged) == {(1, 2), (3, 4)}

    def test_empty(self):
        assert merge_candidate_sets() == {}
        assert merge_candidate_sets({}, {}) == {}
