"""Coherent negative rules after Duggirala & Narayana (arXiv:1308.2310).

Coherent rules judge an association by the *whole* 2×2 contingency
table of the rule's sides, in support space::

    s11 = sup(X ∪ Y)            both present
    s10 = sup(X) - s11          X without Y
    s01 = sup(Y) - s11          Y without X
    s00 = 1 - sup(X) - sup(Y) + s11   neither

A *negative-coherent* rule ``X =/=> Y`` requires the discordant cells
to dominate both concordant cells — ``s10 > s11``, ``s10 > s00``,
``s01 > s11`` and ``s01 > s00`` — so the registered ``"coherent"``
measure scores a split as the worst margin::

    score = min(s10 - s11, s10 - s00, s01 - s11, s01 - s00)

and admits the rule when the score is strictly positive. The condition
set is threshold-free (no MinRI involvement beyond the shared candidate
machinery); the framework symmetrically defines positive-coherent rules
by the reversed inequalities, hence ``supports_positive=True``.

At the itemset stage — where the split is not yet known — the measure
keeps every candidate that co-occurs less than independence predicts
(``sup(n) < ∏ sup(i_j)``), the necessary condition for any
negative-coherent split to exist.
"""

from __future__ import annotations

from .registry import InterestMeasure, MeasureCapabilities, register_measure


@register_measure("coherent")
class CoherentMeasure(InterestMeasure):
    """Contingency-quadrant dominance (Duggirala & Narayana).

    Threshold-free: a rule is admitted when every discordant quadrant of
    its 2×2 support table strictly dominates every concordant one; the
    score is the worst dominance margin, bounded in ``[-1, 1]``.
    """

    capabilities = MeasureCapabilities(
        needs_taxonomy_expectation=False,
        supports_positive=True,
        bounded_range=True,
        monotone_prune=False,
    )

    def admits_itemset(
        self,
        expected: float,
        actual: float,
        singles: tuple[float, ...],
        minsup: float,
        minri: float,
    ) -> bool:
        independence = 1.0
        for support in singles:
            independence *= support
        return actual < independence

    def rule_score(
        self,
        expected: float,
        actual: float,
        antecedent_support: float,
        consequent_support: float,
    ) -> float:
        s11 = actual
        s10 = antecedent_support - s11
        s01 = consequent_support - s11
        s00 = 1.0 - antecedent_support - consequent_support + s11
        return min(s10 - s11, s10 - s00, s01 - s11, s01 - s00)

    def admits_rule(
        self, score: float, minsup: float | None, minri: float
    ) -> bool:
        return score > 0.0
