"""Analytic candidate-count estimate (paper Section 2.1.2).

The paper estimates the number of negative candidates generated per large
itemset of size ``k`` under average taxonomy fan-out ``f`` as::

    sum_{i=1..k} C(k, i) * f^i  +  k * (f - 1)

The first term counts children replacements (choose ``i`` positions, ``f``
children each); the second counts single-position sibling replacements
(each of the ``k`` items has ``f - 1`` siblings on average). The estimate
is exponential in ``k`` — the motivation for pruning small items from the
taxonomy — and the A4 ablation bench compares it against measured counts.
"""

from __future__ import annotations

from math import comb

from ..errors import ConfigError


def estimate_candidates_per_itemset(size: int, fanout: float) -> float:
    """Estimated candidates generated from one size-*size* large itemset.

    Parameters
    ----------
    size:
        Itemset size ``k >= 1``.
    fanout:
        Average taxonomy fan-out ``f >= 1``.
    """
    if size < 1:
        raise ConfigError(f"itemset size must be >= 1, got {size}")
    if fanout < 1.0:
        raise ConfigError(f"fanout must be >= 1, got {fanout}")
    children_term = sum(
        comb(size, chosen) * fanout**chosen
        for chosen in range(1, size + 1)
    )
    sibling_term = size * (fanout - 1.0)
    return children_term + sibling_term


def estimate_total_candidates(
    itemset_sizes: dict[int, int], fanout: float
) -> float:
    """Estimate total candidates for a population of large itemsets.

    Parameters
    ----------
    itemset_sizes:
        Mapping from itemset size to the number of large itemsets of that
        size (as reported by a :class:`~repro.mining.LargeItemsetIndex`).
    fanout:
        Average taxonomy fan-out.
    """
    return sum(
        count * estimate_candidates_per_itemset(size, fanout)
        for size, count in itemset_sizes.items()
        if size >= 2
    )
