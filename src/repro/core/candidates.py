"""Candidate negative itemset generation (paper Section 2.1.1).

For every large itemset, candidates are formed by swapping items for their
taxonomy relatives wherever an expected support can be computed:

* **children replacements** — any non-empty subset of positions replaced by
  immediate children (all positions = Case 1, a proper subset = Case 2);
* **sibling replacements** — a *proper* non-empty subset of positions
  replaced by siblings (Case 3; the paper's exclusion list rules out
  candidates consisting solely of siblings).

Exclusions (Section 2.1.1): ancestors never participate, and children and
sibling replacements are never mixed within one candidate. Further
admission rules:

* every 1-item subset of a candidate must itself be a large itemset
  ("otherwise no rule will be produced for this itemset");
* the candidate must not already be a (generalized) large itemset — those
  are positive associations, as with {Bryers, Evian} in the paper's
  example;
* no item of a candidate may be an ancestor of another (such itemsets are
  degenerate: their support equals the support without the ancestor);
* the expected support must reach ``MinSup × MinRI`` — a smaller
  expectation can never produce a rule with ``RI >= MinRI``;
* when the same candidate arises from several large itemsets, "the largest
  value of the expected support is chosen" — enforced via the hash-table
  dedup of Section 2.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable
from itertools import combinations

from .._util import check_fraction
from ..itemset import Itemset, replace_positions
from ..mining.generalized import contains_item_and_ancestor
from ..mining.itemset_index import LargeItemsetIndex
from ..taxonomy.tree import Taxonomy
from .interest import deviation_threshold

CASE_CHILDREN = "children"
CASE_SIBLINGS = "siblings"


@dataclass(frozen=True, slots=True)
class NegativeCandidate:
    """A candidate negative itemset awaiting a counting pass.

    Attributes
    ----------
    items:
        The canonical candidate itemset.
    expected_support:
        Fractional support predicted by the taxonomy (maximum over all
        generation paths).
    source:
        The large itemset the winning expectation was derived from.
    case:
        ``"children"`` (Cases 1–2) or ``"siblings"`` (Case 3).
    """

    items: Itemset
    expected_support: float
    source: Itemset
    case: str


RatioPool = tuple[tuple[int, float], ...]


class _RelativeCache:
    """Large-filtered children/sibling ratio pools, computed per item.

    A pool entry is ``(relative_item, sup(relative) / sup(item))`` — the
    expectation factor contributed by replacing *item* with the relative.
    Pools are sorted by descending ratio so the branch-and-bound
    enumeration can cut off as soon as the bound falls below threshold.
    """

    __slots__ = ("_taxonomy", "_index", "_children", "_siblings")

    def __init__(self, taxonomy: Taxonomy, index: LargeItemsetIndex) -> None:
        self._taxonomy = taxonomy
        self._index = index
        self._children: dict[int, RatioPool] = {}
        self._siblings: dict[int, RatioPool] = {}

    def _pool(self, item: int, relatives: tuple[int, ...]) -> RatioPool:
        own_support = self._index.support_or_none((item,))
        if own_support is None or own_support <= 0.0:
            return ()
        entries = [
            (relative, self._index.support((relative,)) / own_support)
            for relative in relatives
            if self._index.is_large((relative,))
        ]
        entries.sort(key=lambda entry: -entry[1])
        return tuple(entries)

    def children_ratios(self, item: int) -> RatioPool:
        if item not in self._children:
            self._children[item] = self._pool(
                item, self._taxonomy.children(item)
            )
        return self._children[item]

    def sibling_ratios(self, item: int) -> RatioPool:
        if item not in self._siblings:
            self._siblings[item] = self._pool(
                item, self._taxonomy.siblings(item)
            )
        return self._siblings[item]


def generate_negative_candidates(
    index: LargeItemsetIndex,
    taxonomy: Taxonomy,
    minsup: float,
    minri: float,
    sources: Iterable[Itemset] | None = None,
    max_size: int | None = None,
    max_sibling_replacements: int | None = None,
) -> dict[Itemset, NegativeCandidate]:
    """Generate all candidate negative itemsets from large itemsets.

    Parameters
    ----------
    index:
        The generalized large itemsets (with 1-itemset supports, which
        provide the expectation ratios).
    taxonomy:
        Full or pruned taxonomy. Pruning small items first (the Improved
        algorithm's optimization) shrinks the children/sibling lists that
        are iterated but cannot change the output: replacements are always
        filtered to large 1-itemsets here.
    minsup, minri:
        Thresholds; candidates need expected support of at least
        ``minsup * minri``.
    sources:
        Large itemsets to generate from. Defaults to every indexed itemset
        of size >= 2 (negative itemsets of size 1 cannot form rules).
    max_size:
        Skip sources larger than this (candidates keep the source's size).
    max_sibling_replacements:
        Cap on how many positions a Case-3 candidate may replace with
        siblings. ``None`` allows any proper subset (the paper's general
        formula); ``1`` matches the paper's worked examples exactly and
        tames the exponential blow-up on dense data — sibling support
        ratios are often near 1, so unlike children replacements the
        expectation threshold barely prunes them.

    Returns
    -------
    dict
        Candidate itemset -> :class:`NegativeCandidate`, deduplicated with
        maximum expected support.
    """
    check_fraction(minsup, "minsup")
    threshold = deviation_threshold(minsup, minri)
    cache = _RelativeCache(taxonomy, index)
    out: dict[Itemset, NegativeCandidate] = {}

    if sources is None:
        source_list: list[Itemset] = [
            items
            for size in index.sizes
            if size >= 2
            for items in sorted(index.of_size(size))
        ]
    else:
        source_list = [items for items in sources if len(items) >= 2]

    for source in source_list:
        if max_size is not None and len(source) > max_size:
            continue
        if any(item not in taxonomy for item in source):
            # A pruned taxonomy may have dropped items of a stale index
            # entry; such sources cannot yield admissible candidates.
            continue
        if contains_item_and_ancestor(source, taxonomy):
            # Degenerate large itemsets (possible with the Basic miner)
            # predict nothing beyond their non-degenerate reduction.
            continue
        base = index.support(source)
        _expand(
            source, base, cache, index, taxonomy, threshold,
            max_sibling_replacements, out,
        )
    return out


def _expand(
    source: Itemset,
    base: float,
    cache: _RelativeCache,
    index: LargeItemsetIndex,
    taxonomy: Taxonomy,
    threshold: float,
    max_sibling_replacements: int | None,
    out: dict[Itemset, NegativeCandidate],
) -> None:
    """Enumerate all admissible replacements of *source* with pruning.

    The raw enumeration is exponential (the Section 2.1.2 estimate), and
    the paper lists "more efficient candidate generation techniques" as
    future work. This implementation contributes one: branch-and-bound on
    the expectation threshold. Each position's replacement pool is sorted
    by descending support ratio, so during the cross-product recursion an
    exact upper bound on the achievable expectation is available; branches
    (and whole position subsets) that cannot reach ``MinSup × MinRI`` are
    cut. Only candidates that the threshold would reject anyway are
    skipped, so the output is identical to exhaustive enumeration.
    """
    size = len(source)
    for case, ratio_pools, proper_only in (
        (CASE_CHILDREN, cache.children_ratios, False),
        (CASE_SIBLINGS, cache.sibling_ratios, True),
    ):
        max_positions = size - 1 if proper_only else size
        if case == CASE_SIBLINGS and max_sibling_replacements is not None:
            max_positions = min(max_positions, max_sibling_replacements)
        position_pools = [ratio_pools(source[p]) for p in range(size)]
        for count in range(1, max_positions + 1):
            for positions in combinations(range(size), count):
                pools = [position_pools[p] for p in positions]
                if any(not pool for pool in pools):
                    continue
                # Exact upper bound: best (first) ratio at every position.
                bound = base
                for pool in pools:
                    bound *= pool[0][1]
                if bound < threshold:
                    continue
                _descend(
                    source, positions, pools, 0, (), base, case,
                    index, taxonomy, threshold, out,
                )


def _descend(
    source: Itemset,
    positions: tuple[int, ...],
    pools: list[tuple[tuple[int, float], ...]],
    depth: int,
    chosen: tuple[int, ...],
    accumulated: float,
    case: str,
    index: LargeItemsetIndex,
    taxonomy: Taxonomy,
    threshold: float,
    out: dict[Itemset, NegativeCandidate],
) -> None:
    """Depth-first cross-product with expectation bound pruning."""
    if depth == len(pools):
        _admit(
            source, positions, chosen, accumulated, case, index,
            taxonomy, out,
        )
        return
    remaining_best = 1.0
    for pool in pools[depth + 1:]:
        remaining_best *= pool[0][1]
    for item, ratio in pools[depth]:
        value = accumulated * ratio
        if value * remaining_best < threshold:
            # Pools are ratio-descending: no later item can recover.
            break
        _descend(
            source, positions, pools, depth + 1, chosen + (item,),
            value, case, index, taxonomy, threshold, out,
        )


def _admit(
    source: Itemset,
    positions: tuple[int, ...],
    assignment: tuple[int, ...],
    expectation: float,
    case: str,
    index: LargeItemsetIndex,
    taxonomy: Taxonomy,
    out: dict[Itemset, NegativeCandidate],
) -> None:
    candidate = replace_positions(source, positions, assignment)
    if candidate is None or candidate in index:
        return
    if contains_item_and_ancestor(candidate, taxonomy):
        return
    existing = out.get(candidate)
    if existing is None or expectation > existing.expected_support:
        out[candidate] = NegativeCandidate(
            items=candidate,
            expected_support=expectation,
            source=source,
            case=case,
        )
