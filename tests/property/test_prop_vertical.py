"""Property-based tests: the cached engine is bit-identical to brute force.

The vertical index cache's contract is that *no observable count ever
changes*: not across passes, not under a taxonomy (descendant-OR versus
per-row ancestor extension), not after the database mutates beneath the
cache (fingerprint invalidation), not under a memory budget that evicts
and restores bitmaps, and not when the pass is sharded for the parallel
engine.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.session import MiningSession
from repro.data.database import TransactionDatabase
from repro.itemset import itemset
from repro.parallel.engine import parallel_count_supports
from repro.parallel.pool import PoolConfig
from repro.taxonomy.builders import taxonomy_from_parents

transactions_strategy = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=25), min_size=1, max_size=8
    ).map(itemset),
    min_size=1,
    max_size=40,
)
candidates_strategy = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=25), min_size=1, max_size=4
    ).map(itemset),
    min_size=1,
    max_size=25,
).map(lambda cands: sorted(set(cands)))

# Random three-level taxonomies: each leaf 1..12 under a random category
# 100..103, each category under a random root 200..201.
taxonomy_strategy = st.builds(
    lambda mids, tops: taxonomy_from_parents(
        {leaf: mid for leaf, mid in enumerate(mids, start=1)}
        | {100 + index: top for index, top in enumerate(tops)}
    ),
    st.lists(
        st.integers(min_value=100, max_value=103), min_size=12, max_size=12
    ),
    st.lists(
        st.integers(min_value=200, max_value=201), min_size=4, max_size=4
    ),
)
leaf_transactions_strategy = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=12), min_size=1, max_size=5
    ).map(itemset),
    min_size=1,
    max_size=30,
)


def brute(rows, candidates, taxonomy=None):
    return MiningSession(list(rows), taxonomy, "brute").count(candidates)


def cached(database, candidates, taxonomy=None, **policy):
    return MiningSession(database, taxonomy, "cached", **policy).count(
        candidates
    )


@settings(max_examples=60, deadline=None)
@given(transactions_strategy, candidates_strategy)
def test_cached_matches_brute_across_passes(transactions, candidates):
    database = TransactionDatabase(transactions)
    expected = brute(transactions, candidates)
    session = MiningSession(database, engine="cached")
    for _ in range(3):
        assert session.count(candidates) == expected
    assert database.scans == 1


@settings(max_examples=60, deadline=None)
@given(leaf_transactions_strategy, taxonomy_strategy, st.data())
def test_cached_matches_brute_generalized(transactions, taxonomy, data):
    nodes = sorted(taxonomy.nodes)
    candidates = data.draw(
        st.lists(
            st.lists(st.sampled_from(nodes), min_size=1, max_size=3).map(
                itemset
            ),
            min_size=1,
            max_size=12,
        ).map(lambda cands: sorted(set(cands)))
    )
    database = TransactionDatabase(transactions)
    expected = brute(transactions, candidates, taxonomy=taxonomy)
    for _ in range(2):
        assert (
            cached(database, candidates, taxonomy=taxonomy) == expected
        )


@settings(max_examples=40, deadline=None)
@given(transactions_strategy, transactions_strategy, candidates_strategy)
def test_mutation_never_serves_stale_counts(first, second, candidates):
    database = TransactionDatabase(first)
    session = MiningSession(database, engine="cached")
    assert session.count(candidates) == brute(first, candidates)
    # Swap the rows out from under the cache: the fingerprint must catch
    # it and rebuild — a stale count here would be silent corruption.
    database._transactions = tuple(second)
    assert session.count(candidates) == brute(second, candidates)


@settings(max_examples=40, deadline=None)
@given(transactions_strategy, candidates_strategy)
def test_tiny_budget_still_exact(transactions, candidates):
    database = TransactionDatabase(transactions)
    expected = brute(transactions, candidates)
    for _ in range(2):
        assert (
            cached(database, candidates, cache_bytes=1) == expected
        )


@settings(max_examples=40, deadline=None)
@given(transactions_strategy, candidates_strategy)
def test_shard_local_caches_match_serial(transactions, candidates):
    database = TransactionDatabase(transactions)
    serial = cached(database, candidates)
    sharded = parallel_count_supports(
        TransactionDatabase(transactions),
        candidates,
        engine="cached",
        n_jobs=1,
        shard_rows=max(1, len(transactions) // 3),
    )
    assert sharded == serial


@settings(max_examples=5, deadline=None)
@given(transactions_strategy, candidates_strategy)
def test_shard_local_caches_match_serial_multiprocess(
    transactions, candidates
):
    database = TransactionDatabase(transactions)
    serial = cached(database, candidates)
    worker_db = TransactionDatabase(transactions)
    config = PoolConfig(n_jobs=2)
    for _ in range(2):  # second pass reuses the shipped shard indexes
        sharded = parallel_count_supports(
            worker_db,
            candidates,
            engine="cached",
            pool_config=config,
        )
        assert sharded == serial
    assert worker_db.scans == 1
