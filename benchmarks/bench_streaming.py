"""E13 — Streaming maintenance: delta push vs recompile-from-scratch.

Measures what the streaming subsystem (DESIGN.md §13) buys over the
only alternative it replaces: a basket log grows by ~1 %% between
serving updates, and the live server must start scoring against the
new rules. Two engines, two update modes each:

``cached-delta-push`` / ``mmap-delta-push``
    A :class:`~repro.stream.watcher.StreamingMiner` absorbs the append
    through the incremental substrate (vertical bitmaps tail-OR'd /
    mmap tail segment extended), re-mines on its persistent session,
    diffs against the published index, and pushes the versioned
    :class:`~repro.stream.delta.RuleIndexDelta` to a live
    :class:`~repro.serve.service.RuleService` over the ``reload_delta``
    payload contract. The timed unit is the whole update: absorb +
    re-mine + diff + push + apply + checkpoint.
``cached-recompile`` / ``mmap-recompile``
    The same appends, served the pre-streaming way: re-parse the whole
    basket file into a fresh database, mine from scratch, compile a
    fresh :class:`~repro.serve.rule_index.RuleIndex`, round-trip it
    through the compiled-index file (``repro compile`` → server
    reload), and stand up a fresh service. O(|D|) per update.

The run asserts three claims directly (``--no-check`` reports without
failing):

* **speedup** — the delta-push updates are at least ``MIN_SPEEDUP[x]``
  faster than recompiling (the cached engine carries the headline
  >= 5x bound; the mmap engine's bound is lower because its warm
  counting path is dearer, see E12);
* **structure** — across all delta-push updates only tail state is
  ever touched: ``N_BATCHES`` bitmap extensions (cached) or tail
  segment extensions with zero repacks (mmap), and zero invalidations;
* **equivalence** — after the final update the delta-maintained
  service index is bit-identical (same serialized JSON) to the
  recompiled-from-scratch index at the same version.

Folds its report into ``BENCH_counting.json`` under ``"streaming"``
(or ``["quick"]["streaming"]`` on ``--quick``); the regression gate
compares the ``wall_update_s`` figures. ``--trace FILE`` writes the
observability JSONL (``stream.remine`` / ``stream.delta.*`` /
``serve.delta.apply`` spans and counters) for the CI artifact.

Run::

    python -m benchmarks.bench_streaming --quick
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import tempfile
import time
from pathlib import Path

#: Required advantage of delta-push over recompile-from-scratch, per
#: engine. The acceptance bound is the cached engine's 5x; the mmap
#: engine pays more per warm counting pass (bit unpacking), so its
#: structural floor is lower.
MIN_SPEEDUP = {"cached": 5.0, "mmap": 2.5}

#: Appended batches per run, each ~1 % of |D|.
N_BATCHES = 3

#: MinSup for the streaming workload. Higher than the counting sweeps:
#: the contrast under measurement is parse + index build vs absorb, so
#: the shared mining cost is kept small relative to |D|-proportional
#: work.
MINSUP = 0.15


def _write_baskets(path: Path, rows: list) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(" ".join(str(item) for item in row) + "\n")


def _append_baskets(path: Path, rows: list) -> None:
    with open(path, "a", encoding="utf-8") as handle:
        for row in rows:
            handle.write(" ".join(str(item) for item in row) + "\n")


def _config(engine: str, segment_rows: int):
    from repro.core.api import MiningConfig

    from benchmarks.common import MINRI

    kwargs = {"minsup": MINSUP, "minri": MINRI, "engine": engine}
    if engine == "mmap":
        kwargs["segment_rows"] = segment_rows
    return MiningConfig(**kwargs)


def _run_delta(
    engine: str,
    taxonomy,
    base_rows: list,
    batches: list[list],
    segment_rows: int,
    workdir: Path,
) -> tuple[dict, str]:
    """Watcher + live service: time ``append -> poll`` per batch.

    The bootstrap (initial mine, index publish, service start) is
    untimed — it is paid once per deployment, not per update. Each
    timed update is the full streaming path including the push through
    the ``reload_delta`` payload contract the wire protocol uses.
    """
    from repro.data.filedb import FileBackedDatabase
    from repro.serve import RuleIndex, RuleService
    from repro.stream import RowCountPolicy, StreamingMiner

    baskets = workdir / f"delta-{engine}.baskets"
    index_path = workdir / f"delta-{engine}.index.json"
    _write_baskets(baskets, base_rows)
    database = FileBackedDatabase(baskets)
    miner = StreamingMiner(
        database,
        taxonomy,
        config=_config(engine, segment_rows),
        policy=RowCountPolicy(1),
        index_path=index_path,
    )
    miner.start()  # untimed bootstrap: publishes index version 1
    service = RuleService(RuleIndex.load(index_path))
    miner.push = lambda delta: service.reload_delta(delta.to_payload())

    wall = 0.0
    stats = {
        "extensions": 0,
        "segments_packed": 0,
        "segments_extended": 0,
        "invalidations": 0,
    }
    for batch in batches:
        _append_baskets(baskets, batch)
        start = time.perf_counter()
        fired = miner.poll()
        wall += time.perf_counter() - start
        assert fired, "append did not trigger a re-mine"
        # cache_stats resets per mining run: accumulate per poll.
        for key in stats:
            stats[key] += getattr(miner.session.cache_stats, key)
    if engine == "mmap":
        miner.session.engine.close()
    run = {
        "label": f"{engine}-delta-push",
        "wall_update_s": round(wall, 5),
        "updates": len(batches),
        "index_version": service.index.version,
        "rules": len(service.index),
        "deltas_pushed": miner.deltas_pushed,
        **stats,
    }
    return run, service.index.to_json()


def _run_recompile(
    engine: str,
    taxonomy,
    base_rows: list,
    batches: list[list],
    segment_rows: int,
    workdir: Path,
) -> tuple[dict, str]:
    """The pre-streaming path: full recompile + file reload per batch."""
    from repro.core.api import mine_negative_rules
    from repro.data.filedb import FileBackedDatabase
    from repro.mining.rules import generate_rules
    from repro.serve import RuleIndex, RuleService

    baskets = workdir / f"recompile-{engine}.baskets"
    index_path = workdir / f"recompile-{engine}.index.json"
    _write_baskets(baskets, base_rows)
    config = _config(engine, segment_rows)

    wall = 0.0
    service = None
    for version, batch in enumerate(batches, start=2):
        _append_baskets(baskets, batch)
        start = time.perf_counter()
        database = FileBackedDatabase(baskets)
        result = mine_negative_rules(database, taxonomy, config=config)
        positives = generate_rules(result.large_itemsets, 0.5)
        index = RuleIndex(
            negative_rules=result.rules,
            positive_rules=positives,
            taxonomy=taxonomy,
            large_itemsets=result.large_itemsets,
            version=version,
        )
        index.save(index_path)
        service = RuleService(RuleIndex.load(index_path))
        wall += time.perf_counter() - start
    run = {
        "label": f"{engine}-recompile",
        "wall_update_s": round(wall, 5),
        "updates": len(batches),
        "index_version": service.index.version,
        "rules": len(service.index),
    }
    return run, service.index.to_json()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small dataset (the CI smoke configuration)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_counting.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a JSON-lines observability trace of the streaming "
             "updates to FILE (uploaded as a CI artifact)",
    )
    parser.add_argument(
        "--no-check",
        action="store_false",
        dest="check",
        help="report only; do not fail on speedup, structure or "
             "equivalence violations",
    )
    args = parser.parse_args(argv)

    os.environ.setdefault(
        "REPRO_BENCH_SCALE", "0.02" if args.quick else "0.1"
    )
    from benchmarks.common import dataset, fold_report, paper_row
    from repro.obs.api import obs_session

    source = dataset("short")
    base_rows = list(source.database)
    # The contrast under measurement is |D|-proportional work the
    # recompile path pays per update (re-parse the whole file, rebuild
    # the counting index) vs the O(append) absorb. Replicate the
    # quick-scale rows to ~40000 transactions so that work dominates
    # the shared per-update costs (mining, diffing, the index file
    # round-trip) with margin above the regression gate's measurement
    # floor.
    base_rows = base_rows * max(1, -(-40000 // len(base_rows)))
    n_rows = len(base_rows)
    # As in E12: full segments plus a partial tail with guaranteed room
    # for every appended batch, so mmap appends only extend the tail.
    segment_rows = n_rows // 4 + n_rows // 50
    batch_size = max(1, n_rows // 100)  # ~1 % per append
    batches = [
        [list(row) for row in base_rows[k * batch_size:(k + 1) * batch_size]]
        for k in range(N_BATCHES)
    ]

    runs: list[dict] = []
    final_json: dict[str, str] = {}
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        trace = (
            obs_session(trace_path=args.trace)
            if args.trace
            else contextlib.nullcontext()
        )
        with trace:
            for engine in ("cached", "mmap"):
                run, delta_json = _run_delta(
                    engine, source.taxonomy, base_rows, batches,
                    segment_rows, workdir,
                )
                runs.append(run)
                run, recompile_json = _run_recompile(
                    engine, source.taxonomy, base_rows, batches,
                    segment_rows, workdir,
                )
                runs.append(run)
                final_json[engine] = (delta_json, recompile_json)

    by_label = {run["label"]: run for run in runs}
    speedups = {
        engine: round(
            by_label[f"{engine}-recompile"]["wall_update_s"]
            / by_label[f"{engine}-delta-push"]["wall_update_s"],
            2,
        )
        for engine in ("cached", "mmap")
    }
    identical = {
        engine: final_json[engine][0] == final_json[engine][1]
        for engine in ("cached", "mmap")
    }
    report = {
        "benchmark": "streaming",
        "dataset": "short",
        "scale": os.environ["REPRO_BENCH_SCALE"],
        "transactions": n_rows,
        "segment_rows": segment_rows,
        "appended_rows_per_batch": batch_size,
        "batches": N_BATCHES,
        "minsup": MINSUP,
        "runs": runs,
        "wall_update_s": {
            run["label"]: run["wall_update_s"] for run in runs
        },
        "speedup_delta_push": speedups,
        "index_bit_identical": identical,
    }
    fold_report(args.out, "streaming", report, quick=args.quick)

    for run in runs:
        paper_row(
            run["label"],
            wall_update_s=run["wall_update_s"],
            index_version=run["index_version"],
            rules=run["rules"],
        )
    paper_row("speedup", **speedups)
    print(f"wrote {args.out}")
    if args.trace:
        print(f"wrote trace {args.trace}")

    failures = []
    # Structure: only tail state is touched by the streaming updates.
    # The cached engine's vertical bitmaps record tail-ORs as
    # ``extensions``; the mmap engine's segmented matrix records tail
    # ``segments_extended`` (and must never repack post-bootstrap).
    # Either engine invalidating anything means the O(append) claim is
    # broken.
    cached = by_label["cached-delta-push"]
    if cached["extensions"] != N_BATCHES:
        failures.append(
            f"cached: expected {N_BATCHES} bitmap tail extensions, saw "
            f"{cached['extensions']}"
        )
    mmap_run = by_label["mmap-delta-push"]
    if mmap_run["segments_extended"] != N_BATCHES:
        failures.append(
            f"mmap: expected {N_BATCHES} tail segment extensions, saw "
            f"{mmap_run['segments_extended']}"
        )
    if mmap_run["segments_packed"] != 0:
        failures.append(
            "mmap: streaming updates repacked segments: "
            f"{mmap_run['segments_packed']} packs"
        )
    for engine in ("cached", "mmap"):
        if by_label[f"{engine}-delta-push"]["invalidations"] != 0:
            failures.append(f"{engine}: streaming updates invalidated")
        if not identical[engine]:
            failures.append(
                f"{engine}: delta-maintained index differs from the "
                "recompiled index"
            )
        if speedups[engine] < MIN_SPEEDUP[engine]:
            failures.append(
                f"{engine}: delta push only {speedups[engine]}x faster "
                f"than recompile (need >= {MIN_SPEEDUP[engine]}x)"
            )
    if failures and args.check:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    for failure in failures:
        print(f"warn (--no-check): {failure}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
