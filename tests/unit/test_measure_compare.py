"""Unit tests for cross-measure comparison and measure threading."""

import pytest

from repro.core.api import MiningConfig, mine_negative_rules
from repro.core.explain import (
    explain_result_rule,
    format_agreement,
)
from repro.core.rulegen import NegativeRule
from repro.core.session import MiningSession
from repro.errors import ConfigError
from repro.measures.compare import (
    MeasureVerdict,
    compare_measures,
)
from repro.measures.registry import measure_names
from repro.measures.scoring import score_negative_rule
from repro.serve.selective import mine_selective
from repro.synthetic.grocery import generate_grocery_dataset

MINSUP = 0.05
MINRI = 0.5


@pytest.fixture(scope="module")
def grocery():
    return generate_grocery_dataset(
        num_transactions=1200, loyalty_strength=0.9, seed=1998
    )


@pytest.fixture(scope="module")
def result(grocery):
    return mine_negative_rules(
        grocery.database,
        grocery.taxonomy,
        config=MiningConfig(minsup=MINSUP, minri=MINRI, max_size=3),
    )


@pytest.fixture(scope="module")
def comparison(result):
    return compare_measures(result, MINSUP, MINRI)


class TestCompareMeasures:
    def test_covers_every_registered_measure(self, comparison):
        assert tuple(comparison.evaluations) == measure_names()

    def test_ri_evaluation_reproduces_the_run(self, result, comparison):
        evaluation = comparison.evaluations["ri"]
        assert evaluation.negatives == result.negative_itemsets
        assert evaluation.rules == result.rules

    def test_measure_subset(self, result):
        partial = compare_measures(
            result, MINSUP, MINRI, measures=("ri", "coherent")
        )
        assert tuple(partial.evaluations) == ("ri", "coherent")

    def test_rules_carry_their_measure(self, comparison):
        for name, evaluation in comparison.evaluations.items():
            for rule in evaluation.rules:
                assert rule.measure == name

    def test_jaccard_self_is_one(self, comparison):
        for name in comparison.evaluations:
            assert comparison.jaccard(name, name) == 1.0

    def test_jaccard_two_empty_sets_is_one(self, comparison):
        # coherent admits nothing on sparse market-basket data.
        assert not comparison.evaluations["coherent"].rules
        assert comparison.jaccard("coherent", "coherent") == 1.0

    def test_overlap_matrix_is_symmetric(self, comparison):
        matrix = comparison.overlap_matrix()
        names = list(matrix)
        assert names == list(measure_names())
        for first in names:
            for second in names:
                assert matrix[first][second] == pytest.approx(
                    matrix[second][first]
                )

    def test_agreement_for_ranks_are_one_based(self, comparison):
        evaluation = comparison.evaluations["ri"]
        assert evaluation.rules
        top = evaluation.rules[0]
        agreement = comparison.agreement_for(top)
        assert set(agreement) == set(measure_names())
        verdict = agreement["ri"]
        assert verdict.admitted
        assert verdict.rank == 1
        assert verdict.out_of == len(evaluation.rules)
        assert verdict.score == pytest.approx(top.ri)
        assert not agreement["coherent"].admitted
        assert agreement["coherent"].rank is None

    def test_summary_mentions_counts_and_jaccard(self, comparison):
        summary = comparison.summary()
        for name in measure_names():
            assert name in summary
        assert "jaccard(ri, kong-interest)" in summary

    def test_stale_output_without_counts_rejected(self, result):
        class Stale:
            candidates = result.candidates
            counts = {}
            large_itemsets = result.large_itemsets
            total_transactions = result.total_transactions

        with pytest.raises(ConfigError, match="no candidate counts"):
            compare_measures(Stale(), MINSUP, MINRI)

    def test_zero_transaction_total_rejected(self, result):
        class Stale:
            candidates = result.candidates
            counts = result.counts
            large_itemsets = result.large_itemsets
            total_transactions = 0

        with pytest.raises(ConfigError, match="no transaction total"):
            compare_measures(Stale(), MINSUP, MINRI)


class TestAgreementRendering:
    def test_format_agreement(self):
        agreement = {
            "ri": MeasureVerdict(
                "ri", admitted=True, score=0.75, rank=2, out_of=9
            ),
            "coherent": MeasureVerdict("coherent", admitted=False),
        }
        text = format_agreement(agreement)
        assert text.startswith("measure agreement:")
        assert "admits (score=0.7500, rank 2/9)" in text
        assert "does not admit" in text

    def test_explain_appends_agreement_section(
        self, result, comparison, grocery
    ):
        rule = result.rules[0]
        plain = explain_result_rule(
            rule,
            result.negative_itemsets,
            result.large_itemsets,
            grocery.taxonomy,
        )
        assert "measure agreement" not in plain
        augmented = explain_result_rule(
            rule,
            result.negative_itemsets,
            result.large_itemsets,
            grocery.taxonomy,
            agreement=comparison.agreement_for(rule),
        )
        assert augmented.startswith(plain)
        assert "measure agreement:" in augmented
        assert "kong-interest" in augmented

    def test_explain_non_ri_rule_uses_score_line(self, grocery, result):
        kong = mine_negative_rules(
            grocery.database,
            grocery.taxonomy,
            config=MiningConfig(
                minsup=MINSUP,
                minri=MINRI,
                max_size=3,
                measure="kong-interest",
            ),
        )
        assert kong.rules, "kong-interest admits rules on grocery data"
        rule = kong.rules[0]
        explanation = explain_result_rule(
            rule,
            kong.negative_itemsets,
            kong.large_itemsets,
            grocery.taxonomy,
        )
        assert "score(kong-interest) =" in explanation
        assert "  RI = " not in explanation


class TestMeasureThreading:
    def test_session_binds_the_measure(self, grocery):
        session = MiningSession(
            grocery.database, grocery.taxonomy,
            measure="kong-interest",
        )
        assert session.measure.spec == "kong-interest"
        assert "kong-interest" in repr(session)

    def test_config_rejects_unknown_measure(self):
        with pytest.raises(ConfigError, match="unknown interest measure"):
            MiningConfig(minsup=0.1, minri=0.5, measure="tofu")

    def test_config_rejects_figure3_with_alternative_measure(self):
        with pytest.raises(ConfigError, match="figure3_literal"):
            MiningConfig(
                minsup=0.1,
                minri=0.5,
                measure="coherent",
                figure3_literal=True,
            )

    def test_result_rules_record_the_measure(self, grocery):
        kong = mine_negative_rules(
            grocery.database,
            grocery.taxonomy,
            config=MiningConfig(
                minsup=MINSUP,
                minri=MINRI,
                max_size=3,
                measure="kong-interest",
            ),
        )
        assert kong.config.measure == "kong-interest"
        assert all(r.measure == "kong-interest" for r in kong.rules)

    def test_as_dict_round_trips_measure(self, grocery):
        rule = NegativeRule(
            antecedent=(1,),
            consequent=(2,),
            ri=0.4,
            expected_support=0.1,
            actual_support=0.02,
            antecedent_support=0.2,
            consequent_support=0.3,
            measure="coherent",
        )
        payload = rule.as_dict()
        assert payload["measure"] == "coherent"
        assert NegativeRule.from_dict(payload) == rule

    def test_from_dict_defaults_to_ri(self):
        payload = NegativeRule(
            antecedent=(1,),
            consequent=(2,),
            ri=0.4,
            expected_support=0.1,
            actual_support=0.02,
            antecedent_support=0.2,
            consequent_support=0.3,
        ).as_dict()
        payload.pop("measure")
        assert NegativeRule.from_dict(payload).measure == "ri"

    def test_scoring_can_attach_measure_scores(self, result):
        rule = result.rules[0]
        plain = score_negative_rule(rule, result.total_transactions)
        assert plain.measures is None
        assert "measures" not in plain.as_dict()
        scored = score_negative_rule(
            rule, result.total_transactions, include_measures=True
        )
        assert scored.measures is not None
        assert set(scored.measures) == set(measure_names())
        assert scored.measures["ri"] == pytest.approx(rule.ri)
        assert scored.as_dict()["measures"] == scored.measures

    def test_selective_mining_honors_the_measure(self, grocery):
        red = grocery.taxonomy.id_of("KolaRed")
        selective = mine_selective(
            grocery.database,
            grocery.taxonomy,
            red,
            MINSUP,
            MINRI,
            measure="kong-interest",
        )
        assert selective.negative_rules
        for rule in selective.negative_rules:
            assert rule.measure == "kong-interest"
