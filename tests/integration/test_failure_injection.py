"""Failure-injection and adversarial-input integration tests.

The library must fail loudly and precisely — never silently produce wrong
rules — when fed inconsistent inputs: transactions outside the taxonomy,
degenerate taxonomies, corrupt files, and extreme thresholds.
"""

import pytest

from repro.core.api import mine_negative_rules
from repro.core.candidates import generate_negative_candidates
from repro.data.database import TransactionDatabase
from repro.data.filedb import FileBackedDatabase
from repro.errors import ConfigError, DatabaseError, TaxonomyError
from repro.mining.generalized import mine_generalized
from repro.mining.itemset_index import LargeItemsetIndex
from repro.taxonomy.builders import (
    taxonomy_from_nested,
    taxonomy_from_parents,
)


@pytest.fixture
def taxonomy():
    return taxonomy_from_nested(
        {"drinks": {"soda": ["cola", "lemonade"]}}
    )


class TestForeignItems:
    def test_transaction_item_outside_taxonomy_raises(self, taxonomy):
        database = TransactionDatabase([[taxonomy.id_of("cola"), 9999]])
        with pytest.raises(TaxonomyError, match="9999"):
            mine_generalized(database, taxonomy, 0.5)

    def test_pipeline_propagates_the_error(self, taxonomy):
        database = TransactionDatabase([[9999]])
        with pytest.raises(TaxonomyError):
            mine_negative_rules(database, taxonomy, minsup=0.5, minri=0.5)


class TestDegenerateTaxonomies:
    def test_flat_taxonomy_yields_no_candidates(self):
        """All items isolated roots: no children, no siblings — the
        approach has no domain knowledge to work with and must return
        empty results rather than fail."""
        flat = taxonomy_from_parents({}, extra_roots=range(5))
        rows = [[0, 1], [0, 1], [2, 3], [0, 4]]
        result = mine_negative_rules(
            TransactionDatabase(rows), flat, minsup=0.25, minri=0.3
        )
        assert result.rules == []
        assert result.negative_itemsets == []
        assert result.stats.large_itemsets > 0  # positives still found

    def test_single_chain_taxonomy(self):
        """A pure chain (each category exactly one child) offers no
        siblings and single-child replacements: candidates degenerate."""
        chain = taxonomy_from_parents({1: 0, 2: 1, 3: 2})
        rows = [[3]] * 10
        result = mine_negative_rules(
            TransactionDatabase(rows), chain, minsup=0.5, minri=0.5
        )
        assert result.rules == []

    def test_two_level_star(self):
        """One category with many children works and is the worst
        granularity case — candidates exist but stay pairwise."""
        star = taxonomy_from_parents({child: 100 for child in range(6)})
        rows = [[0, 1]] * 40 + [[2]] * 30 + [[3]] * 30
        result = mine_negative_rules(
            TransactionDatabase(rows), star, minsup=0.2, minri=0.3
        )
        for negative in result.negative_itemsets:
            assert len(negative.items) == 2


class TestExtremeThresholds:
    @pytest.fixture
    def dataset(self, taxonomy):
        cola = taxonomy.id_of("cola")
        lemonade = taxonomy.id_of("lemonade")
        rows = [[cola]] * 50 + [[lemonade]] * 50 + [[cola, lemonade]] * 5
        return TransactionDatabase(rows)

    def test_minsup_one_finds_no_rules(self, taxonomy, dataset):
        result = mine_negative_rules(
            dataset, taxonomy, minsup=1.0, minri=0.5
        )
        assert result.rules == []
        assert result.negative_itemsets == []
        # The ancestors of every item are in 100 % of transactions and
        # legitimately remain large even at minsup = 1.
        for items, support in result.large_itemsets.items():
            assert support == pytest.approx(1.0)

    def test_minri_one_is_strictest(self, taxonomy, dataset):
        strict = mine_negative_rules(
            dataset, taxonomy, minsup=0.04, minri=1.0
        )
        loose = mine_negative_rules(
            dataset, taxonomy, minsup=0.04, minri=0.1
        )
        assert len(strict.rules) <= len(loose.rules)

    def test_rules_monotone_in_minri(self, taxonomy, dataset):
        previous = None
        for minri in (0.9, 0.6, 0.3, 0.1):
            result = mine_negative_rules(
                dataset, taxonomy, minsup=0.04, minri=minri
            )
            current = {
                (rule.antecedent, rule.consequent)
                for rule in result.rules
            }
            if previous is not None:
                assert previous <= current
            previous = current


class TestCorruptFiles:
    def test_truncated_basket_file(self, tmp_path):
        path = tmp_path / "broken.basket"
        path.write_text("1 2 3\n4 notanumber\n")
        with pytest.raises(DatabaseError, match="broken.basket:2"):
            FileBackedDatabase(path)

    def test_directory_as_basket_file(self, tmp_path):
        with pytest.raises(DatabaseError):
            FileBackedDatabase(tmp_path)


class TestStaleIndexInputs:
    def test_candidates_with_index_items_missing_from_taxonomy(
        self, taxonomy
    ):
        """An index mentioning nodes the (pruned) taxonomy lost must be
        skipped gracefully — this happens when callers prune harder than
        the index they pass."""
        index = LargeItemsetIndex(
            {(777,): 0.5, (888,): 0.5, (777, 888): 0.4}
        )
        candidates = generate_negative_candidates(
            index, taxonomy, 0.1, 0.5
        )
        assert candidates == {}

    def test_config_errors_are_not_swallowed(self, taxonomy):
        database = TransactionDatabase([[taxonomy.id_of("cola")]])
        with pytest.raises(ConfigError):
            mine_negative_rules(
                database, taxonomy, minsup=0.5, minri=0.5,
                engine="warpdrive",
            )
