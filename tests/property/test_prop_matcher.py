"""Property-based tests: the fast basket matcher vs the naive scan.

:meth:`repro.serve.matcher.BasketMatcher.match` answers subset queries
through the compiled antecedent postings;
:func:`repro.serve.matcher.naive_match` answers them by scanning every
rule with an independent ``issuperset`` test. The two must be
*bit-identical* — same rules, same order, same ``consequent_present``
flags — on any index (flat or taxonomy-aware) and any basket,
including empty baskets and baskets holding item ids the index has
never seen.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rulegen import NegativeRule
from repro.mining.rules import AssociationRule
from repro.serve import BasketMatcher, RuleIndex, naive_match
from repro.taxonomy.tree import Taxonomy


def _build_taxonomy(rng: random.Random) -> Taxonomy:
    """A random two-level taxonomy over items 1..30 (roots 101..):
    every item gets a parent category with probability 0.8."""
    parents = {}
    categories = list(range(101, 101 + rng.randint(1, 4)))
    for item in range(1, 31):
        if rng.random() < 0.8:
            parents[item] = rng.choice(categories)
    return Taxonomy(parents=parents, extra_roots=range(1, 31))


def _random_itemset(rng: random.Random, nodes) -> tuple:
    size = rng.randint(1, 3)
    return tuple(sorted(rng.sample(nodes, size)))


@st.composite
def scenarios(draw):
    """A random compiled index + a batch of baskets to score."""
    seed = draw(st.integers(min_value=0, max_value=1_000_000))
    with_taxonomy = draw(st.booleans())
    rng = random.Random(seed)
    taxonomy = _build_taxonomy(rng) if with_taxonomy else None
    nodes = list(taxonomy.nodes) if taxonomy else list(range(1, 31))

    negatives, positives = [], []
    for _ in range(rng.randint(0, 12)):
        antecedent = _random_itemset(rng, nodes)
        consequent = _random_itemset(
            rng, [n for n in nodes if n not in antecedent]
        )
        if rng.random() < 0.5:
            negatives.append(NegativeRule(
                antecedent=antecedent,
                consequent=consequent,
                ri=rng.uniform(0.1, 5.0),
                expected_support=0.3,
                actual_support=0.01,
                antecedent_support=0.4,
                consequent_support=0.4,
            ))
        else:
            positives.append(AssociationRule(
                antecedent=antecedent,
                consequent=consequent,
                support=rng.uniform(0.05, 0.5),
                confidence=rng.uniform(0.3, 1.0),
            ))
    index = RuleIndex(
        negative_rules=negatives,
        positive_rules=positives,
        taxonomy=taxonomy,
    )

    baskets = [[]]  # the empty basket is always in the batch
    for _ in range(rng.randint(1, 8)):
        size = rng.randint(1, 6)
        basket = rng.sample(nodes, min(size, len(nodes)))
        if rng.random() < 0.4:
            basket.append(rng.randint(900, 950))  # unknown item id
        rng.shuffle(basket)
        baskets.append(basket)
    return index, baskets


@given(scenarios())
@settings(max_examples=150, deadline=None)
def test_matcher_is_bit_identical_to_naive_scan(scenario):
    index, baskets = scenario
    matcher = BasketMatcher(index)
    for basket in baskets:
        assert matcher.match(basket) == naive_match(index, basket)


@given(scenarios())
@settings(max_examples=60, deadline=None)
def test_matcher_survives_json_round_trip(scenario):
    """Persistence must not change what fires: the reloaded index
    matches exactly like the original."""
    index, baskets = scenario
    reloaded = RuleIndex.from_json(index.to_json())
    assert len(reloaded) == len(index)
    matcher = BasketMatcher(reloaded)
    for basket in baskets:
        assert matcher.match(basket) == naive_match(index, basket)


@given(scenarios())
@settings(max_examples=60, deadline=None)
def test_matches_are_subset_of_rules_and_sorted_by_slot(scenario):
    index, baskets = scenario
    matcher = BasketMatcher(index)
    for basket in baskets:
        matches = matcher.match(basket)
        slots = [match.slot for match in matches]
        assert slots == sorted(slots)
        for match in matches:
            assert index.rule(match.slot).rule is match.rule
