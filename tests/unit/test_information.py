"""Unit tests for the information-theoretic measures."""

import math

import pytest

from repro.errors import ConfigError
from repro.measures.information import (
    expected_itemset_support,
    surprise_bits,
)


class TestSurpriseBits:
    def test_zero_when_matching_expectation(self):
        assert surprise_bits(0.3, 0.3) == pytest.approx(0.0)

    def test_grows_with_deviation(self):
        small = surprise_bits(0.3, 0.25)
        large = surprise_bits(0.3, 0.05)
        assert large > small > 0.0

    def test_symmetric_in_direction_of_surprise(self):
        below = surprise_bits(0.3, 0.1)
        above = surprise_bits(0.3, 0.5)
        assert below > 0.0 and above > 0.0

    def test_paper_intro_example_is_informative(self):
        """An item expected in 1,000 of 10M transactions but observed in
        500,000 'significantly deviates from our earlier expectation'."""
        expected = 1_000 / 10_000_000
        actual = 500_000 / 10_000_000
        assert surprise_bits(expected, actual) > 0.2

    def test_tiny_expectation_tiny_actual_uninteresting(self):
        """The paper's negative case: expected pair support 1e-8, actual
        0 — 'the deviation from expectation is extremely small'."""
        assert surprise_bits(1e-8, 0.0) < 1e-6

    def test_impossible_observation_is_infinite(self):
        assert surprise_bits(0.0, 0.5) == math.inf

    def test_certain_expectation_violated_is_infinite(self):
        assert surprise_bits(1.0, 0.5) == math.inf

    def test_boundary_matches_are_zero(self):
        assert surprise_bits(0.0, 0.0) == 0.0
        assert surprise_bits(1.0, 1.0) == 0.0

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(ConfigError):
            surprise_bits(bad, 0.5)
        with pytest.raises(ConfigError):
            surprise_bits(0.5, bad)


class TestExpectedItemsetSupport:
    def test_paper_intro_numbers(self):
        assert expected_itemset_support(1, 50_000, 5.0) == pytest.approx(
            1e-4
        )
        assert expected_itemset_support(2, 50_000, 5.0) == pytest.approx(
            1e-8
        )

    def test_monotone_decreasing_in_size(self):
        values = [
            expected_itemset_support(k, 1000, 10.0) for k in range(1, 5)
        ]
        assert values == sorted(values, reverse=True)

    def test_clamped_to_one(self):
        assert expected_itemset_support(1, 2, 10.0) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            expected_itemset_support(0, 100, 5.0)
        with pytest.raises(ConfigError):
            expected_itemset_support(2, 0, 5.0)
        with pytest.raises(ConfigError):
            expected_itemset_support(2, 100, 0.0)
