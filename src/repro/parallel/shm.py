"""Shared-memory publication of the bit-packed matrix (zero-copy workers).

The process-per-task pool (:mod:`repro.parallel.pool`) re-pickles row
slices into every worker attempt, so spawn + serialization overhead grows
with the database while the counting kernel itself got faster with every
PR — at quick-bench scale the transport dominates. This module removes
the transport: the driver packs the database once
(:class:`~repro.mining.bitpack.PackedMatrix`), copies its two arrays into
one ``multiprocessing.shared_memory`` segment, and long-lived workers
attach zero-copy. Per pass, only candidate batches travel out and count
vectors travel back.

Segment layout (one flat buffer)::

    [nodes  : int64  x n_nodes]            sorted node ids, slot order
    [words  : uint64 x n_nodes x n_words]  bit-packed transaction matrix

Ownership and lifecycle
-----------------------
Exactly one process — the driver — *owns* a segment: it creates it,
registers it in a module-level table, and is responsible for
``unlink()``. Workers *attach*: they open the same name read-only in
spirit (POSIX shm has no enforcement; nothing here writes after publish)
and must ``close()`` without unlinking. Two safety nets keep ``/dev/shm``
clean:

* an ``atexit`` hook unlinks every still-owned segment, so an owner that
  exits without explicit cleanup (crash of the mining driver, a test that
  forgets) never leaks a name;
* attach never *unregisters* from the ``resource_tracker``: workers are
  always ``multiprocessing`` children of the owner and therefore share
  the owner's tracker process, where register is a set-add (the attach
  side's duplicate collapses) — unregistering from a worker would strip
  the *owner's* registration and turn the final unlink into a tracker
  error. On 3.13+ attach passes ``track=False``, skipping the duplicate
  registration outright. (The classic premature-unlink bug, bpo-39959,
  only bites attachers with their *own* tracker — unrelated processes —
  which this architecture never creates.)

Unlinking while workers are still attached is safe on POSIX: the name
disappears immediately, the mapping stays valid until the last
``close()``. The owner therefore re-publishes a mutated database by
creating a fresh segment, pointing workers at it, and unlinking the old
one — no barrier needed.

:func:`live_segments` lists the repro-owned names currently visible in
``/dev/shm`` so lifecycle tests can assert leak-freedom.
"""

from __future__ import annotations

import atexit
import sys
import uuid
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from ..mining import vertical
from ..mining.bitpack import PackedMatrix
from ..obs import api as obs

#: Every segment name this package creates starts with this, so stale
#: entries are attributable (and findable by :func:`live_segments`).
SEGMENT_PREFIX = "repro-shm-"

#: Segments created (and not yet unlinked) by this process: name -> the
#: SharedMemory object. The atexit hook drains it.
_OWNED: dict[str, shared_memory.SharedMemory] = {}


def _unlink_owned() -> None:
    """Unlink every segment this process still owns (atexit hook)."""
    for name, segment in list(_OWNED.items()):
        _OWNED.pop(name, None)
        try:
            segment.close()
        except BufferError:  # pragma: no cover — views still exported
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover — already gone
            pass


atexit.register(_unlink_owned)


def live_segments() -> tuple[str, ...]:
    """Repro-owned segment names currently visible in ``/dev/shm``.

    Empty on platforms without a visible shm filesystem; the lifecycle
    tests that assert leak-freedom skip themselves there.
    """
    root = Path("/dev/shm")
    if not root.is_dir():
        return ()
    return tuple(
        sorted(
            entry.name
            for entry in root.iterdir()
            if entry.name.startswith(SEGMENT_PREFIX)
        )
    )


@dataclass(frozen=True, slots=True)
class SegmentHandle:
    """Everything a worker needs to attach: name, shape, provenance.

    *fingerprint* is the owner's publish sequence number; a worker
    attached under handle N never serves a batch meant for handle M, so
    a mutated database (fingerprint bump -> re-publish -> pool
    reconfigure) can never be counted against stale words.
    """

    name: str
    n_rows: int
    n_nodes: int
    n_words: int
    fingerprint: int

    @property
    def nodes_bytes(self) -> int:
        return self.n_nodes * 8

    @property
    def words_bytes(self) -> int:
        return self.n_nodes * self.n_words * 8

    @property
    def nbytes(self) -> int:
        return self.nodes_bytes + self.words_bytes


class SharedPackedMatrix:
    """A :class:`PackedMatrix` whose arrays live in a shm segment.

    Build with :meth:`create` (owner side: copies the matrix in) or
    :meth:`attach` (worker side: zero-copy views over the same pages).
    Both sides expose :attr:`matrix`, a fully functional
    :class:`~repro.mining.bitpack.PackedMatrix` — derived taxonomy rows
    are memoized per process, on top of the shared base rows.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        handle: SegmentHandle,
        owner: bool,
    ) -> None:
        self._segment = segment
        self.handle = handle
        self.owner = owner
        self._closed = False
        nodes = np.ndarray(
            (handle.n_nodes,), dtype="<i8", buffer=segment.buf
        )
        words = np.ndarray(
            (handle.n_nodes, handle.n_words),
            dtype="<u8",
            buffer=segment.buf,
            offset=handle.nodes_bytes,
        )
        self.matrix = PackedMatrix(handle.n_rows, nodes, words)

    @classmethod
    def create(
        cls, matrix: PackedMatrix, fingerprint: int = 0
    ) -> "SharedPackedMatrix":
        """Publish *matrix* into a fresh owned segment (one copy)."""
        nodes = np.ascontiguousarray(matrix.nodes, dtype="<i8")
        words = np.ascontiguousarray(matrix.words, dtype="<u8")
        handle = SegmentHandle(
            name=SEGMENT_PREFIX + uuid.uuid4().hex[:16],
            n_rows=matrix.n_rows,
            n_nodes=len(nodes),
            n_words=matrix.n_words,
            fingerprint=fingerprint,
        )
        segment = shared_memory.SharedMemory(
            name=handle.name, create=True, size=max(1, handle.nbytes)
        )
        _OWNED[segment.name] = segment
        # Copy in before constructing the PackedMatrix view: its slot
        # table is derived from the nodes array at construction time.
        if handle.nbytes:
            np.ndarray(
                nodes.shape, dtype="<i8", buffer=segment.buf
            )[:] = nodes
            np.ndarray(
                words.shape,
                dtype="<u8",
                buffer=segment.buf,
                offset=handle.nodes_bytes,
            )[:] = words
        return cls(segment, handle, owner=True)

    @classmethod
    def attach(cls, handle: SegmentHandle) -> "SharedPackedMatrix":
        """Attach to an owner's segment; never unlinks it."""
        if sys.version_info >= (3, 13):
            segment = shared_memory.SharedMemory(
                name=handle.name, create=False, track=False
            )
        else:
            # <= 3.12 registers the attach with the resource tracker;
            # workers share the owner's tracker, so the duplicate
            # collapses and MUST NOT be unregistered (see module doc).
            segment = shared_memory.SharedMemory(
                name=handle.name, create=False
            )
        if segment.size < handle.nbytes:  # pragma: no cover — paranoia
            segment.close()
            raise ValueError(
                f"segment {handle.name} holds {segment.size} bytes, "
                f"handle expects {handle.nbytes}"
            )
        return cls(segment, handle, owner=False)

    @property
    def nbytes(self) -> int:
        return self.handle.nbytes

    def close(self) -> None:
        """Drop this process's mapping (both sides; idempotent)."""
        if self._closed:
            return
        self._closed = True
        # The ndarray views must die before the mmap can close; anything
        # still holding one keeps the mapping alive and close() below
        # would raise BufferError — tolerated, unlink() still works.
        self.matrix = None
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover — caller kept a view
            pass

    def unlink(self) -> None:
        """Remove the segment name (owner only; idempotent)."""
        _OWNED.pop(self._segment.name, None)
        try:
            self._segment.unlink()
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        side = "owner" if self.owner else "attached"
        return (
            f"SharedPackedMatrix({self.handle.name}, {side}, {state}, "
            f"rows={self.handle.n_rows}, nodes={self.handle.n_nodes})"
        )


# ----------------------------------------------------------------------
# Persistent-worker protocol functions (picklable under spawn)
# ----------------------------------------------------------------------

class _WorkerState:
    """One worker's attachment: shared matrix + per-setup count policy."""

    __slots__ = ("shared", "taxonomy", "batch_words")

    def __init__(self, shared, taxonomy, batch_words) -> None:
        self.shared = shared
        self.taxonomy = taxonomy
        self.batch_words = batch_words

    def close(self) -> None:
        self.shared.close()


def shm_worker_setup(payload) -> _WorkerState:
    """Persistent-pool setup: attach the segment named in *payload*.

    *payload* is ``(handle, taxonomy, batch_words)``. Called once at
    worker start and again on every re-publish (``setup`` message); the
    pool reports the attach wall time back to the driver.
    """
    handle, taxonomy, batch_words = payload
    return _WorkerState(
        SharedPackedMatrix.attach(handle), taxonomy, batch_words
    )


def shm_worker_count(state: _WorkerState, payload):
    """Persistent-pool task: count one candidate batch zero-copy.

    *payload* is ``(candidates, observe)``; returns ``(vector,
    registry)`` where *vector* lists each candidate's count in payload
    order (a plain list pickles smaller than a dict keyed by itemsets)
    and *registry* carries the worker-scoped metrics when the driver
    asked for observation, else ``None``.
    """
    candidates, observe = payload
    matrix = state.shared.matrix
    if not observe:
        counts = matrix.count(
            candidates,
            taxonomy=state.taxonomy,
            batch_words=state.batch_words,
        )
        return [counts[candidate] for candidate in candidates], None
    with obs.worker_collection() as registry:
        with obs.span("parallel.shm.batch") as span:
            span.annotate("candidates", len(candidates))
            span.annotate("fingerprint", state.shared.handle.fingerprint)
            stats = vertical.CacheStats(
                registry=registry, prefix="worker."
            )
            counts = matrix.count(
                candidates,
                taxonomy=state.taxonomy,
                batch_words=state.batch_words,
                stats=stats,
            )
    return [counts[candidate] for candidate in candidates], registry
