"""Positive (frequent / generalized) association mining substrate.

Negative-rule mining (the paper's contribution, in :mod:`repro.core`) is
built *on top of* positive mining: step 1 of the algorithm is "find all the
generalized large itemsets" using one of the Srikant–Agrawal algorithms
Basic, Cumulate or EstMerge, and the negative rule generator extends the
classic *ap-genrules* procedure. This subpackage implements all of that from
scratch:

* :mod:`~repro.mining.apriori` — plain Apriori and the ``apriori-gen``
  candidate join/prune.
* :mod:`~repro.mining.hash_tree` — the classic subset-counting hash tree.
* :mod:`~repro.mining.counting` — pluggable support-counting engines.
* :mod:`~repro.mining.generalized` — Basic / Cumulate / EstMerge miners over
  a taxonomy.
* :mod:`~repro.mining.partition` — the authors' own two-pass Partition
  algorithm (VLDB 1995), as an alternative substrate.
* :mod:`~repro.mining.aprioritid` — AprioriTid (single data pass) and
  AprioriHybrid, the other miners of Agrawal–Srikant 1994.
* :mod:`~repro.mining.rules` — positive rule generation (ap-genrules).
* :mod:`~repro.mining.itemset_index` — the hash table of large itemsets of
  Section 2.4.
"""

from .apriori import apriori_gen, find_large_itemsets
from .aprioritid import (
    find_large_itemsets_aprioritid,
    find_large_itemsets_hybrid,
)
from .counting import count_supports
from .generalized import extend_database, mine_generalized
from .hash_tree import HashTree
from .itemset_index import LargeItemsetIndex
from .partition import find_large_itemsets_partition
from .rules import AssociationRule, generate_rules

__all__ = [
    "apriori_gen",
    "find_large_itemsets",
    "find_large_itemsets_partition",
    "find_large_itemsets_aprioritid",
    "find_large_itemsets_hybrid",
    "count_supports",
    "mine_generalized",
    "extend_database",
    "HashTree",
    "LargeItemsetIndex",
    "AssociationRule",
    "generate_rules",
]
