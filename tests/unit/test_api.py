"""Unit tests for the high-level mine_negative_rules façade."""

import pytest

from repro.core.api import (
    MiningConfig,
    NegativeMiningResult,
    mine_negative_rules,
)
from repro.data.database import TransactionDatabase
from repro.errors import ConfigError


class TestMiningConfig:
    def test_defaults_valid(self):
        config = MiningConfig()
        assert config.miner == "improved"
        assert config.algorithm == "cumulate"

    @pytest.mark.parametrize(
        "field,value",
        [
            ("minsup", 0.0),
            ("minri", 1.5),
            ("miner", "other"),
            ("algorithm", "other"),
            ("engine", "other"),
            ("metrics", "verbose"),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(ConfigError):
            MiningConfig(**{field: value})


class TestMineNegativeRules:
    def test_accepts_raw_transactions(self, soft_drinks_taxonomy):
        taxonomy = soft_drinks_taxonomy
        coke, pepsi = taxonomy.id_of("Coke"), taxonomy.id_of("Pepsi")
        rows = [[coke]] * 50 + [[pepsi]] * 50
        result = mine_negative_rules(rows, taxonomy, minsup=0.2, minri=0.2)
        assert isinstance(result, NegativeMiningResult)

    def test_accepts_database(self, soft_drinks_taxonomy,
                              soft_drinks_database):
        result = mine_negative_rules(
            soft_drinks_database, soft_drinks_taxonomy,
            minsup=0.05, minri=0.4,
        )
        assert result.rules

    def test_finds_motivating_rule(self, soft_drinks_taxonomy,
                                   soft_drinks_database):
        """Paper Example 1: Ruffles goes with Coke, hence not with Pepsi."""
        taxonomy = soft_drinks_taxonomy
        result = mine_negative_rules(
            soft_drinks_database, taxonomy, minsup=0.05, minri=0.4,
        )
        pepsi = taxonomy.id_of("Pepsi")
        ruffles = taxonomy.id_of("Ruffles")
        pairs = {(rule.antecedent, rule.consequent) for rule in result.rules}
        assert ((pepsi,), (ruffles,)) in pairs

    def test_rule_sides_meet_minsup(self, soft_drinks_taxonomy,
                                    soft_drinks_database):
        result = mine_negative_rules(
            soft_drinks_database, soft_drinks_taxonomy,
            minsup=0.05, minri=0.4,
        )
        for rule in result.rules:
            assert rule.antecedent_support >= 0.05
            assert rule.consequent_support >= 0.05

    def test_rules_meet_minri(self, soft_drinks_taxonomy,
                              soft_drinks_database):
        result = mine_negative_rules(
            soft_drinks_database, soft_drinks_taxonomy,
            minsup=0.05, minri=0.4,
        )
        assert all(rule.ri >= 0.4 for rule in result.rules)

    def test_config_object_with_overrides(self, soft_drinks_taxonomy,
                                          soft_drinks_database):
        config = MiningConfig(minsup=0.5, minri=0.9, engine="index")
        result = mine_negative_rules(
            soft_drinks_database,
            soft_drinks_taxonomy,
            minsup=0.05,
            config=config,
        )
        assert result.config.minsup == 0.05   # override wins
        assert result.config.minri == 0.9     # from config
        assert result.config.engine == "index"

    def test_naive_and_improved_agree(self, soft_drinks_taxonomy,
                                      soft_drinks_database):
        improved = mine_negative_rules(
            soft_drinks_database, soft_drinks_taxonomy,
            minsup=0.05, minri=0.4, miner="improved",
        )
        naive = mine_negative_rules(
            soft_drinks_database, soft_drinks_taxonomy,
            minsup=0.05, minri=0.4, miner="naive",
        )
        improved_rules = {
            (rule.antecedent, rule.consequent) for rule in improved.rules
        }
        naive_rules = {
            (rule.antecedent, rule.consequent) for rule in naive.rules
        }
        assert improved_rules == naive_rules

    def test_summary_mentions_rules(self, soft_drinks_taxonomy,
                                    soft_drinks_database):
        result = mine_negative_rules(
            soft_drinks_database, soft_drinks_taxonomy,
            minsup=0.05, minri=0.4,
        )
        text = result.summary(soft_drinks_taxonomy, limit=2)
        assert "rules" in text
        assert "=/=>" in text

    def test_invalid_override_rejected(self, soft_drinks_taxonomy):
        database = TransactionDatabase([[0]])
        with pytest.raises(ConfigError):
            mine_negative_rules(
                database, soft_drinks_taxonomy, minsup=2.0
            )

    def test_trace_and_metrics_observability(
        self, soft_drinks_taxonomy, soft_drinks_database, tmp_path, capsys
    ):
        """trace_path writes valid JSONL; metrics="json" prints a
        parseable registry snapshot covering the counting passes."""
        import json

        trace = tmp_path / "mine-trace.jsonl"
        result = mine_negative_rules(
            soft_drinks_database, soft_drinks_taxonomy,
            minsup=0.05, minri=0.4,
            trace_path=str(trace), metrics="json",
        )
        assert result.rules  # observability must not change the mining

        records = [
            json.loads(line)
            for line in trace.read_text().splitlines()
        ]
        assert records, "trace file is empty"
        assert records[-1]["type"] == "metrics"
        span_names = {
            record["name"] for record in records
            if record["type"] == "span"
        }
        assert "mine.rule_gen" in span_names
        assert any(name.startswith("count.") for name in span_names)

        snapshot = json.loads(capsys.readouterr().err)
        counters = snapshot["counters"]
        assert counters["counting.passes"] >= 1
        assert counters["counting.candidates"] >= 1
        assert counters["mine.runs"] == 1
