"""E10 — Online serving: basket-scoring QPS/latency, cold vs hot LRU.

Mines a rule set from the "Tall" dataset once, compiles it into a
:class:`~repro.serve.rule_index.RuleIndex`, and replays the dataset's
own transactions as scoring requests against a
:class:`~repro.serve.service.RuleService` in two configurations:

``cold``
    the hot-basket cache disabled (``cache_size=0``) — every request
    pays the full inverted-index match plus payload construction;
``hot``
    a warmed LRU cache — every request is answered from the cache.

Before timing, the fast matcher is asserted bit-identical to the naive
all-rules subset scan (:func:`~repro.serve.matcher.naive_match`) on the
whole request workload, with the taxonomy-aware index and with a flat
one, so the numbers always describe a *correct* matcher. One on-target
selective generation (``op: select``) is also timed, for the report
only.

The gate values are ``wall_per_10k_s`` — per-request latency times
10,000 — because the regression gate clamps anything below 5 ms to its
measurement floor and a single hot request is microseconds.

Folds its report into ``BENCH_counting.json`` under the ``"serving"``
key (``["quick"]["serving"]`` on ``--quick``). Exits non-zero when the
hot path is not faster than the cold path — the LRU regression the CI
smoke run pins.

Run::

    python -m benchmarks.bench_serving --quick
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path


def _build_index(dataset, minsup: float, minri: float, minconf: float,
                 max_positive: int):
    """Mine once and compile the serving index (plus a flat twin)."""
    from repro.core.api import MiningConfig, mine_negative_rules
    from repro.mining.rules import generate_rules
    from repro.serve import RuleIndex

    config = MiningConfig(
        minsup=minsup, minri=minri, max_sibling_replacements=1
    )
    result = mine_negative_rules(
        dataset.database, dataset.taxonomy, config=config
    )
    # A serving index keeps the strongest positives, not the saturated
    # minconf-0.5 set — generate_rules sorts by confidence already.
    positives = generate_rules(result.large_itemsets, minconf)
    positives = positives[:max_positive]
    index = RuleIndex(
        negative_rules=result.rules,
        positive_rules=positives,
        taxonomy=dataset.taxonomy,
    )
    flat = RuleIndex(
        negative_rules=result.rules, positive_rules=positives
    )
    return index, flat


def _verify_matcher(index, baskets) -> None:
    """Fast path == naive oracle, bit-identical, on every basket."""
    from repro.serve import BasketMatcher, naive_match

    matcher = BasketMatcher(index)
    for basket in baskets:
        fast = matcher.match(basket)
        naive = naive_match(index, basket)
        assert fast == naive, (
            f"matcher disagrees with the naive scan on {basket}"
        )


def _time_mode(service, baskets, rounds: int) -> dict:
    """Score every basket *rounds* times; per-request wall clock."""
    start = time.perf_counter()
    matches = 0
    for _ in range(rounds):
        for basket in baskets:
            matches += service.score(list(basket))["total_matches"]
    wall = time.perf_counter() - start
    requests = rounds * len(baskets)
    per_request = wall / requests
    return {
        "requests": requests,
        "wall_s": round(wall, 4),
        "latency_us": round(per_request * 1e6, 1),
        "wall_per_10k_s": round(per_request * 1e4, 5),
        "qps": round(1.0 / per_request, 1),
        "matches_per_request": matches // requests,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small dataset / short workload (the CI smoke "
             "configuration)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_counting.json",
        help="JSON report to fold the serving key into",
    )
    parser.add_argument(
        "--no-check",
        action="store_false",
        dest="check",
        help="report only; do not fail when the hot path is not faster "
             "than the cold path",
    )
    args = parser.parse_args(argv)

    os.environ.setdefault(
        "REPRO_BENCH_SCALE", "0.02" if args.quick else "0.1"
    )
    from benchmarks.common import MINRI, dataset, fold_report, paper_row
    from repro.serve import RuleService, mine_selective

    tall = dataset("tall")
    minsup = 0.10
    n_baskets = 100 if args.quick else 300
    hot_rounds = 5 if args.quick else 10

    index, flat = _build_index(
        tall, minsup, MINRI, minconf=0.9, max_positive=2000
    )
    baskets = sorted(
        {tuple(sorted(set(row))) for row in list(tall.database)}
    )[:n_baskets]
    paper_row(
        "index",
        rules=len(index),
        negative=index.negative_count,
        positive=index.positive_count,
        baskets=len(baskets),
    )

    _verify_matcher(index, baskets)
    _verify_matcher(flat, baskets)
    paper_row("verify", oracle="bit-identical", modes="taxonomy+flat")

    cold = _time_mode(RuleService(index, cache_size=0), baskets, 1)
    hot_service = RuleService(index, cache_size=4 * len(baskets))
    for basket in baskets:  # warm the cache
        hot_service.score(list(basket))
    hot = _time_mode(hot_service, baskets, hot_rounds)
    hot["cache_hits"] = hot_service.stats()["cache_hits"]
    paper_row("cold", **{k: cold[k] for k in
                         ("latency_us", "qps", "matches_per_request")})
    paper_row("hot", **{k: hot[k] for k in
                        ("latency_us", "qps", "cache_hits")})

    target = max(
        tall.database.item_counts().items(), key=lambda kv: (kv[1], kv[0])
    )[0]
    start = time.perf_counter()
    selective = mine_selective(
        tall.database, tall.taxonomy, target, minsup, MINRI
    )
    selective_wall = time.perf_counter() - start
    paper_row(
        "selective",
        target=target,
        wall_s=round(selective_wall, 4),
        negative_rules=len(selective.negative_rules),
        data_passes=selective.stats.data_passes,
    )

    speedup = round(cold["wall_per_10k_s"] / hot["wall_per_10k_s"], 1)
    report = {
        "dataset": "tall",
        "scale": os.environ["REPRO_BENCH_SCALE"],
        "minsup": minsup,
        "transactions": len(tall.database),
        "rules": len(index),
        "negative_rules": index.negative_count,
        "positive_rules": index.positive_count,
        "baskets": len(baskets),
        "modes": {"cold": cold, "hot": hot},
        "wall_per_10k_s": {
            "cold": cold["wall_per_10k_s"],
            "hot": hot["wall_per_10k_s"],
        },
        "hot_speedup": speedup,
        "selective": {
            "target": target,
            "wall_s": round(selective_wall, 4),
            "negative_rules": len(selective.negative_rules),
            "positive_rules": len(selective.positive_rules),
            "data_passes": selective.stats.data_passes,
        },
    }
    fold_report(args.out, "serving", report, quick=args.quick)
    paper_row("hot vs cold", speedup=speedup)
    print(f"wrote serving into {args.out}")

    if args.check and speedup <= 1.0:
        print(
            "FAIL: the hot LRU path is not faster than the cold path",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
