"""Positive association-rule generation (the *ap-genrules* procedure).

The negative rule generator of the paper (Figure 4) is "an extension of the
ap-genrules algorithm described in [2]" — Agrawal & Srikant's fast rule
generator. The base procedure is implemented here both as a substrate users
can call directly and as the template the negative variant extends.

For a large itemset ``l`` the procedure grows rule *consequents* level-wise
with ``apriori-gen``: if the rule ``(l - h) => h`` fails minimum confidence,
then so does every rule whose consequent is a superset of ``h`` (its
antecedent is a subset of ``l - h`` and thus at least as frequent), so ``h``
is pruned from the frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from .._util import check_fraction
from ..itemset import Itemset, difference
from ..serialize import check_payload, header
from .apriori import apriori_gen
from .itemset_index import LargeItemsetIndex


@dataclass(frozen=True, slots=True)
class AssociationRule:
    """A positive association rule ``antecedent => consequent``.

    Attributes
    ----------
    antecedent, consequent:
        Disjoint, non-empty canonical itemsets.
    support:
        Fractional support of ``antecedent ∪ consequent``.
    confidence:
        ``support(antecedent ∪ consequent) / support(antecedent)``.
    """

    antecedent: Itemset
    consequent: Itemset
    support: float
    confidence: float

    def as_dict(self) -> dict:
        """A versioned JSON-able payload (see :mod:`repro.serialize`).

        The same envelope as :meth:`repro.core.rulegen.NegativeRule.
        as_dict`, distinguished by ``kind``; round-trips through
        :meth:`from_dict`.
        """
        return {
            **header("positive-rule"),
            "antecedent": list(self.antecedent),
            "consequent": list(self.consequent),
            "support": self.support,
            "confidence": self.confidence,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AssociationRule":
        """Rebuild a rule from :meth:`as_dict` output."""
        check_payload(payload, "positive-rule")
        return cls(
            antecedent=tuple(payload["antecedent"]),
            consequent=tuple(payload["consequent"]),
            support=payload["support"],
            confidence=payload["confidence"],
        )

    def format(self, name_of=str) -> str:
        """Render the rule using a node-naming function."""
        left = ", ".join(name_of(item) for item in self.antecedent)
        right = ", ".join(name_of(item) for item in self.consequent)
        return (
            f"{{{left}}} => {{{right}}} "
            f"(sup={self.support:.4f}, conf={self.confidence:.4f})"
        )


def generate_rules(
    index: LargeItemsetIndex, minconf: float
) -> list[AssociationRule]:
    """Generate every rule meeting *minconf* from the large itemsets.

    Parameters
    ----------
    index:
        Large itemsets with supports, as produced by any of the miners.
    minconf:
        Minimum confidence in ``(0, 1]``.

    Returns
    -------
    list of AssociationRule, sorted by descending confidence then support.
    """
    check_fraction(minconf, "minconf")
    rules = list(_rules_iter(index, minconf))
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support))
    return rules


def _rules_iter(
    index: LargeItemsetIndex, minconf: float
) -> Iterator[AssociationRule]:
    for size in index.sizes:
        if size < 2:
            continue
        for items in sorted(index.of_size(size)):
            support = index.support(items)
            # Seed frontier: 1-item consequents that meet confidence.
            frontier: list[Itemset] = []
            for drop in range(size):
                consequent = (items[drop],)
                antecedent = items[:drop] + items[drop + 1:]
                confidence = support / index.support(antecedent)
                if confidence >= minconf:
                    frontier.append(consequent)
                    yield AssociationRule(
                        antecedent, consequent, support, confidence
                    )
            yield from _grow_consequents(items, support, frontier, index,
                                         minconf)


def _grow_consequents(
    items: Itemset,
    support: float,
    frontier: list[Itemset],
    index: LargeItemsetIndex,
    minconf: float,
) -> Iterator[AssociationRule]:
    """Level-wise consequent growth (the recursive half of ap-genrules)."""
    size = len(items)
    while frontier and len(frontier[0]) + 1 < size:
        next_frontier: list[Itemset] = []
        for consequent in apriori_gen(frontier):
            antecedent = difference(items, consequent)
            confidence = support / index.support(antecedent)
            if confidence >= minconf:
                next_frontier.append(consequent)
                yield AssociationRule(
                    antecedent, consequent, support, confidence
                )
        frontier = next_frontier
