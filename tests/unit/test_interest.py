"""Unit tests for the RI measure and deviation threshold."""

import pytest

from repro.core.interest import deviation_threshold, rule_interest
from repro.errors import ConfigError


class TestRuleInterest:
    def test_paper_example_value(self):
        # Perrier =/=> Bryers: (4000 - 500) / 5000 = 0.7 (Section 2.1.3).
        assert rule_interest(0.04, 0.005, 0.05) == pytest.approx(0.7)

    def test_reverse_direction_weaker(self):
        # Bryers =/=> Perrier: (4000 - 500) / 20000 = 0.175.
        assert rule_interest(0.04, 0.005, 0.20) == pytest.approx(0.175)

    def test_highest_when_actual_zero(self):
        assert rule_interest(0.1, 0.0, 0.1) == pytest.approx(1.0)

    def test_zero_when_actual_equals_expected(self):
        assert rule_interest(0.1, 0.1, 0.5) == 0.0

    def test_negative_when_actual_exceeds_expected(self):
        assert rule_interest(0.1, 0.2, 0.5) < 0.0

    def test_monotone_in_actual(self):
        values = [
            rule_interest(0.1, actual, 0.4)
            for actual in (0.0, 0.02, 0.05, 0.1)
        ]
        assert values == sorted(values, reverse=True)

    def test_zero_antecedent_rejected(self):
        with pytest.raises(ConfigError, match="antecedent"):
            rule_interest(0.1, 0.0, 0.0)

    def test_negative_supports_rejected(self):
        with pytest.raises(ConfigError):
            rule_interest(-0.1, 0.0, 0.5)
        with pytest.raises(ConfigError):
            rule_interest(0.1, -0.1, 0.5)


class TestDeviationThreshold:
    def test_product(self):
        assert deviation_threshold(0.04, 0.5) == pytest.approx(0.02)

    def test_paper_example_absolute(self):
        # MinSup 4,000 of 100,000 and MinRI 0.5 -> gap of 2,000.
        assert deviation_threshold(0.04, 0.5) * 100_000 == pytest.approx(
            2_000
        )

    @pytest.mark.parametrize("minsup,minri", [(0, 0.5), (0.5, 0), (-1, 1)])
    def test_nonpositive_rejected(self, minsup, minri):
        with pytest.raises(ConfigError):
            deviation_threshold(minsup, minri)
