"""The :class:`Taxonomy` forest over items and categories.

A taxonomy is an immutable forest: every node has at most one parent, leaves
are purchasable items, internal nodes are categories. Node identity is an
``int`` shared with the transaction id space, and an optional human-readable
name can be attached to any node.

Performance notes
-----------------
All relationship maps (parent, children, ancestors) are materialized at
construction, so every query used on the mining hot path — ``parent``,
``children``, ``siblings``, ``ancestors`` — is a dictionary lookup returning
a pre-built tuple.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..errors import TaxonomyError

_EMPTY: tuple[int, ...] = ()


class Taxonomy:
    """An immutable forest of items (leaves) and categories (internal nodes).

    Parameters
    ----------
    parents:
        Mapping from child node id to parent node id. Nodes that appear only
        as parents (or in *extra_roots*) become roots.
    names:
        Optional mapping from node id to display name. Unnamed nodes render
        as ``item:<id>``.
    extra_roots:
        Node ids with no children and no parent (isolated items). These are
        valid leaf items that simply do not belong to any category.
    """

    __slots__ = (
        "_parent",
        "_children",
        "_ancestors",
        "_roots",
        "_leaves",
        "_categories",
        "_names",
        "_ids_by_name",
        "_depth",
    )

    def __init__(
        self,
        parents: Mapping[int, int],
        names: Mapping[int, str] | None = None,
        extra_roots: Iterable[int] = (),
    ) -> None:
        parent: dict[int, int] = dict(parents)
        children: dict[int, list[int]] = {}
        nodes: set[int] = set(parent)
        for child, node_parent in parent.items():
            if child == node_parent:
                raise TaxonomyError(f"node {child} is its own parent")
            nodes.add(node_parent)
            children.setdefault(node_parent, []).append(child)
        for root in extra_roots:
            nodes.add(root)

        self._parent = parent
        self._children: dict[int, tuple[int, ...]] = {
            node: tuple(sorted(kids)) for node, kids in children.items()
        }
        self._roots: tuple[int, ...] = tuple(
            sorted(node for node in nodes if node not in parent)
        )
        self._leaves: frozenset[int] = frozenset(
            node for node in nodes if node not in self._children
        )
        self._categories: frozenset[int] = frozenset(self._children)
        self._names: dict[int, str] = dict(names or {})
        self._ids_by_name: dict[str, int] = {}
        for node, name in self._names.items():
            if name in self._ids_by_name:
                raise TaxonomyError(f"duplicate node name {name!r}")
            self._ids_by_name[name] = node

        self._ancestors: dict[int, tuple[int, ...]] = {}
        self._depth: dict[int, int] = {}
        self._build_ancestors(nodes)

    def _build_ancestors(self, nodes: set[int]) -> None:
        """Materialize ancestor chains, detecting cycles along the way."""
        for node in nodes:
            chain: list[int] = []
            seen = {node}
            current = self._parent.get(node)
            while current is not None:
                if current in seen:
                    raise TaxonomyError(f"cycle detected at node {current}")
                seen.add(current)
                chain.append(current)
                current = self._parent.get(current)
            self._ancestors[node] = tuple(chain)
            self._depth[node] = len(chain)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def __contains__(self, node: int) -> bool:
        return node in self._ancestors

    def __len__(self) -> int:
        return len(self._ancestors)

    def __iter__(self):
        return iter(sorted(self._ancestors))

    @property
    def nodes(self) -> tuple[int, ...]:
        """All node ids, sorted."""
        return tuple(sorted(self._ancestors))

    @property
    def roots(self) -> tuple[int, ...]:
        return self._roots

    @property
    def leaves(self) -> frozenset[int]:
        """Items that can occur in transactions."""
        return self._leaves

    @property
    def categories(self) -> frozenset[int]:
        """Internal nodes."""
        return self._categories

    def is_leaf(self, node: int) -> bool:
        self._require(node)
        return node in self._leaves

    def parent(self, node: int) -> int | None:
        """The parent of *node*, or None for a root."""
        self._require(node)
        return self._parent.get(node)

    def children(self, node: int) -> tuple[int, ...]:
        """Immediate descendants of *node* (empty for leaves)."""
        self._require(node)
        return self._children.get(node, _EMPTY)

    def siblings(self, node: int) -> tuple[int, ...]:
        """Other children of *node*'s parent (empty for roots)."""
        self._require(node)
        node_parent = self._parent.get(node)
        if node_parent is None:
            return _EMPTY
        return tuple(
            kid for kid in self._children[node_parent] if kid != node
        )

    def ancestors(self, node: int) -> tuple[int, ...]:
        """Ancestors of *node*, nearest first (excludes *node*)."""
        self._require(node)
        return self._ancestors[node]

    def is_ancestor(self, ancestor: int, node: int) -> bool:
        """True when *ancestor* lies on the path from *node* to its root."""
        return ancestor in self._ancestors[node]

    def depth(self, node: int) -> int:
        """Distance from *node* to its root (roots have depth 0)."""
        self._require(node)
        return self._depth[node]

    @property
    def height(self) -> int:
        """Length of the longest root-to-node path."""
        return max(self._depth.values(), default=0)

    def descendants(self, node: int) -> tuple[int, ...]:
        """All strict descendants of *node*, sorted."""
        self._require(node)
        found: list[int] = []
        stack = list(self._children.get(node, _EMPTY))
        while stack:
            current = stack.pop()
            found.append(current)
            stack.extend(self._children.get(current, _EMPTY))
        return tuple(sorted(found))

    def leaf_descendants(self, node: int) -> tuple[int, ...]:
        """Leaves below *node*; *node* itself when it is a leaf."""
        self._require(node)
        if node in self._leaves:
            return (node,)
        return tuple(
            kid for kid in self.descendants(node) if kid in self._leaves
        )

    def fanout(self) -> float:
        """Average number of children per internal node."""
        if not self._categories:
            return 0.0
        total = sum(len(self._children[node]) for node in self._categories)
        return total / len(self._categories)

    # ------------------------------------------------------------------
    # Names
    # ------------------------------------------------------------------
    def name_of(self, node: int) -> str:
        """Display name of *node* (falls back to ``item:<id>``)."""
        self._require(node)
        return self._names.get(node, f"item:{node}")

    def id_of(self, name: str) -> int:
        """Node id registered under *name*.

        Raises :class:`TaxonomyError` for unknown names.
        """
        try:
            return self._ids_by_name[name]
        except KeyError:
            raise TaxonomyError(f"unknown node name {name!r}") from None

    def format_itemset(self, items: Iterable[int]) -> str:
        """Render an itemset as ``{name, name, ...}`` for reports."""
        return "{" + ", ".join(self.name_of(item) for item in items) + "}"

    # ------------------------------------------------------------------
    # Export / misc
    # ------------------------------------------------------------------
    def parent_map(self) -> dict[int, int]:
        """A copy of the child -> parent mapping."""
        return dict(self._parent)

    def names_map(self) -> dict[int, str]:
        """A copy of the node -> name mapping."""
        return dict(self._names)

    def ancestor_closure(self, items: Iterable[int]) -> frozenset[int]:
        """Items plus every ancestor of every item.

        This is the transaction extension used by generalized support
        counting (the *Basic* algorithm of Srikant & Agrawal): an extended
        transaction supports a category whenever it contains one of its
        descendants.
        """
        closed: set[int] = set()
        for item in items:
            chain = self._ancestors.get(item)
            if chain is None:
                raise TaxonomyError(f"unknown node {item}")
            closed.add(item)
            closed.update(chain)
        return frozenset(closed)

    def _require(self, node: int) -> None:
        if node not in self._ancestors:
            raise TaxonomyError(f"unknown node {node}")

    def __repr__(self) -> str:
        return (
            f"Taxonomy(nodes={len(self)}, leaves={len(self._leaves)}, "
            f"categories={len(self._categories)}, roots={len(self._roots)}, "
            f"height={self.height})"
        )
