"""The compiled rule index: mined rules behind antecedent postings.

A :class:`RuleIndex` freezes a mined rule set — strong negative rules
(:class:`~repro.core.rulegen.NegativeRule`) and positive rules
(:class:`~repro.mining.rules.AssociationRule`) — into the form the
online scorer needs:

* every rule gets a stable integer *slot* in a deterministic global
  order (negatives by descending RI first, then positives by descending
  confidence), so match results are reproducible and cache keys cheap;
* an inverted index maps each antecedent item to the sorted slots of
  the rules whose antecedent contains it (the serving-side sibling of
  the large-itemset hash table of paper §2.4 — built for subset probes
  instead of exact lookups);
* the taxonomy rides along, because basket items must fire rules on
  their ancestors, and so (optionally) does the large-itemset index,
  for support lookups and on-target selective generation at serve time.

The whole index serializes to one JSON document
(:meth:`RuleIndex.save` / :meth:`RuleIndex.load`, schema-versioned via
:mod:`repro.serialize`), so a rule set is mined once and served forever.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path

from ..core.rulegen import NegativeRule
from ..errors import ConfigError
from ..itemset import Itemset
from ..mining.itemset_index import LargeItemsetIndex
from ..mining.rules import AssociationRule
from ..serialize import check_payload, header
from ..taxonomy.tree import Taxonomy

#: Rule kinds as stored in :class:`IndexedRule` and payloads.
KIND_NEGATIVE = "negative"
KIND_POSITIVE = "positive"

_EMPTY: tuple[int, ...] = ()


@dataclass(frozen=True, slots=True)
class IndexedRule:
    """One compiled rule: its slot, kind, and the original rule object."""

    slot: int
    kind: str
    rule: NegativeRule | AssociationRule

    @property
    def antecedent(self) -> Itemset:
        return self.rule.antecedent

    @property
    def consequent(self) -> Itemset:
        return self.rule.consequent


def _negative_order(rule: NegativeRule):
    return (-rule.ri, rule.antecedent, rule.consequent)


def _positive_order(rule: AssociationRule):
    return (-rule.confidence, -rule.support, rule.antecedent,
            rule.consequent)


class RuleIndex:
    """Compiled positive + negative rules keyed by antecedent items.

    Parameters
    ----------
    negative_rules, positive_rules:
        The mined rule set. Order does not matter — rules are re-sorted
        into the canonical slot order at compile time.
    taxonomy:
        The taxonomy baskets are scored under (items fire rules on
        their ancestors). ``None`` compiles a flat index.
    large_itemsets:
        Optional large-itemset index to carry along (support lookups,
        serve-time diagnostics). Persisted with the rules.
    """

    __slots__ = ("_rules", "_postings", "_taxonomy", "_itemsets",
                 "_negative_count")

    def __init__(
        self,
        negative_rules: Iterable[NegativeRule] = (),
        positive_rules: Iterable[AssociationRule] = (),
        taxonomy: Taxonomy | None = None,
        large_itemsets: LargeItemsetIndex | None = None,
    ) -> None:
        negatives = sorted(negative_rules, key=_negative_order)
        positives = sorted(positive_rules, key=_positive_order)
        compiled: list[IndexedRule] = []
        for rule in negatives:
            compiled.append(IndexedRule(len(compiled), KIND_NEGATIVE, rule))
        for rule in positives:
            compiled.append(IndexedRule(len(compiled), KIND_POSITIVE, rule))
        postings: dict[int, list[int]] = {}
        for entry in compiled:
            if not entry.antecedent:
                raise ConfigError(
                    "cannot index a rule with an empty antecedent"
                )
            for item in entry.antecedent:
                postings.setdefault(item, []).append(entry.slot)
        self._rules: tuple[IndexedRule, ...] = tuple(compiled)
        # Slots were appended in increasing order, so each posting list
        # is already sorted.
        self._postings: dict[int, tuple[int, ...]] = {
            item: tuple(slots) for item, slots in postings.items()
        }
        self._taxonomy = taxonomy
        self._itemsets = large_itemsets
        self._negative_count = len(negatives)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def rules(self) -> tuple[IndexedRule, ...]:
        """All compiled rules in slot order (negatives first)."""
        return self._rules

    def rule(self, slot: int) -> IndexedRule:
        """The compiled rule at *slot*."""
        return self._rules[slot]

    def postings(self, item: int) -> tuple[int, ...]:
        """Slots of the rules whose antecedent contains *item*."""
        return self._postings.get(item, _EMPTY)

    @property
    def taxonomy(self) -> Taxonomy | None:
        return self._taxonomy

    @property
    def large_itemsets(self) -> LargeItemsetIndex | None:
        return self._itemsets

    @property
    def negative_count(self) -> int:
        return self._negative_count

    @property
    def positive_count(self) -> int:
        return len(self._rules) - self._negative_count

    def __len__(self) -> int:
        return len(self._rules)

    def __repr__(self) -> str:
        return (
            f"RuleIndex(negative={self.negative_count}, "
            f"positive={self.positive_count}, "
            f"items={len(self._postings)}, "
            f"taxonomy={'yes' if self._taxonomy is not None else 'no'})"
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """A JSON-able dict of the whole index (rules + taxonomy)."""
        payload: dict = {
            **header("rule-index"),
            "rules": [entry.rule.as_dict() for entry in self._rules],
        }
        if self._taxonomy is not None:
            payload["taxonomy"] = _taxonomy_payload(self._taxonomy)
        if self._itemsets is not None:
            payload["large_itemsets"] = self._itemsets.to_payload()
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "RuleIndex":
        """Rebuild an index from :meth:`to_payload` output.

        The postings are recompiled rather than persisted — they are
        derived data, and recompiling keeps the file format independent
        of the in-memory layout.
        """
        check_payload(payload, "rule-index")
        negatives: list[NegativeRule] = []
        positives: list[AssociationRule] = []
        for entry in payload["rules"]:
            if entry.get("kind") == "negative-rule":
                negatives.append(NegativeRule.from_dict(entry))
            else:
                positives.append(AssociationRule.from_dict(entry))
        taxonomy = None
        if "taxonomy" in payload:
            taxonomy = _taxonomy_from_payload(payload["taxonomy"])
        itemsets = None
        if "large_itemsets" in payload:
            itemsets = LargeItemsetIndex.from_payload(
                payload["large_itemsets"]
            )
        return cls(
            negative_rules=negatives,
            positive_rules=positives,
            taxonomy=taxonomy,
            large_itemsets=itemsets,
        )

    def to_json(self) -> str:
        return json.dumps(self.to_payload())

    @classmethod
    def from_json(cls, text: str) -> "RuleIndex":
        return cls.from_payload(json.loads(text))

    def save(self, path: str | Path) -> None:
        """Write the index as one JSON document at *path*."""
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "RuleIndex":
        """Read an index written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())


def _taxonomy_payload(taxonomy: Taxonomy) -> dict:
    """Serialize a taxonomy: parent edges, names, and the full node set.

    The node list makes the round-trip exact even for isolated items
    (valid leaves with neither parent nor children), which the parent
    map alone cannot represent.
    """
    return {
        **header("taxonomy"),
        "parents": [
            [child, parent]
            for child, parent in sorted(taxonomy.parent_map().items())
        ],
        "names": [
            [node, name]
            for node, name in sorted(taxonomy.names_map().items())
        ],
        "nodes": list(taxonomy.nodes),
    }


def _taxonomy_from_payload(payload: dict) -> Taxonomy:
    check_payload(payload, "taxonomy")
    return Taxonomy(
        parents={child: parent for child, parent in payload["parents"]},
        names={node: name for node, name in payload["names"]},
        extra_roots=payload["nodes"],
    )
