"""The paper's primary contribution: strong negative association mining.

Pipeline (paper Section 2.1):

1. **Positive step** — find all generalized large itemsets
   (:mod:`repro.mining.generalized`).
2. **Candidate step** — from each large itemset, generate candidate
   negative itemsets out of the immediate children (Cases 1–2) and siblings
   (Case 3) of its items, assigning each an *expected support* computed
   from the positive supports and the taxonomy's uniformity assumption
   (:mod:`~repro.core.candidates`, :mod:`~repro.core.expectation`).
3. **Counting step** — count the candidates' actual supports and keep the
   *negative itemsets*: those whose actual support falls at least
   ``MinSup × MinRI`` below expectation (:mod:`~repro.core.negmining`,
   with the Naive and Improved pass schedules of Section 2.2).
4. **Rule step** — emit rules ``X =/=> Y`` whose rule interest
   ``RI = (E[sup] - sup) / sup(X)`` meets ``MinRI`` and whose sides are
   both large (:mod:`~repro.core.rulegen`).

:func:`repro.core.api.mine_negative_rules` runs the whole pipeline.
"""

from .api import MiningConfig, NegativeMiningResult, mine_negative_rules
from .candidates import NegativeCandidate, generate_negative_candidates
from .estimate import estimate_candidates_per_itemset
from .explain import (
    Derivation,
    derive,
    explain_result_rule,
    explain_rule,
    format_derivation,
)
from .expectation import expected_support
from .interest import rule_interest
from .negmining import (
    ImprovedNegativeMiner,
    MiningStats,
    NaiveNegativeMiner,
    NegativeItemset,
)
from .rulegen import NegativeRule, generate_negative_rules
from .substitutes import (
    SubstituteGroups,
    generate_substitute_candidates,
    merge_candidate_sets,
)

__all__ = [
    "SubstituteGroups",
    "generate_substitute_candidates",
    "merge_candidate_sets",
    "mine_negative_rules",
    "MiningConfig",
    "NegativeMiningResult",
    "NegativeCandidate",
    "generate_negative_candidates",
    "expected_support",
    "rule_interest",
    "NegativeItemset",
    "NegativeRule",
    "generate_negative_rules",
    "NaiveNegativeMiner",
    "ImprovedNegativeMiner",
    "MiningStats",
    "estimate_candidates_per_itemset",
    "Derivation",
    "derive",
    "explain_rule",
    "explain_result_rule",
    "format_derivation",
]
