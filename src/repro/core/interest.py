"""Compat shim: RI now lives in :mod:`repro.measures.ri`.

The paper's rule interest measure became the registered ``"ri"`` entry
of the interestingness-measure registry
(:mod:`repro.measures.registry`); its arithmetic moved to
:mod:`repro.measures.ri`. This module keeps the historical import path
``repro.core.interest`` working — :func:`rule_interest` and
:func:`deviation_threshold` are re-exported unchanged.
"""

from __future__ import annotations

from ..measures.ri import deviation_threshold, rule_interest

__all__ = ["rule_interest", "deviation_threshold"]
