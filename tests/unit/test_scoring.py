"""Unit tests for the rule-scoring convenience layer."""

import pytest

from repro.core.rulegen import NegativeRule
from repro.measures.scoring import (
    RuleScores,
    score_negative_rule,
    score_positive_rule,
)
from repro.mining.rules import AssociationRule


@pytest.fixture
def negative_rule():
    return NegativeRule(
        antecedent=(1,),
        consequent=(2,),
        ri=0.7,
        expected_support=0.04,
        actual_support=0.005,
        antecedent_support=0.05,
        consequent_support=0.20,
    )


class TestScoreNegativeRule:
    def test_negative_correlation_signature(self, negative_rule):
        scores = score_negative_rule(negative_rule, transactions=10_000)
        assert scores.lift < 1.0
        assert scores.leverage < 0.0
        assert scores.conviction < 1.0
        assert scores.negative_confidence > 0.8

    def test_confidence_values(self, negative_rule):
        scores = score_negative_rule(negative_rule, transactions=10_000)
        assert scores.confidence == pytest.approx(0.005 / 0.05)
        assert scores.negative_confidence == pytest.approx(
            1 - 0.005 / 0.05
        )

    def test_chi_square_positive(self, negative_rule):
        scores = score_negative_rule(negative_rule, transactions=10_000)
        assert scores.chi_square > 0.0

    def test_as_dict_round_trip(self, negative_rule):
        scores = score_negative_rule(negative_rule, transactions=100)
        payload = scores.as_dict()
        assert set(payload) == {
            "confidence",
            "negative_confidence",
            "lift",
            "leverage",
            "conviction",
            "chi_square",
        }
        assert payload["lift"] == scores.lift


class TestScorePositiveRule:
    def test_recovers_antecedent_support(self):
        rule = AssociationRule(
            antecedent=(1,), consequent=(2,), support=0.3, confidence=0.75
        )
        scores = score_positive_rule(
            rule, consequent_support=0.5, transactions=1000
        )
        # antecedent support = 0.3 / 0.75 = 0.4; lift = 0.3/(0.4*0.5).
        assert scores.lift == pytest.approx(1.5)
        assert scores.confidence == pytest.approx(0.75)

    def test_positive_correlation_signature(self):
        rule = AssociationRule(
            antecedent=(1,), consequent=(2,), support=0.3, confidence=0.9
        )
        scores = score_positive_rule(
            rule, consequent_support=0.4, transactions=1000
        )
        assert scores.lift > 1.0
        assert scores.leverage > 0.0
        assert scores.conviction > 1.0


class TestRuleScoresType:
    def test_frozen(self):
        scores = RuleScores(0.5, 0.5, 1.0, 0.0, 1.0, 0.0)
        with pytest.raises(AttributeError):
            scores.lift = 2.0
