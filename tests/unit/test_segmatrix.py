"""Unit tests for the segmented out-of-core packed matrix.

Covers the segment layout (word-boundary row counts, partial tails),
the three sync paths (unchanged / append / fingerprint-guided resync),
the resident-byte budget, and the spill-directory lifecycle — including
a subprocess that exits without ``close()`` (the finalizer must sweep
the directory) and a Linux-only constrained-address-space run proving
the ``mmap`` engine completes where the in-RAM ``numpy`` engine cannot.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("numpy")

import repro
from repro.core.session import MiningSession
from repro.data.database import TransactionDatabase
from repro.errors import DatabaseError
from repro.mining.segmatrix import (
    SegmentedPackedMatrix,
    chain_fingerprint,
    live_spill_dirs,
)
from repro.mining.vertical import CacheStats

#: (segment_rows, n_rows) pairs straddling word and segment boundaries:
#: exact multiples of 64, off-by-one around a word, segments smaller
#: than a word, and partial tails.
BOUNDARY_SHAPES = [(50, 123), (64, 128), (100, 317), (7, 65), (64, 64)]


def make_rows(n_rows, n_items=23):
    """Deterministic pseudo-random rows covering *n_items* item ids."""
    rows = []
    for index in range(n_rows):
        width = 1 + (index * 7 + 3) % 4
        rows.append(
            tuple(
                sorted({(index * 13 + k * 5) % n_items for k in range(width)})
            )
        )
    return rows


def brute_counts(rows, candidates):
    return MiningSession(list(rows), engine="brute").count(candidates)


CANDIDATES = [(1,), (2,), (0, 5), (3, 8), (1, 2, 3)]


class TestLayoutAndCounting:
    @pytest.mark.parametrize("segment_rows,n_rows", BOUNDARY_SHAPES)
    def test_word_boundary_shapes_match_brute(self, segment_rows, n_rows):
        rows = make_rows(n_rows)
        with SegmentedPackedMatrix.from_rows(
            rows, segment_rows=segment_rows
        ) as matrix:
            assert matrix.n_rows == n_rows
            assert matrix.n_segments == -(-n_rows // segment_rows)
            assert matrix.count(CANDIDATES) == brute_counts(rows, CANDIDATES)

    def test_segment_descriptors(self):
        rows = make_rows(10)
        with SegmentedPackedMatrix.from_rows(
            rows, segment_rows=4
        ) as matrix:
            starts = [segment.start for segment in matrix.segments]
            lengths = [segment.rows for segment in matrix.segments]
            assert starts == [0, 4, 8]
            assert lengths == [4, 4, 2]
            for segment in matrix.segments:
                assert segment.words == matrix.capacity_words
                assert Path(segment.path).stat().st_size == segment.nbytes

    def test_empty_candidates(self):
        with SegmentedPackedMatrix.from_rows(make_rows(5)) as matrix:
            assert matrix.count([]) == {}

    def test_closed_matrix_rejects_sync(self):
        matrix = SegmentedPackedMatrix.from_rows(make_rows(5))
        matrix.close()
        assert matrix.closed
        with pytest.raises(DatabaseError, match="closed"):
            matrix.sync(TransactionDatabase(make_rows(5)))

    def test_fingerprint_chain_is_associative(self):
        rows = [tuple(row) for row in make_rows(9)]
        whole = chain_fingerprint(0x5E9, rows)
        split = chain_fingerprint(chain_fingerprint(0x5E9, rows[:4]), rows[4:])
        assert whole == split


class TestSyncPaths:
    def test_unchanged_database_is_a_hit(self):
        database = TransactionDatabase(make_rows(30))
        stats = CacheStats()
        with SegmentedPackedMatrix(segment_rows=8) as matrix:
            matrix.sync(database, stats=stats)
            packed = stats.segments_packed
            matrix.sync(database, stats=stats)
            assert stats.hits == 1
            assert stats.segments_packed == packed

    def test_append_extends_tail_and_reuses_the_rest(self):
        rows = make_rows(30)
        database = TransactionDatabase(rows)
        stats = CacheStats()
        with SegmentedPackedMatrix(segment_rows=8) as matrix:
            matrix.sync(database, stats=stats)
            assert matrix.n_segments == 4  # 8+8+8+6
            tail = [(0, 1), (2, 21)]
            database.append(tail)
            matrix.sync(database, stats=stats)
            assert stats.extensions == 1
            assert stats.segments_extended == 1  # the partial tail
            assert stats.segments_reused == 3  # everything else untouched
            assert matrix.n_rows == 32
            assert matrix.count(CANDIDATES) == brute_counts(
                rows + tail, CANDIDATES
            )

    def test_append_overflowing_the_tail_packs_new_segments(self):
        rows = make_rows(10)
        database = TransactionDatabase(rows)
        stats = CacheStats()
        with SegmentedPackedMatrix(segment_rows=4) as matrix:
            matrix.sync(database, stats=stats)
            packed_before = stats.segments_packed
            tail = make_rows(9, n_items=11)
            database.append(tail)
            matrix.sync(database, stats=stats)
            # 10 -> 19 rows at 4/segment: the 2-row tail fills to 4 and
            # 2 whole new segments are packed (one partial).
            assert stats.segments_extended == 1
            assert stats.segments_packed == packed_before + 2
            assert matrix.count(CANDIDATES) == brute_counts(
                rows + tail, CANDIDATES
            )

    def test_out_of_band_rewrite_triggers_resync(self):
        database = TransactionDatabase(make_rows(12))
        stats = CacheStats()
        with SegmentedPackedMatrix(segment_rows=4) as matrix:
            matrix.sync(database, stats=stats)
            rewrite = make_rows(14, n_items=9)
            database._transactions = tuple(
                tuple(row) for row in rewrite
            )
            matrix.sync(database, stats=stats)
            assert stats.invalidations == 1
            assert matrix.count(CANDIDATES) == brute_counts(
                rewrite, CANDIDATES
            )

    def test_resync_reuses_fingerprint_matching_segments(self):
        rows = [tuple(row) for row in make_rows(20)]
        database = TransactionDatabase(rows)
        stats = CacheStats()
        with SegmentedPackedMatrix(segment_rows=4) as matrix:
            matrix.sync(database, stats=stats)
            packed_before = stats.segments_packed
            # Rewrite one row in the middle segment only.
            mutated = list(rows)
            mutated[9] = (0, 1, 2)
            database._transactions = tuple(mutated)
            matrix.sync(database, stats=stats)
            # Only segment 2 (rows 8..11) changed; 4 of 5 reused.
            assert stats.segments_packed == packed_before + 1
            assert stats.segments_reused == 4
            assert matrix.count(CANDIDATES) == brute_counts(
                mutated, CANDIDATES
            )


class TestResidency:
    def test_budget_bounds_open_blocks(self):
        rows = make_rows(64)
        with SegmentedPackedMatrix.from_rows(rows, segment_rows=8) as probe:
            block_bytes = max(
                segment.nbytes for segment in probe.segments
            )
        with SegmentedPackedMatrix.from_rows(
            rows, segment_rows=8, max_resident_bytes=block_bytes
        ) as matrix:
            stats = CacheStats()
            assert matrix.count(CANDIDATES, stats=stats) == brute_counts(
                rows, CANDIDATES
            )
            # At most one block stays open; the rest were evicted during
            # packing and get re-mapped on demand while counting.
            assert matrix.resident_bytes <= block_bytes
            assert stats.segments_mmap_reads >= matrix.n_segments - 1
            assert stats.segments_resident_bytes <= block_bytes

    def test_unbounded_budget_keeps_blocks_resident(self):
        rows = make_rows(40)
        with SegmentedPackedMatrix.from_rows(
            rows, segment_rows=8
        ) as matrix:
            stats = CacheStats()
            matrix.count(CANDIDATES, stats=stats)
            assert matrix.resident_bytes == matrix.spilled_bytes
            assert stats.segments_mmap_reads == 0


class TestSpillLifecycle:
    def test_close_removes_spill_dir(self):
        matrix = SegmentedPackedMatrix.from_rows(make_rows(5))
        spill = matrix.spill_dir
        assert spill.is_dir()
        assert str(spill) in live_spill_dirs()
        matrix.close()
        assert not spill.exists()
        assert str(spill) not in live_spill_dirs()
        matrix.close()  # idempotent

    def test_exit_without_close_sweeps_spill_dir(self, tmp_path):
        """An interpreter that forgets ``close()`` leaves no directory:
        the finalizer / atexit sweep removes it on exit."""
        script = (
            "from repro.mining.segmatrix import SegmentedPackedMatrix\n"
            "matrix = SegmentedPackedMatrix.from_rows(\n"
            "    [(1, 2), (2, 3)], spill_dir={spill!r})\n"
            "print(matrix.spill_dir)\n"
        ).format(spill=str(tmp_path))
        src = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ, PYTHONPATH=str(src))
        done = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert done.returncode == 0, done.stderr
        spill = Path(done.stdout.strip())
        assert spill.parent == tmp_path
        assert not spill.exists()


@pytest.mark.skipif(
    sys.platform != "linux", reason="RLIMIT_AS is only enforced on Linux"
)
class TestConstrainedMemory:
    def test_out_of_core_survives_address_space_cap(self, tmp_path):
        """Under an address-space cap the dense in-RAM pack of the
        ``numpy`` engine fails while the ``mmap`` engine — streaming
        bounded segment blocks — completes bit-identically.

        The subprocess computes the expected counts with ``numpy``
        *before* the cap, then applies ``RLIMIT_AS`` slightly above the
        current ``VmSize`` and retries both engines.
        """
        script = r"""
import resource
import sys

from repro.core.session import MiningSession
from repro.data.database import TransactionDatabase

N_ROWS, N_ITEMS = 50_000, 2_000
rows = [
    tuple(sorted({(i * 31 + k * 997) % N_ITEMS for k in range(6)}))
    for i in range(N_ROWS)
]
# All singletons — the Apriori first pass — so the numpy engine's
# candidate-item restriction does not shrink its dense boolean pack
# below ~N_ITEMS x N_ROWS bytes (~100 MB here).
candidates = [(i,) for i in range(N_ITEMS)]

expected = MiningSession(
    TransactionDatabase(rows), engine="numpy"
).count(candidates)

def vm_size():
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmSize:"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("no VmSize")

# Headroom far below the ~100 MB dense boolean matrix the numpy
# engine materializes for 50k x 2k, and comfortably above the mmap
# engine's per-segment working set.
cap = vm_size() + 48 * 1024 * 1024
resource.setrlimit(resource.RLIMIT_AS, (cap, cap))

try:
    MiningSession(TransactionDatabase(rows), engine="numpy").count(
        candidates
    )
except MemoryError:
    print("numpy:MemoryError")
else:
    print("numpy:completed")

session = MiningSession(
    TransactionDatabase(rows),
    engine="mmap",
    segment_rows=2048,
    max_resident_bytes=8 * 1024 * 1024,
    spill_dir=sys.argv[1],
)
counted = session.count(candidates)
print("mmap:match" if counted == expected else "mmap:MISMATCH")
"""
        src = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ, PYTHONPATH=str(src))
        done = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert done.returncode == 0, done.stderr
        lines = done.stdout.split()
        assert "numpy:MemoryError" in lines, done.stdout
        assert "mmap:match" in lines, done.stdout
        # The spill directory was temporary: nothing left behind.
        assert list(tmp_path.iterdir()) == []


class TestEngineSurface:
    def test_session_stats_expose_segment_activity(self):
        rows = make_rows(30)
        database = TransactionDatabase(rows)
        session = MiningSession(database, engine="mmap", segment_rows=8)
        assert session.count(CANDIDATES) == brute_counts(rows, CANDIDATES)
        stats = session.cache_stats
        assert stats.segments_packed == 4
        assert stats.segments_spilled_bytes > 0
        assert stats.matrix_bytes > 0  # per-segment kernel footprint
        database.append([(1, 2, 3)])
        session.count(CANDIDATES)
        assert stats.extensions == 1
        assert stats.segments_extended == 1

    def test_incremental_recount_needs_no_physical_pass(self):
        rows = make_rows(40)
        database = TransactionDatabase(rows)
        session = MiningSession(database, engine="mmap", segment_rows=8)
        session.count(CANDIDATES)
        scans_after_build = database.scans
        database.append(make_rows(3, n_items=7))
        counted = session.count(CANDIDATES)
        assert database.scans == scans_after_build  # tail_rows, no pass
        assert counted == brute_counts(
            list(rows) + make_rows(3, n_items=7), CANDIDATES
        )
