"""A9 — Ablation: substitute-item knowledge (Section 4.1 future work).

Measures what explicit substitute groups add on top of the taxonomy:
candidate counts with taxonomy-only vs taxonomy+substitute generation on
the grocery world, where the cross-category loyalties guarantee that the
substitute relation (KolaRed ~ KolaBlue, declared, not taxonomic) yields
candidates the taxonomy cases cannot express.

Run directly::

    python -m benchmarks.bench_ablation_substitutes
"""

import time

import pytest

from repro.core.candidates import generate_negative_candidates
from repro.core.substitutes import (
    SubstituteGroups,
    generate_substitute_candidates,
    merge_candidate_sets,
)
from repro.mining.generalized import mine_generalized
from repro.synthetic.grocery import generate_grocery_dataset

MINSUP = 0.05
MINRI = 0.4


def _setup():
    dataset = generate_grocery_dataset(num_transactions=3000, seed=13)
    taxonomy = dataset.taxonomy
    substitutes = SubstituteGroups(
        [
            [taxonomy.id_of("KolaRed"), taxonomy.id_of("KolaBlue")],
            [taxonomy.id_of("CrispWave"), taxonomy.id_of("SaltRidge")],
            # Cross-category substitution the taxonomy cannot express:
            [taxonomy.id_of("ClearSpring"), taxonomy.id_of("KolaBlue")],
        ]
    )
    index = mine_generalized(dataset.database, taxonomy, MINSUP)
    return dataset, substitutes, index


@pytest.mark.parametrize("variant", ["taxonomy-only", "with-substitutes"])
def test_substitute_candidates(benchmark, variant):
    dataset, substitutes, index = _setup()

    def generate():
        base = generate_negative_candidates(
            index, dataset.taxonomy, MINSUP, MINRI
        )
        if variant == "taxonomy-only":
            return base
        extra = generate_substitute_candidates(
            index, substitutes, MINSUP, MINRI
        )
        return merge_candidate_sets(base, extra)

    candidates = benchmark.pedantic(generate, rounds=1, iterations=1)
    benchmark.extra_info.update(candidates=len(candidates))


def main() -> None:
    dataset, substitutes, index = _setup()
    print(
        "=== A9: substitute knowledge on the grocery world "
        f"(|D|={len(dataset.database)}, MinSup={MINSUP}) ==="
    )
    started = time.perf_counter()
    base = generate_negative_candidates(
        index, dataset.taxonomy, MINSUP, MINRI
    )
    base_seconds = time.perf_counter() - started
    started = time.perf_counter()
    extra = generate_substitute_candidates(
        index, substitutes, MINSUP, MINRI
    )
    merged = merge_candidate_sets(base, extra)
    extra_seconds = time.perf_counter() - started
    print(
        f"  taxonomy-only     {base_seconds:6.3f}s  "
        f"candidates={len(base)}"
    )
    print(
        f"  + substitutes     {extra_seconds:6.3f}s  "
        f"candidates={len(merged)} "
        f"(+{len(merged) - len(base)} from substitute knowledge)"
    )
    new_only = sorted(set(merged) - set(base))
    taxonomy = dataset.taxonomy
    for items in new_only[:6]:
        print(f"    new: {taxonomy.format_itemset(items)}")


if __name__ == "__main__":
    main()
