"""E14 — Cross-measure agreement: registered measures on grocery worlds.

Mines the curated grocery world once per scenario with the default RI
pipeline, then re-judges each run under every registered
interestingness measure through
:func:`repro.measures.compare.compare_measures` — no extra data passes.
Two scenarios probe how measure agreement responds to signal strength:

``strict``
    ``loyalty_strength=0.95`` — the planted brand loyalties are nearly
    deterministic, so the negative associations are strong under any
    sensible semantics;
``lapsed``
    ``loyalty_strength=0.70`` — the loyalties are diluted, which pulls
    actual supports toward their expectations and makes the measures
    disagree on the borderline rules.

Reported per scenario: each measure's admitted negative-set / rule
counts and wall time, plus the pairwise Jaccard overlap matrix of the
admitted rule sets. The gate values are ``wall_per_eval_s`` — each
measure's mean re-judgment wall across the scenarios — compared by
``check_regression`` like any other profile.

Built-in checks (``--no-check`` reports only):

* the RI evaluation must reproduce the pipeline's own rule list
  bit-identically — selection and generation are deterministic over the
  recorded counts, so any drift is a registry-threading bug;
* RI must admit the planted loyalty's cross-category signature
  ``KolaBlue =/=> CrispWave`` in the strict scenario (the same-category
  sibling pair is structurally not generable — see
  ``test_grocery.py``).

Folds its report into ``BENCH_counting.json`` under the ``"measures"``
key (``["quick"]["measures"]`` on ``--quick``).

Run::

    python -m benchmarks.bench_measures --quick
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

#: The two demand scenarios: label -> loyalty_strength.
SCENARIOS = {"strict": 0.95, "lapsed": 0.70}

MINSUP = 0.05


def _planted_split_admitted(rules, taxonomy) -> bool:
    """Is the loyalty signature ``KolaBlue =/=> CrispWave`` admitted?

    KolaBlue households are not gamers, so they shun the gamer chips
    brand — the cross-category rule through which the framework
    detects the planted cola loyalty.
    """
    blue = taxonomy.id_of("KolaBlue")
    crisp = taxonomy.id_of("CrispWave")
    return any(
        rule.antecedent == (blue,) and rule.consequent == (crisp,)
        for rule in rules
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workload (the CI smoke configuration)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_counting.json",
        help="JSON report to fold the measures key into",
    )
    parser.add_argument(
        "--no-check",
        action="store_false",
        dest="check",
        help="report only; do not fail on the bit-identity or "
             "planted-rule checks",
    )
    args = parser.parse_args(argv)

    os.environ.setdefault(
        "REPRO_BENCH_SCALE", "0.02" if args.quick else "0.1"
    )
    from benchmarks.common import MINRI, SCALE, fold_report, paper_row
    from repro.core.api import MiningConfig, mine_negative_rules
    from repro.measures.compare import compare_measures
    from repro.measures.registry import measure_names
    from repro.synthetic.grocery import generate_grocery_dataset

    transactions = max(500, int(75_000 * SCALE))
    failures: list[str] = []
    scenarios: dict[str, dict] = {}
    walls: dict[str, list[float]] = {name: [] for name in measure_names()}

    for label, loyalty in SCENARIOS.items():
        dataset = generate_grocery_dataset(
            num_transactions=transactions,
            loyalty_strength=loyalty,
            seed=1998,
        )
        config = MiningConfig(minsup=MINSUP, minri=MINRI)
        result = mine_negative_rules(
            dataset.database, dataset.taxonomy, config=config
        )
        comparison = compare_measures(result, MINSUP, MINRI)

        ri_eval = comparison.evaluations["ri"]
        if ri_eval.rules != result.rules:
            failures.append(
                f"{label}: the registry RI evaluation diverged from "
                f"the pipeline ({len(ri_eval.rules)} vs "
                f"{len(result.rules)} rules)"
            )
        if label == "strict" and not _planted_split_admitted(
            ri_eval.rules, dataset.taxonomy
        ):
            failures.append(
                "strict: RI did not admit the planted loyalty's "
                "KolaBlue =/=> CrispWave signature"
            )

        per_measure = {}
        for name, evaluation in comparison.evaluations.items():
            walls[name].append(evaluation.wall_s)
            per_measure[name] = {
                "negatives": len(evaluation.negatives),
                "rules": len(evaluation.rules),
                "wall_s": round(evaluation.wall_s, 5),
            }
            paper_row(
                f"{label}:{name}",
                negatives=len(evaluation.negatives),
                rules=len(evaluation.rules),
                wall_ms=round(evaluation.wall_s * 1e3, 2),
            )
        matrix = comparison.overlap_matrix()
        for first, row in matrix.items():
            for second in row:
                row[second] = round(row[second], 4)
        scenarios[label] = {
            "loyalty_strength": loyalty,
            "transactions": transactions,
            "pipeline_rules": len(result.rules),
            "per_measure": per_measure,
            "jaccard": matrix,
        }
        pairs = [
            f"{a}/{b}={matrix[a][b]:.3f}"
            for i, a in enumerate(matrix)
            for b in list(matrix)[i + 1:]
        ]
        paper_row(f"{label}:jaccard", overlap="  ".join(pairs))

    report = {
        "scale": os.environ["REPRO_BENCH_SCALE"],
        "minsup": MINSUP,
        "minri": MINRI,
        "transactions": transactions,
        "scenarios": scenarios,
        "wall_per_eval_s": {
            name: round(sum(values) / len(values), 5)
            for name, values in walls.items()
        },
    }
    fold_report(args.out, "measures", report, quick=args.quick)
    print(f"wrote measures into {args.out}")

    if args.check and failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
