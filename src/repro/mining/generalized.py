"""Generalized association mining over a taxonomy (Srikant–Agrawal 1995).

The negative-rule algorithm's first step is "find all the generalized large
itemsets in the data (i.e., itemsets at all levels in the taxonomy whose
support is greater than the user specified minimum support)", citing the
*Basic*, *Cumulate* and *EstMerge* algorithms. All three are implemented
here behind one entry point, :func:`mine_generalized`.

Generalized support: a transaction (of leaf items) supports an itemset when
the transaction *extended with all ancestors* of its items contains the
itemset. Categories therefore accumulate the support of their descendants.

Algorithms
----------
Basic
    Extend every transaction with all ancestors and run plain level-wise
    Apriori over the extended rows. Itemsets containing both an item and
    its ancestor are kept (they are trivially as frequent as the item) —
    exactly as in the original paper.

Cumulate
    Three optimizations over Basic, none of which changes which
    *interesting* itemsets are found:

    1. pre-computed ancestor table and per-pass filtering of the extension
       to items that can occur in a candidate;
    2. pruning of any candidate that contains both an item and one of its
       ancestors (their support equals the support without the ancestor, so
       they carry no information) — applied from C2 on, which by downward
       closure keeps them out of all later levels;
    3. items occurring in no candidate are dropped from rows before
       matching.

Est_merge (``"estmerge"``)
    Sampling-guided counting. Each new candidate's support is first
    estimated on a random sample; estimated-large candidates are counted
    against the full database in the current pass, while the doubtful
    rest are *deferred and merged* into the following pass. Candidates
    are always generated from confirmed large itemsets; when a deferred
    candidate proves large after all, the next size is re-queued so its
    extensions are generated and counted in a catch-up pass (the
    "merge"). Every candidate is counted against the database exactly
    once and the final output equals Cumulate's (property-tested) — the
    sample only shifts *when* each candidate is counted. This follows
    the estimate-then-merge structure of the original; its remaining-time
    heuristics for choosing what to defer are simplified to a single
    estimated-support threshold.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from .._util import check_fraction
from ..data.database import TransactionDatabase
from ..data.sampling import sample_database
from ..errors import ConfigError
from ..itemset import Itemset
from ..obs import api as obs
from ..taxonomy.tree import Taxonomy
from .apriori import apriori_gen
from .itemset_index import LargeItemsetIndex

ALGORITHMS = ("basic", "cumulate", "estmerge")


def _resolve_session(session, database, taxonomy):
    """The caller's session, or a serial default-engine one.

    Imported lazily: :mod:`repro.core.session` sits above the mining
    package in the import graph.
    """
    if session is not None:
        return session
    from ..core.session import MiningSession

    return MiningSession(database, taxonomy)


def extend_database(
    database: TransactionDatabase, taxonomy: Taxonomy
) -> TransactionDatabase:
    """Materialize the ancestor-extended version of *database*.

    Useful for running non-taxonomy miners (e.g. Partition) in the
    generalized setting. Costs one pass over the data.
    """
    return TransactionDatabase(
        taxonomy.ancestor_closure(row) for row in database.scan()
    )


def contains_item_and_ancestor(items: Itemset, taxonomy: Taxonomy) -> bool:
    """True when some member of *items* is an ancestor of another member."""
    members = set(items)
    for item in items:
        if members.intersection(taxonomy.ancestors(item)):
            return True
    return False


def mine_generalized(
    database: TransactionDatabase,
    taxonomy: Taxonomy,
    minsup: float,
    algorithm: str = "cumulate",
    session=None,
    max_size: int | None = None,
    sample_fraction: float = 0.1,
    estimation_slack: float = 0.9,
    rng: random.Random | None = None,
) -> LargeItemsetIndex:
    """Mine all generalized large itemsets of *database* under *taxonomy*.

    Parameters
    ----------
    database:
        Transactions over taxonomy *leaves*.
    taxonomy:
        The item taxonomy; every transaction item must be a node in it.
    minsup:
        Fractional minimum support in ``(0, 1]``.
    algorithm:
        ``"basic"``, ``"cumulate"`` (default) or ``"estmerge"``.
    session:
        The :class:`~repro.core.session.MiningSession` every counting
        pass goes through (engine, cache and parallel policy); ``None``
        uses a serial default-engine session over *database*.
    max_size:
        Optional cap on itemset size.
    sample_fraction, estimation_slack, rng:
        EstMerge tuning: sample size as a fraction of |D|, and the
        fraction of ``minsup`` above which a sampled estimate counts as
        "probably large". Ignored by the other algorithms.

    Returns
    -------
    LargeItemsetIndex
        All generalized large itemsets with fractional supports. With
        ``"basic"``, itemsets mixing an item and its ancestor are included
        (as in the original Basic); the other algorithms prune them.
    """
    check_fraction(minsup, "minsup")
    if algorithm not in ALGORITHMS:
        raise ConfigError(
            f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}"
        )
    session = _resolve_session(session, database, taxonomy)
    if algorithm == "estmerge":
        return _mine_estmerge(
            database,
            taxonomy,
            minsup,
            session,
            max_size,
            sample_fraction,
            estimation_slack,
            rng,
        )
    prune_lineage = algorithm == "cumulate"
    restrict = algorithm == "cumulate"
    return _mine_levelwise(
        database,
        taxonomy,
        minsup,
        session,
        max_size,
        prune_lineage,
        restrict,
    )


def _large_singles(
    database: TransactionDatabase,
    taxonomy: Taxonomy,
    min_count: float,
    session,
) -> dict[Itemset, int]:
    """Pass 1: count every taxonomy node as a 1-itemset, keep the large."""
    singles = [(node,) for node in taxonomy.nodes]
    counts = session.count(
        singles, transactions=database, taxonomy=taxonomy
    )
    return {
        single: count
        for single, count in counts.items()
        if count >= min_count
    }


def _prune_lineage_candidates(
    candidates: list[Itemset], taxonomy: Taxonomy
) -> list[Itemset]:
    return [
        candidate
        for candidate in candidates
        if not contains_item_and_ancestor(candidate, taxonomy)
    ]


def iter_generalized_levels(
    database: TransactionDatabase,
    taxonomy: Taxonomy,
    minsup: float,
    session=None,
    max_size: int | None = None,
    prune_lineage: bool = True,
    restrict: bool = True,
) -> "Iterator[dict[Itemset, float]]":
    """Yield the generalized large itemsets one level at a time.

    Each yielded mapping holds the size-``k`` large itemsets with their
    fractional supports; producing it costs exactly one pass over the
    data. The Naive negative miner consumes this generator so it can
    interleave its own negative-candidate counting pass after every level
    (two passes per iteration, as in Section 2.2.1). All counting goes
    through *session* (``None`` = a serial default-engine session).
    """
    check_fraction(minsup, "minsup")
    session = _resolve_session(session, database, taxonomy)
    total = len(database)
    min_count = minsup * total

    large_singles = _large_singles(database, taxonomy, min_count, session)
    level = {
        single: count / total for single, count in large_singles.items()
    }
    yield level

    current = list(level)
    size = 2
    while current and (max_size is None or size <= max_size):
        with obs.span("gen.candidates") as span:
            candidates = apriori_gen(current)
            if prune_lineage:
                candidates = _prune_lineage_candidates(
                    candidates, taxonomy
                )
            span.annotate("size", size)
            span.annotate("candidates", len(candidates))
        if not candidates:
            return
        counts = session.count(
            candidates,
            transactions=database,
            taxonomy=taxonomy,
            restrict_to_candidate_items=restrict,
        )
        level = {
            candidate: count / total
            for candidate, count in counts.items()
            if count >= min_count
        }
        if not level:
            return
        yield level
        current = list(level)
        size += 1


def _mine_levelwise(
    database: TransactionDatabase,
    taxonomy: Taxonomy,
    minsup: float,
    session,
    max_size: int | None,
    prune_lineage: bool,
    restrict: bool,
) -> LargeItemsetIndex:
    """Shared level-wise loop for Basic and Cumulate."""
    index = LargeItemsetIndex()
    for level in iter_generalized_levels(
        database,
        taxonomy,
        minsup,
        session=session,
        max_size=max_size,
        prune_lineage=prune_lineage,
        restrict=restrict,
    ):
        for candidate, support in level.items():
            index.add(candidate, support)
    return index


def _mine_estmerge(
    database: TransactionDatabase,
    taxonomy: Taxonomy,
    minsup: float,
    session,
    max_size: int | None,
    sample_fraction: float,
    estimation_slack: float,
    rng: random.Random | None,
) -> LargeItemsetIndex:
    """Sampling-guided variant; see module docstring for the contract.

    Work-queue formulation. Candidates are always generated from
    *confirmed* large itemsets (so every candidate's subsets are already
    known large). A new candidate's support is first estimated on the
    sample; estimated-large candidates join the current counting pass,
    estimated-small ones are *deferred* and merged into the following
    pass. When a deferred candidate proves large after all, the sizes
    above it are re-queued for generation so its extensions are produced
    (the "merge" catch-up) — already-counted candidates are skipped, so
    each candidate is counted against the database exactly once.
    """
    if not 0.0 < estimation_slack <= 1.0:
        raise ConfigError(
            f"estimation_slack must be in (0, 1], got {estimation_slack}"
        )
    total = len(database)
    min_count = minsup * total
    index = LargeItemsetIndex()

    sample = sample_database(database, sample_fraction, rng=rng)
    sample_threshold = estimation_slack * minsup * len(sample)

    large_singles = _large_singles(database, taxonomy, min_count, session)
    for single, count in large_singles.items():
        index.add(single, count / total)

    queued: set[Itemset] = set()  # estimated or counted at least once
    deferred: list[Itemset] = []  # estimated-small, awaiting exact counts
    to_generate: set[int] = {2}
    while True:
        fresh: list[Itemset] = []
        with obs.span("gen.candidates") as span:
            for size in sorted(to_generate):
                if max_size is not None and size > max_size:
                    continue
                previous = sorted(index.of_size(size - 1))
                if not previous:
                    continue
                for candidate in _prune_lineage_candidates(
                    apriori_gen(previous), taxonomy
                ):
                    if candidate not in queued:
                        queued.add(candidate)
                        fresh.append(candidate)
            span.annotate("candidates", len(fresh))
        to_generate = set()

        if not fresh and not deferred:
            break

        if fresh:
            # The sample is small by construction; estimating on it stays
            # serial (the parallel wrapper is unwrapped) — sharding it
            # would cost more than it saves.
            estimates = session.count(
                fresh,
                transactions=sample,
                taxonomy=taxonomy,
                serial=True,
            )
            probably_large = [
                candidate
                for candidate in fresh
                if estimates[candidate] >= sample_threshold
            ]
            doubtful = [
                candidate
                for candidate in fresh
                if estimates[candidate] < sample_threshold
            ]
        else:
            probably_large, doubtful = [], []

        to_count = probably_large + deferred
        deferred = doubtful
        if not to_count:
            if not deferred:
                break
            continue
        counts = session.count(
            to_count,
            transactions=database,
            taxonomy=taxonomy,
            restrict_to_candidate_items=True,
        )
        for candidate, count in counts.items():
            if count >= min_count:
                index.add(candidate, count / total)
                # Newly confirmed itemsets may enable extensions that
                # were never generated; re-queue the next size.
                to_generate.add(len(candidate) + 1)
    return index
