"""Trace sinks: where finished spans and final metrics go.

The sink protocol is three methods, all optional failures-not-allowed
cheap calls:

``emit(event: dict)``
    Called once per finished span with a JSON-able event dict
    (``name``, ``parent``, ``depth``, ``start_s``, ``wall_s``,
    ``cpu_s``, ``pid``, ``scope``, plus span attributes under
    ``attrs``).
``finish(registry)``
    Called once when the observability session closes, with the final
    merged :class:`~repro.obs.registry.MetricsRegistry`.
``close()``
    Release any resources (file handles). Idempotent.

Three implementations ship:

- :class:`NullSink` — discards everything; the default. Instrumented
  code never checks "is tracing on?"; it always emits, and the null
  sink makes that free.
- :class:`JsonlSink` — appends one JSON object per line to a trace
  file (the artifact the CI bench-regression job uploads), and the
  full metrics snapshot as a final ``{"type": "metrics"}`` line.
- :class:`SummarySink` — ignores individual spans; prints the
  registry's human-readable summary to a stream at session end
  (the CLI's ``--metrics summary``).
"""

from __future__ import annotations

import json
import sys

from .registry import MetricsRegistry


class NullSink:
    """Discard spans and metrics; the zero-cost default."""

    __slots__ = ()

    def emit(self, event: dict) -> None:
        pass

    def finish(self, registry: MetricsRegistry) -> None:
        pass

    def close(self) -> None:
        pass


class JsonlSink:
    """Write span events (and a final metrics line) as JSON-lines.

    One JSON object per line: span events carry ``"type": "span"``,
    the closing metrics snapshot ``"type": "metrics"``. The file is
    opened eagerly so configuration errors (bad path) surface at
    session start, not mid-mine.
    """

    __slots__ = ("path", "_handle")

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "w", encoding="utf-8")

    def emit(self, event: dict) -> None:
        record = dict(event)
        record["type"] = "span"
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")

    def finish(self, registry: MetricsRegistry) -> None:
        record = {"type": "metrics", "metrics": registry.snapshot()}
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class SummarySink:
    """Print the final metrics summary to a stream; ignore spans."""

    __slots__ = ("stream", "as_json")

    def __init__(self, stream=None, as_json: bool = False) -> None:
        self.stream = stream
        self.as_json = as_json

    def emit(self, event: dict) -> None:
        pass

    def finish(self, registry: MetricsRegistry) -> None:
        stream = self.stream if self.stream is not None else sys.stderr
        if self.as_json:
            stream.write(registry.to_json() + "\n")
        else:
            stream.write("--- metrics ---\n")
            stream.write(registry.summary() + "\n")

    def close(self) -> None:
        pass
