"""Unit tests for the analytic candidate-count estimate (Sec 2.1.2)."""

import pytest

from repro.core.estimate import (
    estimate_candidates_per_itemset,
    estimate_total_candidates,
)
from repro.errors import ConfigError


class TestPerItemsetEstimate:
    def test_pair_formula(self):
        # k=2: C(2,1)f + C(2,2)f^2 + 2(f-1).
        fanout = 3.0
        expected = 2 * 3 + 9 + 2 * 2
        assert estimate_candidates_per_itemset(2, fanout) == pytest.approx(
            expected
        )

    def test_k1(self):
        assert estimate_candidates_per_itemset(1, 4.0) == pytest.approx(
            4 + 3
        )

    def test_grows_with_fanout(self):
        small = estimate_candidates_per_itemset(3, 3.0)
        large = estimate_candidates_per_itemset(3, 9.0)
        assert large > small

    def test_exponential_in_size(self):
        values = [
            estimate_candidates_per_itemset(k, 5.0) for k in range(1, 6)
        ]
        ratios = [b / a for a, b in zip(values, values[1:])]
        # Each extra position multiplies the children term by ~f.
        assert all(ratio > 2.0 for ratio in ratios)

    def test_fanout_one_gives_no_siblings(self):
        # f=1: each position has one child and no siblings.
        assert estimate_candidates_per_itemset(2, 1.0) == pytest.approx(
            2 + 1
        )

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            estimate_candidates_per_itemset(0, 3.0)
        with pytest.raises(ConfigError):
            estimate_candidates_per_itemset(2, 0.5)


class TestTotalEstimate:
    def test_weighted_sum(self):
        sizes = {2: 10, 3: 4}
        total = estimate_total_candidates(sizes, 3.0)
        assert total == pytest.approx(
            10 * estimate_candidates_per_itemset(2, 3.0)
            + 4 * estimate_candidates_per_itemset(3, 3.0)
        )

    def test_singletons_ignored(self):
        assert estimate_total_candidates({1: 100}, 3.0) == 0.0

    def test_empty(self):
        assert estimate_total_candidates({}, 3.0) == 0.0
