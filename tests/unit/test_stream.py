"""Unit tests for the streaming subsystem: policies, append absorption,
delta versioning, the watcher lifecycle, and live delta application."""

import json

import pytest

from repro.core.api import MiningConfig
from repro.data.database import TransactionDatabase
from repro.data.filedb import FileBackedDatabase
from repro.data.io import save_basket_file
from repro.errors import StreamError, VersionSkewError
from repro.obs.api import obs_session
from repro.obs.registry import MetricsRegistry
from repro.serve import RuleIndex, RuleService
from repro.stream import (
    FractionPolicy,
    IntervalPolicy,
    RowCountPolicy,
    RuleIndexDelta,
    StreamingMiner,
    parse_policy,
    push_to_service,
)
from repro.taxonomy.builders import taxonomy_from_nested

from .test_rule_index import negative, positive


class TestRetriggerPolicies:
    def test_row_count_fires_at_threshold(self):
        policy = RowCountPolicy(5)
        assert not policy.should_fire(4, 100)
        assert policy.should_fire(5, 100)

    def test_fraction_scales_with_database_size(self):
        policy = FractionPolicy(0.1)
        assert not policy.should_fire(9, 100)
        assert policy.should_fire(10, 100)
        assert not policy.should_fire(10, 1000)
        assert not policy.should_fire(1, 0)

    def test_interval_needs_both_backlog_and_elapsed_time(self):
        clock = iter([0.0, 1.0, 31.0, 35.0, 40.0, 70.0]).__next__
        policy = IntervalPolicy(30, clock=clock)  # armed at 0.0
        assert not policy.should_fire(1, 10)  # 1.0s: too soon
        assert policy.should_fire(1, 10)  # 31.0s: due
        assert not policy.should_fire(0, 10)  # nothing pending
        policy.reset()  # re-armed at 40.0
        assert not policy.should_fire(1, 10)  # 70.0s: 30s exactly... due

    def test_parse_round_trips_specs(self):
        for spec in ("rows:500", "fraction:0.01", "interval:30"):
            assert parse_policy(spec).spec == spec

    @pytest.mark.parametrize(
        "spec",
        ["", "rows", "every:5", "rows:zero", "rows:0", "fraction:1.5",
         "interval:-1"],
    )
    def test_parse_rejects_malformed_specs(self, spec):
        with pytest.raises(StreamError):
            parse_policy(spec)


@pytest.fixture
def basket_path(tmp_path):
    database = TransactionDatabase(
        [[1, 2, 3], [1, 2], [2, 3], [4], [1, 2, 3, 4]]
    )
    path = tmp_path / "data.basket"
    save_basket_file(database, path)
    return path


class TestAbsorbAppends:
    def test_no_growth_is_a_cheap_no_op(self, basket_path):
        database = FileBackedDatabase(basket_path)
        assert database.absorb_appends() == (0, False)

    def test_external_append_becomes_rows(self, basket_path):
        database = FileBackedDatabase(basket_path)
        with open(basket_path, "a") as handle:
            handle.write("7 8\n9\n")
        assert database.absorb_appends() == (2, False)
        assert len(database) == 7
        assert list(database)[-2:] == [(7, 8), (9,)]
        assert database.item_counts()[9] == 1

    def test_partial_trailing_line_waits_for_the_writer(self, basket_path):
        database = FileBackedDatabase(basket_path)
        with open(basket_path, "a") as handle:
            handle.write("7 8\n9 1")  # no trailing newline yet
        assert database.absorb_appends() == (1, False)
        assert list(database)[-1] == (7, 8)
        with open(basket_path, "a") as handle:
            handle.write("0\n")  # the writer finishes the line
        assert database.absorb_appends() == (1, False)
        assert list(database)[-1] == (9, 10)

    def test_foreign_rewrite_is_a_full_invalidation(self, basket_path):
        database = FileBackedDatabase(basket_path)
        basket_path.write_text("5 6\n7\n")
        absorbed, rewritten = database.absorb_appends()
        assert (absorbed, rewritten) == (0, True)
        assert list(database) == [(5, 6), (7,)]

    def test_bad_appended_line_raises_without_mutating(self, basket_path):
        from repro.errors import DatabaseError

        database = FileBackedDatabase(basket_path)
        rows_before = len(database)
        with open(basket_path, "a") as handle:
            handle.write("7 oranges\n")
        with pytest.raises(DatabaseError):
            database.absorb_appends()
        assert len(database) == rows_before


class TestDeltaVersioning:
    def _index(self, version=3):
        return RuleIndex(
            negative_rules=[negative([1], [2]), negative([3], [4])],
            positive_rules=[positive([5], [6])],
            version=version,
        )

    def test_version_survives_the_serialize_round_trip(self):
        index = self._index(version=7)
        assert RuleIndex.from_json(index.to_json()).version == 7

    def test_apply_rejects_a_skewed_base_version(self):
        index = self._index(version=3)
        delta = RuleIndexDelta(from_version=2, to_version=3)
        with pytest.raises(VersionSkewError):
            index.apply_delta(delta)

    def test_apply_rejects_a_non_advancing_target_version(self):
        index = self._index(version=3)
        delta = RuleIndexDelta(from_version=3, to_version=3)
        with pytest.raises(VersionSkewError):
            index.apply_delta(delta)

    def test_apply_rejects_removing_an_unknown_rule(self):
        index = self._index()
        delta = RuleIndexDelta(
            from_version=3,
            to_version=4,
            removed=(("negative", (9,), (10,)),),
        )
        with pytest.raises(VersionSkewError):
            index.apply_delta(delta)

    def test_apply_rejects_adding_a_colliding_rule(self):
        index = self._index()
        delta = RuleIndexDelta(
            from_version=3, to_version=4, added=(negative([1], [2]),)
        )
        with pytest.raises(VersionSkewError):
            index.apply_delta(delta)

    def test_empty_delta_only_bumps_the_version(self):
        index = self._index(version=3)
        delta = RuleIndexDelta(from_version=3, to_version=4)
        assert delta.is_empty()
        applied = index.apply_delta(delta)
        assert applied.version == 4
        assert len(applied) == len(index)


@pytest.fixture
def taxonomy():
    return taxonomy_from_nested(
        {"drinks": {"soda": ["cola", "lemonade"], "water": ["still"]}}
    )


@pytest.fixture
def stream_setup(tmp_path, taxonomy):
    """A basket file whose appends genuinely change the mined rules."""
    cola = taxonomy.id_of("cola")
    lemonade = taxonomy.id_of("lemonade")
    still = taxonomy.id_of("still")
    rows = [[cola, still]] * 40 + [[lemonade]] * 40 + [[cola]] * 20
    path = tmp_path / "stream.basket"
    save_basket_file(TransactionDatabase(rows), path)
    return {
        "path": path,
        "index_path": tmp_path / "rules.json",
        "taxonomy": taxonomy,
        "config": MiningConfig(minsup=0.2, minri=0.3),
        "append": [[lemonade, still]] * 30,
    }


def _miner(setup, **kwargs):
    database = FileBackedDatabase(setup["path"])
    return StreamingMiner(
        database,
        setup["taxonomy"],
        config=setup["config"],
        policy=kwargs.pop("policy", RowCountPolicy(10)),
        index_path=setup["index_path"],
        **kwargs,
    )


def _append(setup):
    with open(setup["path"], "a") as handle:
        for row in setup["append"]:
            handle.write(" ".join(str(item) for item in row) + "\n")


class TestStreamingMiner:
    def test_bootstrap_publishes_version_one(self, stream_setup):
        miner = _miner(stream_setup).start()
        assert miner.index.version == 1
        assert len(miner.index) > 0
        assert miner.rows_published == 100
        assert stream_setup["index_path"].exists()
        assert miner.state_path.exists()

    def test_poll_fires_only_when_the_policy_says(self, stream_setup):
        miner = _miner(stream_setup, policy=RowCountPolicy(31)).start()
        assert not miner.poll()  # nothing pending
        _append(stream_setup)  # 30 rows: one short of the threshold
        assert not miner.poll()
        assert miner.pending_rows == 30
        assert miner.poll(ignore_policy=True)  # the CLI's --once mode
        assert miner.index.version == 2
        assert miner.pending_rows == 0

    def test_restart_resumes_without_re_mining_seen_rows(
        self, stream_setup
    ):
        first = _miner(stream_setup).start()
        _append(stream_setup)
        assert first.poll()
        assert first.index.version == 2

        registry = MetricsRegistry()
        with obs_session(registry=registry):
            resumed = _miner(stream_setup).start()
        assert registry.counter("stream.restart.resumed") == 1
        assert resumed.index.version == 2
        assert resumed.rows_published == 130
        assert resumed.remines == 0  # nothing was re-mined on start
        assert not resumed.poll()  # and nothing is pending

    def test_corrupt_checkpoint_degrades_to_adopt(self, stream_setup):
        first = _miner(stream_setup).start()
        first.state_path.write_text("{not json")

        registry = MetricsRegistry()
        with obs_session(registry=registry):
            adopted = _miner(stream_setup).start()
        assert registry.counter("stream.restart.state_discarded") == 1
        assert adopted.index.version == 1  # the index file still counts
        assert adopted.rows_published == 0  # but coverage is unknown
        assert adopted.pending_rows == 100
        assert adopted.poll()  # re-mines everything once
        assert adopted.index.version == 2

    def test_rejected_push_leaves_the_watcher_at_the_old_version(
        self, stream_setup
    ):
        miner = _miner(
            stream_setup, push=lambda delta: {"error": "nope"}
        ).start()
        _append(stream_setup)
        with pytest.raises(StreamError):
            miner.poll()
        assert miner.index.version == 1
        assert miner.deltas_pushed == 0
        saved = json.loads(miner.state_path.read_text())
        assert saved["index_version"] == 1

    def test_delta_push_keeps_a_live_service_bit_identical(
        self, stream_setup
    ):
        miner = _miner(stream_setup).start()
        service = RuleService(RuleIndex.load(stream_setup["index_path"]))
        miner.push = push_to_service(service)
        _append(stream_setup)
        assert miner.poll()
        assert service.index.version == 2
        assert service.index.to_json() == miner.index.to_json()
        assert miner.deltas_pushed == 1


class TestServiceDeltaApplication:
    def _service_and_delta(self, taxonomy):
        cola = taxonomy.id_of("cola")
        lemonade = taxonomy.id_of("lemonade")
        still = taxonomy.id_of("still")
        old = RuleIndex(
            negative_rules=[negative([cola], [still], ri=2.0)],
            positive_rules=[positive([lemonade], [still])],
            taxonomy=taxonomy,
            version=1,
        )
        service = RuleService(old, cache_size=8)
        # The delta touches only lemonade's rule: cola's cached answers
        # must survive, lemonade's must be recomputed.
        delta = RuleIndexDelta(
            from_version=1,
            to_version=2,
            changed=(positive([lemonade], [still], confidence=0.95),),
        )
        return service, delta, cola, lemonade

    def test_reload_delta_installs_the_new_version(self, taxonomy):
        service, delta, _, _ = self._service_and_delta(taxonomy)
        response = service.reload_delta(delta.to_payload())
        assert response["ok"] and response["index_version"] == 2
        assert service.stats()["index_version"] == 2

    def test_untouched_cache_entries_survive_with_remapped_slots(
        self, taxonomy
    ):
        service, delta, cola, lemonade = self._service_and_delta(taxonomy)
        before_cola = service.score([cola])
        service.score([lemonade])
        registry = MetricsRegistry()
        with obs_session(registry=registry):
            service.apply_delta(delta)
        assert registry.counter("serve.cache.delta_kept") == 1
        assert registry.counter("serve.cache.delta_invalidated") == 1
        hits_before = service._score_cache.hits
        after_cola = service.score([cola])  # served from the kept entry
        assert service._score_cache.hits == hits_before + 1
        assert after_cola["matches"] == [
            {**match, "slot": service.index.slots_by_key()[key]}
            for match, key in zip(
                before_cola["matches"],
                [
                    ("negative", (cola,), (taxonomy.id_of("still"),)),
                ],
            )
        ]

    def test_touched_basket_sees_the_new_statistics(self, taxonomy):
        service, delta, _, lemonade = self._service_and_delta(taxonomy)
        service.score([lemonade])  # populate the cache at v1
        service.apply_delta(delta)
        matches = service.score([lemonade])["matches"]
        assert matches[0]["rule"]["confidence"] == 0.95

    def test_version_skew_is_an_error_response_on_the_wire(self, taxonomy):
        from repro.serve.service import dispatch

        service, delta, _, _ = self._service_and_delta(taxonomy)
        stale = RuleIndexDelta(from_version=5, to_version=6)
        response = dispatch(
            service,
            {"op": "reload_delta", "delta": stale.to_payload()},
        )
        assert "error" in response
        # and the service is untouched by the rejected delta
        assert service.index.version == 1
        assert service.reload_delta(delta.to_payload())["ok"]

    def test_taxonomy_change_flushes_the_whole_cache(self, taxonomy):
        service, _, cola, _ = self._service_and_delta(taxonomy)
        service.score([cola])
        new_taxonomy = taxonomy_from_nested(
            {"drinks": {"soda": ["cola", "lemonade"],
                        "water": ["still", "sparkling"]}}
        )
        delta = RuleIndexDelta(
            from_version=1,
            to_version=2,
            taxonomy_changed=True,
            taxonomy=new_taxonomy,
        )
        registry = MetricsRegistry()
        with obs_session(registry=registry):
            service.apply_delta(delta)
        assert registry.counter("serve.cache.delta_flush") == 1
        assert len(service._score_cache) == 0
