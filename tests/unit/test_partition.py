"""Unit tests for the Partition algorithm (VLDB 1995 substrate)."""

import pytest

from repro.data.database import TransactionDatabase
from repro.errors import ConfigError
from repro.mining.apriori import find_large_itemsets
from repro.mining.partition import find_large_itemsets_partition


class TestPartition:
    def test_matches_apriori_on_small_example(self, small_database):
        apriori = find_large_itemsets(small_database, 0.2)
        small_database.reset_scans()
        partition = find_large_itemsets_partition(
            small_database, 0.2, partitions=3
        )
        assert partition == apriori

    @pytest.mark.parametrize("partitions", [1, 2, 7, 100])
    def test_matches_apriori_any_partitioning(
        self, random_database, partitions
    ):
        apriori = find_large_itemsets(random_database, 0.1)
        random_database.reset_scans()
        partition = find_large_itemsets_partition(
            random_database, 0.1, partitions=partitions
        )
        assert partition == apriori

    def test_exactly_two_passes(self, random_database):
        random_database.reset_scans()
        find_large_itemsets_partition(random_database, 0.1, partitions=4)
        assert random_database.scans == 2

    def test_more_partitions_than_rows(self):
        database = TransactionDatabase([[1, 2], [1, 2], [1]])
        index = find_large_itemsets_partition(database, 0.5, partitions=50)
        assert index.support((1, 2)) == pytest.approx(2 / 3)

    def test_nothing_large(self):
        database = TransactionDatabase([[i] for i in range(20)])
        index = find_large_itemsets_partition(database, 0.5)
        assert len(index) == 0

    def test_max_size_cap(self, random_database):
        index = find_large_itemsets_partition(
            random_database, 0.05, max_size=2
        )
        assert index.max_size <= 2

    def test_locally_large_globally_small_is_dropped(self):
        # Item 9 is dense in the first half, absent in the second.
        rows = [[9, 1]] * 10 + [[1]] * 30
        database = TransactionDatabase(rows)
        index = find_large_itemsets_partition(database, 0.5, partitions=2)
        assert (1,) in index
        assert (9,) not in index

    @pytest.mark.parametrize("partitions", [0, -1])
    def test_bad_partitions_rejected(self, random_database, partitions):
        with pytest.raises(ConfigError):
            find_large_itemsets_partition(
                random_database, 0.1, partitions=partitions
            )

    def test_bad_minsup_rejected(self, random_database):
        with pytest.raises(ConfigError):
            find_large_itemsets_partition(random_database, 2.0)
