"""The Naive and Improved negative-itemset miners (paper Section 2.2).

Both miners share the same semantics — find every candidate negative
itemset whose actual support deviates at least ``MinSup × MinRI`` from its
expected support — and differ only in the *pass schedule*:

Naive (Section 2.2.1)
    Per iteration ``k``: one pass to find the generalized large itemsets of
    size ``k``, then a second pass to count that level's negative
    candidates. Roughly ``2n`` passes for ``n`` levels.

Improved (Section 2.2.2, Figure 3)
    First find all generalized large itemsets (``n`` passes), then delete
    all small 1-itemsets from the taxonomy, generate the negative
    candidates of *all* sizes at once and count them in a single extra pass
    — ``n + 1`` passes. When the candidate set exceeds the configured
    memory budget, counting falls back to multiple batches (the memory
    management scheme of Section 2.5).

The negative-itemset predicate follows the body text
(``E[sup] - sup >= MinSup × MinRI``). Figure 3's literal final line
(``count < MinSup × MinRI``) contradicts the RI definition; it is kept
available behind ``figure3_literal=True`` for comparison (see DESIGN.md §3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .._util import check_fraction, check_positive
from ..data.database import TransactionDatabase
from ..itemset import Itemset
from ..errors import ConfigError
from ..measures.registry import (
    InterestMeasure,
    MeasurePolicy,
    create_measure,
)
from ..mining.generalized import iter_generalized_levels, mine_generalized
from ..mining.itemset_index import LargeItemsetIndex
from ..mining.vertical import CacheStats
from ..obs import api as obs
from ..parallel.engine import ParallelStats
from ..taxonomy.prune import restrict_to_items
from ..taxonomy.tree import Taxonomy
from .candidates import NegativeCandidate, generate_negative_candidates
from .session import MiningSession


@dataclass(frozen=True, slots=True)
class NegativeItemset:
    """A confirmed negative itemset: support far below expectation.

    Attributes
    ----------
    items:
        The canonical itemset.
    expected_support, actual_support:
        Fractions of |D|.
    source:
        The large itemset whose expectation was used.
    case:
        Generation case (``"children"`` or ``"siblings"``).
    """

    items: Itemset
    expected_support: float
    actual_support: float
    source: Itemset
    case: str

    @property
    def deviation(self) -> float:
        """How far the actual support fell below the expectation."""
        return self.expected_support - self.actual_support


@dataclass(slots=True)
class MiningStats:
    """Bookkeeping reported alongside mining results.

    The ``shards``/``worker*`` fields are zero for serial runs; with
    ``n_jobs > 1`` they record the sharded-counting activity (see
    :mod:`repro.parallel`) so speedups and degraded runs are observable:
    a crashed worker shows up as retries and, past the retry budget, as
    serial fallbacks.

    ``data_passes`` counts *logical* passes — counting passes in the
    paper's cost model. For the row-scanning engines every logical pass
    is also a physical read, so ``physical_passes == data_passes``; the
    ``"cached"`` engine serves most passes from its vertical index, so
    ``physical_passes`` drops to the build scans while ``data_passes``
    keeps the paper's schedule (``n + 1`` for Improved, ``2n`` for
    Naive). The ``cache_*`` fields are zero unless the cached engine ran.

    ``kernel_batches``/``kernel_words`` count executions (and gathered
    64-bit words) of the bit-packed NumPy kernel
    (:mod:`repro.mining.bitpack`) — zero unless the ``"numpy"`` engine or
    a ``packed=True`` vertical index did the counting.

    ``cache_extensions`` counts appends absorbed incrementally (the
    vertical index or segmented matrix extended in O(append) instead of
    rebuilding); the ``segments_*`` fields record the out-of-core
    ``"mmap"`` engine's segment maintenance and its memory footprint —
    ``segments_resident_bytes`` is the high-water mark of concurrently
    open segment blocks, the number the ``max_resident_bytes`` budget
    bounds. ``matrix_bytes`` is the in-RAM packed-matrix footprint of
    the ``numpy`` engine, for comparison.
    """

    data_passes: int = 0
    large_itemsets: int = 0
    candidates_generated: int = 0
    negative_itemsets: int = 0
    counting_batches: int = 0
    candidates_by_size: dict[int, int] = field(default_factory=dict)
    shards: int = 0
    worker_tasks: int = 0
    workers_launched: int = 0
    worker_retries: int = 0
    worker_fallbacks: int = 0
    shm_publishes: int = 0
    shm_batches: int = 0
    shm_bytes: int = 0
    physical_passes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    cache_evictions: int = 0
    cache_extensions: int = 0
    cache_bytes: int = 0
    kernel_batches: int = 0
    kernel_words: int = 0
    matrix_bytes: int = 0
    segments_packed: int = 0
    segments_extended: int = 0
    segments_reused: int = 0
    segments_spilled_bytes: int = 0
    segments_resident_bytes: int = 0
    segments_mmap_reads: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of index lookups served from the cache (0 when unused)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def summary(self) -> str:
        """A human-readable accounting report (passes, cache behavior)."""
        lines = [
            f"data passes     : {self.data_passes}",
            f"physical passes : {self.physical_passes}",
        ]
        if self.data_passes:
            ratio = self.physical_passes / self.data_passes
            lines.append(f"physical/logical: {ratio:.2f}")
        lookups = self.cache_hits + self.cache_misses
        if lookups:
            lines.append(
                f"cache           : {self.cache_hits}/{lookups} hits "
                f"({self.cache_hit_rate:.0%}), "
                f"{self.cache_invalidations} invalidations, "
                f"{self.cache_evictions} evictions, "
                f"{self.cache_bytes} bytes"
            )
        if self.kernel_batches:
            lines.append(
                f"kernel batches  : {self.kernel_batches} "
                f"({self.kernel_words} words)"
            )
        if self.cache_extensions:
            lines.append(
                f"cache extends   : {self.cache_extensions}"
            )
        if self.segments_packed or self.segments_reused:
            lines.append(
                f"segments        : {self.segments_packed} packed, "
                f"{self.segments_extended} extended, "
                f"{self.segments_reused} reused, "
                f"{self.segments_mmap_reads} mmap reads"
            )
        if self.matrix_bytes or self.segments_resident_bytes:
            lines.append(
                f"memory          : matrix {self.matrix_bytes} B, "
                f"segments {self.segments_resident_bytes} B resident / "
                f"{self.segments_spilled_bytes} B spilled"
            )
        lines.append(f"large itemsets  : {self.large_itemsets}")
        lines.append(f"candidates      : {self.candidates_generated}")
        lines.append(f"negative sets   : {self.negative_itemsets}")
        return "\n".join(lines)


@dataclass(slots=True)
class MinerOutput:
    """Everything a negative-itemset miner produces.

    ``counts``/``total_transactions`` record the raw counting results
    for *every* candidate that reached a counting pass — the inputs the
    cross-measure comparison layer (:mod:`repro.measures.compare`)
    needs to re-judge the same run under other measures without
    touching the data again.
    """

    large_itemsets: LargeItemsetIndex
    candidates: dict[Itemset, NegativeCandidate]
    negatives: list[NegativeItemset]
    stats: MiningStats
    counts: dict[Itemset, int] = field(default_factory=dict)
    total_transactions: int = 0


def resolve_measure(
    measure: "str | InterestMeasure | None",
    session: MiningSession | None = None,
    figure3_literal: bool = False,
) -> InterestMeasure:
    """The measure an explicit argument + session + legacy flag select.

    An explicit *measure* wins; ``None`` falls back to the session's
    bound measure (the ``measure=`` policy of ``MiningConfig``), then to
    the registry default. The legacy ``figure3_literal`` flag is folded
    into the resolved instance, so miners constructed directly with
    ``figure3_literal=True`` keep their historical behavior; combining
    it with a non-RI measure raises :class:`~repro.errors.ConfigError`.
    """
    resolved = measure
    if resolved is None and session is not None:
        resolved = session.measure
    if resolved is None or isinstance(resolved, str):
        return create_measure(
            resolved if resolved is not None else "ri",
            MeasurePolicy(figure3_literal=figure3_literal),
        )
    if figure3_literal and not getattr(resolved, "figure3_literal", False):
        return create_measure(
            resolved.name, MeasurePolicy(figure3_literal=True)
        )
    return resolved


def _single_supports(
    items: Itemset, index: LargeItemsetIndex
) -> tuple[float, ...]:
    """Member-item supports of a candidate, 0.0 for small singles.

    Candidates may contain small items (their *rules* cannot, but the
    itemset predicate sees them); an absent single reads as support 0,
    which makes the independence baseline 0 and the candidate
    inadmissible for the independence-based measures — exactly right,
    since no large-sided rule can come out of it.
    """
    return tuple(
        index.support_or_none((item,)) or 0.0 for item in items
    )


def select_negatives(
    candidates: dict[Itemset, NegativeCandidate],
    counts: dict[Itemset, int],
    total: int,
    minsup: float,
    minri: float,
    measure: "InterestMeasure | None" = None,
    index: LargeItemsetIndex | None = None,
) -> list[NegativeItemset]:
    """Apply a measure's negative-itemset predicate to counted candidates.

    *measure* defaults to the paper's RI; *index* (the large itemsets)
    is required by measures that judge candidates against independence
    over single-item supports (``needs_taxonomy_expectation=False``).
    """
    if measure is None:
        measure = create_measure("ri")
    needs_singles = not measure.capabilities.needs_taxonomy_expectation
    if needs_singles and index is None:
        raise ConfigError(
            f"measure {measure.name!r} judges candidates against "
            "independence over single-item supports; pass the large "
            "itemset index to select_negatives"
        )
    negatives: list[NegativeItemset] = []
    for items, count in counts.items():
        candidate = candidates[items]
        actual = count / total
        singles = _single_supports(items, index) if needs_singles else ()
        if measure.admits_itemset(
            candidate.expected_support, actual, singles, minsup, minri
        ):
            negatives.append(
                NegativeItemset(
                    items=items,
                    expected_support=candidate.expected_support,
                    actual_support=actual,
                    source=candidate.source,
                    case=candidate.case,
                )
            )
    negatives.sort(key=lambda negative: (-negative.deviation, negative.items))
    return negatives


class NaiveNegativeMiner:
    """Two-passes-per-level negative mining (Section 2.2.1).

    Parameters
    ----------
    database, taxonomy:
        The data and the domain knowledge.
    minsup, minri:
        Fractional minimum support and minimum rule interest.
    session:
        The :class:`~repro.core.session.MiningSession` every counting
        pass goes through — engine choice, cache policy and parallel
        policy all live there. ``None`` builds a serial default-engine
        session over *database*/*taxonomy*.
    max_size:
        Optional cap on itemset size.
    figure3_literal:
        Use Figure 3's literal low-support predicate instead of the body
        text's deviation predicate (see module docstring). RI only.
    measure:
        The interestingness measure judging candidates and rules: a
        registered spec (``"ri"``, ``"kong-interest"``, ``"coherent"``)
        or an :class:`~repro.measures.registry.InterestMeasure`
        instance. ``None`` uses the session's bound measure (the
        registry default when the session has none).
    """

    def __init__(
        self,
        database: TransactionDatabase,
        taxonomy: Taxonomy,
        minsup: float,
        minri: float,
        session: MiningSession | None = None,
        max_size: int | None = None,
        figure3_literal: bool = False,
        max_sibling_replacements: int | None = None,
        measure: "str | InterestMeasure | None" = None,
    ) -> None:
        check_fraction(minsup, "minsup")
        check_fraction(minri, "minri")
        self._database = database
        self._taxonomy = taxonomy
        self._minsup = minsup
        self._minri = minri
        self._session = (
            session
            if session is not None
            else MiningSession(database, taxonomy)
        )
        self._max_size = max_size
        self._measure = resolve_measure(
            measure, self._session, figure3_literal
        )
        self._max_sibling_replacements = max_sibling_replacements

    def mine(self) -> MinerOutput:
        """Run the per-level loop and return all results."""
        database = self._database
        session = self._session
        total = len(database)
        start_physical = database.scans
        start_logical = getattr(database, "logical_scans", database.scans)
        # Fresh per-run accumulators: a second mine() must never report
        # the first run's cache/shard activity.
        session.begin_run()

        index = LargeItemsetIndex()
        all_candidates: dict[Itemset, NegativeCandidate] = {}
        all_counts: dict[Itemset, int] = {}
        negatives: list[NegativeItemset] = []
        batches = 0

        levels = iter_generalized_levels(
            database,
            self._taxonomy,
            self._minsup,
            session=session,
            max_size=self._max_size,
        )
        for level_number, level in enumerate(levels, start=1):
            for items, support in level.items():
                index.add(items, support)
            if level_number == 1:
                continue
            with obs.span("mine.candidate_gen") as span:
                candidates = generate_negative_candidates(
                    index,
                    self._taxonomy,
                    self._minsup,
                    self._minri,
                    sources=level.keys(),
                    max_sibling_replacements=self._max_sibling_replacements,
                )
                span.annotate("level", level_number)
                span.annotate("candidates", len(candidates))
            if not candidates:
                continue
            all_candidates.update(candidates)
            counts = session.count(
                list(candidates), restrict_to_candidate_items=True
            )
            all_counts.update(counts)
            batches += 1
            negatives.extend(
                select_negatives(
                    candidates, counts, total, self._minsup, self._minri,
                    measure=self._measure, index=index,
                )
            )

        negatives.sort(
            key=lambda negative: (-negative.deviation, negative.items)
        )
        logical_now = getattr(database, "logical_scans", database.scans)
        stats = _build_stats(
            logical_now - start_logical, index, all_candidates, negatives,
            batches, session.parallel_stats,
            physical_passes=database.scans - start_physical,
            cache=session.cache_stats,
        )
        session.publish_run(stats)
        return MinerOutput(
            index, all_candidates, negatives, stats,
            counts=all_counts, total_transactions=total,
        )


class ImprovedNegativeMiner:
    """Single deferred counting pass (Section 2.2.2, Figure 3).

    Parameters
    ----------
    database, taxonomy, minsup, minri, session, max_size, figure3_literal,
    measure:
        As for :class:`NaiveNegativeMiner`.
    algorithm:
        Generalized miner for step 1 (``"basic"``, ``"cumulate"``,
        ``"estmerge"``).
    max_candidates_in_memory:
        Memory budget of Section 2.5: when the candidate set is larger,
        counting is split into that many-candidate batches, one pass each.
        ``None`` counts everything in one pass.
    prune_taxonomy:
        Apply the "delete all small 1-itemsets from the taxonomy"
        optimization before candidate generation. Never changes the
        output (replacements are filtered to large items either way);
        exposed for the A3 ablation.
    rng:
        Randomness for the EstMerge sample, when that algorithm is chosen.
    """

    def __init__(
        self,
        database: TransactionDatabase,
        taxonomy: Taxonomy,
        minsup: float,
        minri: float,
        algorithm: str = "cumulate",
        session: MiningSession | None = None,
        max_size: int | None = None,
        max_candidates_in_memory: int | None = None,
        prune_taxonomy: bool = True,
        figure3_literal: bool = False,
        max_sibling_replacements: int | None = None,
        rng: random.Random | None = None,
        measure: "str | InterestMeasure | None" = None,
    ) -> None:
        check_fraction(minsup, "minsup")
        check_fraction(minri, "minri")
        if max_candidates_in_memory is not None:
            check_positive(
                max_candidates_in_memory, "max_candidates_in_memory"
            )
        self._database = database
        self._taxonomy = taxonomy
        self._minsup = minsup
        self._minri = minri
        self._algorithm = algorithm
        self._session = (
            session
            if session is not None
            else MiningSession(database, taxonomy)
        )
        self._max_size = max_size
        self._batch_size = max_candidates_in_memory
        self._prune_taxonomy = prune_taxonomy
        self._measure = resolve_measure(
            measure, self._session, figure3_literal
        )
        self._max_sibling_replacements = max_sibling_replacements
        self._rng = rng

    def mine(self) -> MinerOutput:
        """Run the three phases and return all results."""
        database = self._database
        session = self._session
        total = len(database)
        start_physical = database.scans
        start_logical = getattr(database, "logical_scans", database.scans)
        # Fresh per-run accumulators: a second mine() must never report
        # the first run's cache/shard activity.
        session.begin_run()

        with obs.span("mine.positive") as span:
            index = mine_generalized(
                database,
                self._taxonomy,
                self._minsup,
                algorithm=self._algorithm,
                session=session,
                max_size=self._max_size,
                rng=self._rng,
            )
            span.annotate("algorithm", self._algorithm)
            span.annotate("large_itemsets", len(index))

        with obs.span("mine.candidate_gen") as span:
            generation_taxonomy = self._taxonomy
            if self._prune_taxonomy:
                large_singles = [items[0] for items in index.of_size(1)]
                generation_taxonomy = restrict_to_items(
                    self._taxonomy, large_singles
                )

            candidates = generate_negative_candidates(
                index,
                generation_taxonomy,
                self._minsup,
                self._minri,
                max_size=self._max_size,
                max_sibling_replacements=self._max_sibling_replacements,
            )
            span.annotate("candidates", len(candidates))

        negatives: list[NegativeItemset] = []
        all_counts: dict[Itemset, int] = {}
        batches = 0
        with obs.span("mine.negative_count") as span:
            for batch in _batched(sorted(candidates), self._batch_size):
                # Counting uses the *full* taxonomy: transactions may
                # contain small items whose ancestors still matter for
                # other rows.
                counts = session.count(
                    batch, restrict_to_candidate_items=True
                )
                all_counts.update(counts)
                batches += 1
                negatives.extend(
                    select_negatives(
                        candidates, counts, total, self._minsup,
                        self._minri, measure=self._measure, index=index,
                    )
                )
            span.annotate("batches", batches)

        negatives.sort(
            key=lambda negative: (-negative.deviation, negative.items)
        )
        logical_now = getattr(database, "logical_scans", database.scans)
        stats = _build_stats(
            logical_now - start_logical, index, candidates, negatives,
            batches, session.parallel_stats,
            physical_passes=database.scans - start_physical,
            cache=session.cache_stats,
        )
        session.publish_run(stats)
        return MinerOutput(
            index, candidates, negatives, stats,
            counts=all_counts, total_transactions=total,
        )


def _batched(
    items: list[Itemset], batch_size: int | None
) -> list[list[Itemset]]:
    if not items:
        return []
    if batch_size is None:
        return [items]
    return [
        items[start:start + batch_size]
        for start in range(0, len(items), batch_size)
    ]


def _build_stats(
    passes: int,
    index: LargeItemsetIndex,
    candidates: dict[Itemset, NegativeCandidate],
    negatives: list[NegativeItemset],
    batches: int,
    parallel: ParallelStats | None = None,
    physical_passes: int | None = None,
    cache: CacheStats | None = None,
) -> MiningStats:
    by_size: dict[int, int] = {}
    for items in candidates:
        by_size[len(items)] = by_size.get(len(items), 0) + 1
    stats = MiningStats(
        data_passes=passes,
        large_itemsets=len(index),
        candidates_generated=len(candidates),
        negative_itemsets=len(negatives),
        counting_batches=batches,
        candidates_by_size=dict(sorted(by_size.items())),
        physical_passes=physical_passes if physical_passes is not None
        else passes,
    )
    if parallel is not None:
        stats.shards = parallel.shards
        stats.worker_tasks = parallel.worker_tasks
        stats.workers_launched = parallel.workers_launched
        stats.worker_retries = parallel.worker_retries
        stats.worker_fallbacks = parallel.worker_fallbacks
        stats.shm_publishes = parallel.shm_publishes
        stats.shm_batches = parallel.shm_batches
        stats.shm_bytes = parallel.shm_bytes
    if cache is not None:
        stats.cache_hits = cache.hits
        stats.cache_misses = cache.misses
        stats.cache_invalidations = cache.invalidations
        stats.cache_evictions = cache.evictions
        stats.cache_extensions = cache.extensions
        stats.cache_bytes = cache.bytes
        stats.kernel_batches = cache.kernel_batches
        stats.kernel_words = cache.kernel_words
        stats.matrix_bytes = cache.matrix_bytes
        stats.segments_packed = cache.segments_packed
        stats.segments_extended = cache.segments_extended
        stats.segments_reused = cache.segments_reused
        stats.segments_spilled_bytes = cache.segments_spilled_bytes
        stats.segments_resident_bytes = cache.segments_resident_bytes
        stats.segments_mmap_reads = cache.segments_mmap_reads
    return stats
