"""Property-based tests: Figure 4's rule generator vs a brute oracle."""

import random
from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.negmining import NegativeItemset
from repro.core.rulegen import generate_negative_rules
from repro.itemset import itemset
from repro.mining.itemset_index import LargeItemsetIndex


@st.composite
def scenarios(draw):
    """A random negative itemset + a *realistic* index of its subsets.

    Real large-itemset indexes are downward closed (every subset of a
    large itemset is large) with monotone supports (subsets are at least
    as frequent); both properties are what justifies Figure 4's pruning,
    so the strategy enforces them: per-item frequency factors define
    multiplicative (hence monotone) supports, and largeness is drawn as a
    random downward-closed family.
    """
    size = draw(st.integers(min_value=2, max_value=5))
    items = itemset(range(1, size + 1))
    seed = draw(st.integers(min_value=0, max_value=100_000))
    rng = random.Random(seed)
    factor = {item: rng.uniform(0.3, 0.95) for item in items}
    index = LargeItemsetIndex()
    large: set = set()
    for subset_size in range(1, size):
        for subset in combinations(items, subset_size):
            sub_subsets_large = all(
                sub in large
                for sub in combinations(subset, subset_size - 1)
                if sub
            )
            if sub_subsets_large and rng.random() < 0.85:
                support = 1.0
                for item in subset:
                    support *= factor[item]
                index.add(subset, support)
                large.add(subset)
    expected = rng.uniform(0.01, 0.5)
    actual = rng.uniform(0.0, expected)
    negative = NegativeItemset(
        items=items,
        expected_support=expected,
        actual_support=actual,
        source=items,
        case="children",
    )
    minri = draw(st.sampled_from([0.1, 0.3, 0.6]))
    return negative, index, minri


def oracle_rules(negative, index, minri):
    """Every split meeting the paper's three rule conditions."""
    items = negative.items
    found = set()
    for consequent_size in range(1, len(items)):
        for consequent in combinations(items, consequent_size):
            antecedent = tuple(
                item for item in items if item not in consequent
            )
            if not index.is_large(consequent):
                continue
            if not index.is_large(antecedent):
                continue
            ri = (
                negative.expected_support - negative.actual_support
            ) / index.support(antecedent)
            if ri >= minri:
                found.add((antecedent, consequent))
    return found


@settings(max_examples=120, deadline=None)
@given(scenarios())
def test_exhaustive_mode_matches_oracle(scenario):
    negative, index, minri = scenario
    rules = generate_negative_rules(
        [negative], index, minri, prune_small_antecedents=False
    )
    produced = {(rule.antecedent, rule.consequent) for rule in rules}
    assert produced == oracle_rules(negative, index, minri)


@settings(max_examples=120, deadline=None)
@given(scenarios())
def test_figure4_pruning_is_sound(scenario):
    """Figure 4's pruned output is always a subset of the oracle with
    correct RI values (it may skip rules hidden behind a small
    antecedent, which is the documented pruning trade-off)."""
    negative, index, minri = scenario
    rules = generate_negative_rules(
        [negative], index, minri, prune_small_antecedents=True
    )
    valid = oracle_rules(negative, index, minri)
    for rule in rules:
        assert (rule.antecedent, rule.consequent) in valid
        expected_ri = (
            negative.expected_support - negative.actual_support
        ) / index.support(rule.antecedent)
        assert abs(rule.ri - expected_ri) < 1e-12


@settings(max_examples=120, deadline=None)
@given(scenarios())
def test_single_item_consequents_never_lost(scenario):
    """The pruning only affects multi-item consequents: every oracle rule
    with a 1-item consequent must appear even in pruned mode."""
    negative, index, minri = scenario
    rules = generate_negative_rules(
        [negative], index, minri, prune_small_antecedents=True
    )
    produced = {(rule.antecedent, rule.consequent) for rule in rules}
    for antecedent, consequent in oracle_rules(negative, index, minri):
        if len(consequent) == 1:
            assert (antecedent, consequent) in produced
