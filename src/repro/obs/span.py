"""Tracing spans: nestable timed regions of the mining pipeline.

A :class:`Span` measures one named region — a counting pass, a cache
rebuild, a candidate-generation phase — with monotonic wall time
(``time.perf_counter``) and process CPU time (``time.process_time``).
Spans nest: the active-span stack lives in :mod:`repro.obs.api`, and a
span records its parent's name and its own depth so trace consumers can
reconstruct the tree from a flat JSON-lines file.

Spans carry attributes (``annotate``): rows scanned, candidates counted,
engine name — whatever the instrumented site knows. On exit a span
reports itself to the owning :class:`~repro.obs.api.Observability`,
which feeds the duration histogram (``span.<name>``) and any configured
trace sink.

When observability is disabled, instrumented code still says
``with obs_span("count.pass") as span: span.annotate(...)`` — but gets
the module-level :data:`NULL_SPAN` singleton back, whose methods are
empty and allocate nothing. The disabled path is therefore a couple of
attribute lookups per span, cheap enough to leave in per-pass hot code
(``benchmarks/bench_obs_overhead.py`` pins the cost below 2%).
"""

from __future__ import annotations

import time


class Span:
    """One timed, annotated region; use as a context manager.

    Not created directly by instrumented code — ask the obs API
    (:func:`repro.obs.span`) so nesting depth, parent linkage and
    reporting are handled. ``wall_s``/``cpu_s`` are populated on exit.
    """

    __slots__ = (
        "name",
        "parent",
        "depth",
        "attrs",
        "start_s",
        "wall_s",
        "cpu_s",
        "_owner",
        "_cpu_start",
    )

    def __init__(self, name: str, owner) -> None:
        self.name = name
        self.parent: str | None = None
        self.depth = 0
        self.attrs: dict[str, object] = {}
        self.start_s = 0.0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._owner = owner
        self._cpu_start = 0.0

    def annotate(self, key: str, value) -> None:
        """Attach one attribute to the span (last write wins)."""
        self.attrs[key] = value

    def add(self, key: str, value: int) -> None:
        """Add *value* to the integer attribute *key* (from zero)."""
        self.attrs[key] = self.attrs.get(key, 0) + value

    def __enter__(self) -> "Span":
        self._owner._push(self)
        self.start_s = time.perf_counter()
        self._cpu_start = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        self.cpu_s = time.process_time() - self._cpu_start
        self.wall_s = end - self.start_s
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._owner._pop(self)

    def __repr__(self) -> str:
        return (
            f"Span(name={self.name!r}, depth={self.depth}, "
            f"wall_s={self.wall_s:.6f})"
        )


class _NullSpan:
    """The do-nothing span handed out when observability is off.

    A single shared instance (:data:`NULL_SPAN`); every method is a
    no-op and nothing is allocated per call — the zero-allocation
    property is pinned by ``tests/unit/test_obs.py``.
    """

    __slots__ = ()

    def annotate(self, key: str, value) -> None:
        pass

    def add(self, key: str, value: int) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def __repr__(self) -> str:
        return "NULL_SPAN"


#: Shared disabled-path span; identity-comparable (``span is NULL_SPAN``).
NULL_SPAN = _NullSpan()
