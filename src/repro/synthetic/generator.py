"""Transaction emission (paper Section 3.1, final stage).

"The length of a transaction is determined by Poisson distribution with
mean equal to |T|. Until the transaction size is less than the generated
length, a cluster is picked according to its weight. Once the cluster is
determined an itemset from that cluster is picked and assigned to the
transaction. ... Items from the itemset are dropped as long as an uniformly
generated random number between 0 and 1 is less than a corruption level c."

Transactions contain only leaf items of the taxonomy, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.database import TransactionDatabase
from ..taxonomy.tree import Taxonomy
from .clusters import ClusterModel, build_cluster_model
from .params import GeneratorParams
from .taxonomy_gen import generate_taxonomy


@dataclass(frozen=True, slots=True)
class SyntheticDataset:
    """A generated taxonomy + transaction database pair."""

    taxonomy: Taxonomy
    database: TransactionDatabase
    model: ClusterModel
    params: GeneratorParams
    seed: int


def generate_transactions(
    model: ClusterModel,
    params: GeneratorParams,
    rng: np.random.Generator,
) -> TransactionDatabase:
    """Emit ``params.num_transactions`` transactions from *model*."""
    cluster_weights = np.array(model.cluster_weights)
    cluster_ids = np.arange(len(model.clusters))
    per_cluster_choices = [
        (np.arange(len(cluster.itemsets)), np.array(cluster.itemset_weights))
        for cluster in model.clusters
    ]

    transactions: list[list[int]] = []
    lengths = rng.poisson(params.avg_transaction_size,
                          size=params.num_transactions)
    for raw_length in lengths:
        length = max(1, int(raw_length))
        row: set[int] = set()
        # Guard against pathological models (e.g. every itemset fully
        # corrupted away) with a bounded number of attempts.
        attempts = 0
        while len(row) < length and attempts < 10 * length + 10:
            attempts += 1
            cluster_index = int(
                rng.choice(cluster_ids, p=cluster_weights)
            )
            cluster = model.clusters[cluster_index]
            ids, weights = per_cluster_choices[cluster_index]
            itemset_index = int(rng.choice(ids, p=weights))
            chosen = list(cluster.itemsets[itemset_index])
            corruption = cluster.corruption_levels[itemset_index]
            # Corruption: drop items while the coin keeps landing below c.
            while chosen and rng.random() < corruption:
                drop = int(rng.integers(len(chosen)))
                chosen.pop(drop)
            row.update(chosen)
        if not row:
            # Fully-corrupted transaction: keep one item from a weighted
            # cluster so the row is non-empty (a zero-item basket carries
            # no signal and TransactionDatabase rejects it).
            cluster = model.clusters[
                int(rng.choice(cluster_ids, p=cluster_weights))
            ]
            first_itemset = cluster.itemsets[0]
            row.add(first_itemset[int(rng.integers(len(first_itemset)))])
        transactions.append(sorted(row))
    return TransactionDatabase(transactions)


def generate_dataset(
    params: GeneratorParams, seed: int = 0
) -> SyntheticDataset:
    """Generate a full dataset (taxonomy, cluster model, transactions).

    Parameters
    ----------
    params:
        Typically :data:`~repro.synthetic.params.SHORT`,
        :data:`~repro.synthetic.params.TALL`, or a
        :meth:`~repro.synthetic.params.GeneratorParams.scaled` version of
        either.
    seed:
        Seed for the whole generation chain; equal seeds reproduce the
        dataset exactly.
    """
    rng = np.random.default_rng(seed)
    taxonomy = generate_taxonomy(params, rng)
    model = build_cluster_model(taxonomy, params, rng)
    database = generate_transactions(model, params, rng)
    return SyntheticDataset(
        taxonomy=taxonomy,
        database=database,
        model=model,
        params=params,
        seed=seed,
    )
