"""Property-based tests for the frequent-itemset miners."""

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.database import TransactionDatabase
from repro.itemset import itemset
from repro.mining.apriori import apriori_gen, find_large_itemsets
from repro.mining.aprioritid import (
    find_large_itemsets_aprioritid,
    find_large_itemsets_hybrid,
)
from repro.mining.partition import find_large_itemsets_partition

databases = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=12), min_size=1, max_size=6
    ),
    min_size=1,
    max_size=40,
).map(TransactionDatabase)

minsups = st.sampled_from([0.1, 0.25, 0.5])


def exhaustive_large_itemsets(database, minsup):
    """Oracle: enumerate every itemset up to size 4 by brute force."""
    rows = [set(row) for row in database]
    universe = sorted({item for row in rows for item in row})
    min_count = minsup * len(rows)
    found = {}
    for size in range(1, 5):
        for candidate in combinations(universe, size):
            count = sum(
                1 for row in rows if set(candidate) <= row
            )
            if count >= min_count:
                found[candidate] = count / len(rows)
    return found


@settings(max_examples=40, deadline=None)
@given(databases, minsups)
def test_apriori_matches_exhaustive_oracle(database, minsup):
    index = find_large_itemsets(database, minsup, max_size=4)
    assert dict(index.items()) == exhaustive_large_itemsets(
        database, minsup
    )


@settings(max_examples=25, deadline=None)
@given(databases, minsups, st.integers(min_value=1, max_value=6))
def test_partition_equals_apriori(database, minsup, partitions):
    apriori = find_large_itemsets(database, minsup)
    partitioned = find_large_itemsets_partition(
        database, minsup, partitions=partitions
    )
    assert partitioned == apriori


@settings(max_examples=40, deadline=None)
@given(databases, minsups)
def test_downward_closure(database, minsup):
    index = find_large_itemsets(database, minsup)
    for items, _support in index.items():
        for drop in range(len(items)):
            subset = items[:drop] + items[drop + 1:]
            if subset:
                assert subset in index


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.lists(
            st.integers(min_value=0, max_value=10),
            min_size=2,
            max_size=2,
        ).map(itemset).filter(lambda s: len(s) == 2),
        min_size=1,
        max_size=20,
    ).map(lambda pairs: sorted(set(pairs)))
)
def test_apriori_gen_soundness(pairs):
    """Every generated candidate has all (k-1)-subsets in the input."""
    prev = set(pairs)
    for candidate in apriori_gen(pairs):
        assert len(candidate) == 3
        for drop in range(3):
            subset = candidate[:drop] + candidate[drop + 1:]
            assert subset in prev


@settings(max_examples=40, deadline=None)
@given(
    st.sets(st.integers(min_value=0, max_value=8), min_size=3, max_size=6)
)
def test_apriori_gen_completeness_on_full_lattice(universe):
    """From ALL pairs over a universe, gen must yield ALL triples."""
    pairs = [itemset(pair) for pair in combinations(sorted(universe), 2)]
    triples = set(apriori_gen(pairs))
    assert triples == {
        itemset(triple) for triple in combinations(sorted(universe), 3)
    }


@settings(max_examples=25, deadline=None)
@given(databases, minsups)
def test_aprioritid_equals_apriori(database, minsup):
    assert find_large_itemsets_aprioritid(
        database, minsup
    ) == find_large_itemsets(database, minsup)


@settings(max_examples=25, deadline=None)
@given(databases, minsups, st.sampled_from([1, 50, 100_000]))
def test_hybrid_equals_apriori(database, minsup, budget):
    assert find_large_itemsets_hybrid(
        database, minsup, switch_budget=budget
    ) == find_large_itemsets(database, minsup)
