"""Mining the paper's synthetic workload end to end.

Generates a (scaled-down) version of the paper's "Short" data set with the
Section 3.1 generator — nested-logit consumer choice over a random
taxonomy — and runs both the Naive and the Improved miner on it,
reporting the pass counts and result sizes the paper's evaluation is
built around.

Run with::

    python examples/synthetic_market.py [scale]

where ``scale`` (default 0.03) scales |D|, N, |L| and R. The paper's full
parameters correspond to scale 1.0.
"""

import sys
import time

from repro.core.negmining import ImprovedNegativeMiner, NaiveNegativeMiner
from repro.synthetic import SHORT, generate_dataset

MINSUP = 0.08
MINRI = 0.5


def run_miner(name, miner_class, dataset, **kwargs):
    dataset.database.reset_scans()
    started = time.perf_counter()
    output = miner_class(
        dataset.database, dataset.taxonomy, MINSUP, MINRI, **kwargs
    ).mine()
    elapsed = time.perf_counter() - started
    stats = output.stats
    print(
        f"  {name:<10} time={elapsed:7.2f}s passes={stats.data_passes:3d} "
        f"large={stats.large_itemsets:5d} "
        f"candidates={stats.candidates_generated:6d} "
        f"negatives={stats.negative_itemsets:6d}"
    )
    return output


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.03
    params = SHORT.scaled(scale)
    print(
        f"generating 'Short' dataset at scale {scale}: "
        f"|D|={params.num_transactions}, N={params.num_items}, "
        f"F={params.fanout}"
    )
    dataset = generate_dataset(params, seed=1)
    print(f"  {dataset.taxonomy}")
    print(f"  {dataset.database}")
    print()

    print(f"mining at MinSup={MINSUP:.0%}, MinRI={MINRI}")
    improved = run_miner("improved", ImprovedNegativeMiner, dataset)
    naive = run_miner("naive", NaiveNegativeMiner, dataset)

    assert {n.items for n in naive.negatives} == {
        n.items for n in improved.negatives
    }, "the two algorithms must find identical negative itemsets"

    print()
    print("top negative itemsets by deviation from expectation:")
    taxonomy = dataset.taxonomy
    for negative in improved.negatives[:8]:
        print(
            f"  {taxonomy.format_itemset(negative.items):<30} "
            f"expected={negative.expected_support:.4f} "
            f"actual={negative.actual_support:.4f} ({negative.case})"
        )


if __name__ == "__main__":
    main()
