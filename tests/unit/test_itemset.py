"""Unit tests for canonical itemset operations."""

import pytest

from repro.itemset import (
    difference,
    is_canonical,
    is_subset,
    itemset,
    proper_nonempty_subsets,
    replace_positions,
    subsets_of_size,
    union,
)


class TestItemsetConstruction:
    def test_sorts_items(self):
        assert itemset([3, 1, 2]) == (1, 2, 3)

    def test_removes_duplicates(self):
        assert itemset([2, 2, 1, 1]) == (1, 2)

    def test_empty(self):
        assert itemset([]) == ()

    def test_accepts_any_iterable(self):
        assert itemset(iter({5, 3})) == (3, 5)


class TestIsCanonical:
    def test_sorted_unique_is_canonical(self):
        assert is_canonical((1, 2, 3))

    def test_unsorted_is_not(self):
        assert not is_canonical((2, 1))

    def test_duplicates_are_not(self):
        assert not is_canonical((1, 1, 2))

    def test_empty_and_singleton(self):
        assert is_canonical(())
        assert is_canonical((7,))


class TestUnion:
    def test_disjoint(self):
        assert union((1, 3), (2, 4)) == (1, 2, 3, 4)

    def test_overlapping(self):
        assert union((1, 2, 3), (2, 3, 4)) == (1, 2, 3, 4)

    def test_identical(self):
        assert union((1, 2), (1, 2)) == (1, 2)

    def test_with_empty(self):
        assert union((), (1, 2)) == (1, 2)
        assert union((1, 2), ()) == (1, 2)

    def test_one_side_exhausts_first(self):
        assert union((1,), (2, 3, 4)) == (1, 2, 3, 4)
        assert union((5, 6), (1,)) == (1, 5, 6)


class TestDifference:
    def test_removes_members(self):
        assert difference((1, 2, 3), (2,)) == (1, 3)

    def test_disjoint_returns_first(self):
        assert difference((1, 2), (3, 4)) == (1, 2)

    def test_full_overlap(self):
        assert difference((1, 2), (1, 2)) == ()


class TestIsSubset:
    def test_true_subset(self):
        assert is_subset((2, 4), (1, 2, 3, 4))

    def test_equal_sets(self):
        assert is_subset((1, 2), (1, 2))

    def test_missing_item(self):
        assert not is_subset((2, 5), (1, 2, 3, 4))

    def test_longer_than_superset(self):
        assert not is_subset((1, 2, 3), (1, 2))

    def test_empty_subset_of_anything(self):
        assert is_subset((), (1,))
        assert is_subset((), ())

    def test_first_item_beyond_superset(self):
        assert not is_subset((9,), (1, 2, 3))


class TestSubsetsOfSize:
    def test_pairs(self):
        assert subsets_of_size((1, 2, 3), 2) == [(1, 2), (1, 3), (2, 3)]

    def test_full_size(self):
        assert subsets_of_size((1, 2), 2) == [(1, 2)]

    def test_oversize_is_empty(self):
        assert subsets_of_size((1, 2), 3) == []


class TestProperNonemptySubsets:
    def test_pair(self):
        assert proper_nonempty_subsets((1, 2)) == [(1,), (2,)]

    def test_count_for_triple(self):
        assert len(proper_nonempty_subsets((1, 2, 3))) == 6

    def test_singleton_has_none(self):
        assert proper_nonempty_subsets((1,)) == []


class TestReplacePositions:
    def test_single_replacement(self):
        assert replace_positions((1, 5, 9), (1,), (7,)) == (1, 7, 9)

    def test_result_is_resorted(self):
        assert replace_positions((1, 5, 9), (0,), (20,)) == (5, 9, 20)

    def test_multiple_positions(self):
        assert replace_positions((1, 5, 9), (0, 2), (2, 8)) == (2, 5, 8)

    def test_collision_returns_none(self):
        # Replacing 5 with 9 collides with the existing 9.
        assert replace_positions((1, 5, 9), (1,), (9,)) is None

    @pytest.mark.parametrize("positions,news", [((0,), (3,)), ((1,), (0,))])
    def test_replacement_stays_canonical(self, positions, news):
        result = replace_positions((1, 5), positions, news)
        assert result is not None
        assert is_canonical(result)
