"""Unit tests for AprioriTid and AprioriHybrid."""

import pytest

from repro.data.database import TransactionDatabase
from repro.errors import ConfigError
from repro.mining.apriori import find_large_itemsets
from repro.mining.aprioritid import (
    find_large_itemsets_aprioritid,
    find_large_itemsets_hybrid,
)


class TestAprioriTid:
    def test_matches_apriori_small(self, small_database):
        reference = find_large_itemsets(small_database, 0.2)
        small_database.reset_scans()
        tid = find_large_itemsets_aprioritid(small_database, 0.2)
        assert tid == reference

    @pytest.mark.parametrize("minsup", [0.05, 0.1, 0.3])
    def test_matches_apriori_random(self, random_database, minsup):
        reference = find_large_itemsets(random_database, minsup)
        tid = find_large_itemsets_aprioritid(random_database, minsup)
        assert tid == reference

    def test_single_data_pass(self, random_database):
        random_database.reset_scans()
        find_large_itemsets_aprioritid(random_database, 0.1)
        assert random_database.scans == 1

    def test_max_size_cap(self, random_database):
        index = find_large_itemsets_aprioritid(
            random_database, 0.05, max_size=2
        )
        assert index.max_size <= 2

    def test_nothing_large(self):
        database = TransactionDatabase([[i] for i in range(20)])
        index = find_large_itemsets_aprioritid(database, 0.5)
        assert len(index) == 0

    def test_deep_itemsets(self):
        # Every transaction identical: the lattice goes to full depth.
        database = TransactionDatabase([[1, 2, 3, 4]] * 10)
        index = find_large_itemsets_aprioritid(database, 0.9)
        assert (1, 2, 3, 4) in index
        assert len(index) == 15  # all non-empty subsets

    def test_bad_minsup(self, random_database):
        with pytest.raises(ConfigError):
            find_large_itemsets_aprioritid(random_database, 0.0)


class TestAprioriHybrid:
    @pytest.mark.parametrize("budget", [1, 100, 10_000, 10_000_000])
    def test_matches_apriori_at_any_switch_point(
        self, random_database, budget
    ):
        reference = find_large_itemsets(random_database, 0.1)
        hybrid = find_large_itemsets_hybrid(
            random_database, 0.1, switch_budget=budget
        )
        assert hybrid == reference

    def test_small_budget_switches_late(self, random_database):
        """With a tiny budget the hybrid behaves like plain Apriori and
        scans once per level (no early switch)."""
        random_database.reset_scans()
        index = find_large_itemsets_hybrid(
            random_database, 0.1, switch_budget=1
        )
        # At least one pass per level was made.
        assert random_database.scans >= index.max_size

    def test_huge_budget_switches_early(self, random_database):
        """With a huge budget the switch happens right after level 2."""
        random_database.reset_scans()
        find_large_itemsets_hybrid(
            random_database, 0.1, switch_budget=10_000_000
        )
        # L1 pass + L2 pass + one image-building pass = 3, regardless of
        # the lattice depth beyond that.
        assert random_database.scans <= 3

    def test_max_size_cap(self, random_database):
        index = find_large_itemsets_hybrid(
            random_database, 0.05, max_size=2
        )
        assert index.max_size <= 2

    def test_bad_budget(self, random_database):
        with pytest.raises(ConfigError):
            find_large_itemsets_hybrid(
                random_database, 0.1, switch_budget=0
            )
