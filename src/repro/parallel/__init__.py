"""Parallel execution engine: sharded counting across worker processes.

The 1998 paper is a single-machine algorithm whose cost model is *passes
over a large database*; its companion Partition algorithm (VLDB 1995) is
embarrassingly parallel by construction — partitions are mined
independently and merged. This subpackage exploits both facts without
changing any semantics (an engineering substitution, documented in
DESIGN.md §5):

* :mod:`~repro.parallel.shards` — split one logical pass into contiguous
  row ranges with cheap pickle transport.
* :mod:`~repro.parallel.pool` — a crash-safe worker-pool executor with
  per-task timeouts, bounded retry with backoff, and serial fallback,
  in two modes: process-per-task (:class:`~repro.parallel.pool.
  WorkerPool`) and persistent workers sharing per-worker state
  (:class:`~repro.parallel.pool.PersistentWorkerPool`).
* :mod:`~repro.parallel.shm` — zero-copy publication of the bit-packed
  word matrix through ``multiprocessing.shared_memory``, with explicit
  create/attach/close/unlink lifecycle and leak safety nets; the
  substrate of the ``"parallel-shm"`` engine (DESIGN.md §11).
* :mod:`~repro.parallel.engine` — the ``"parallel"`` counting engine
  (partial counts summed deterministically; bit-identical to the serial
  engines) and :func:`~repro.parallel.engine.parallel_partition`, the
  one-worker-per-partition Partition driver.

Entry points: pass ``n_jobs=4`` (or ``engine="parallel"``) to
:func:`repro.mine_negative_rules`, ``--jobs 4`` on the CLI, and add
``shm=True`` / ``--shm`` (or ``engine="parallel-shm"``) for the
shared-memory kernel.
"""

from .engine import (
    ParallelStats,
    parallel_count_supports,
    parallel_partition,
)
from .pool import (
    PersistentWorkerPool,
    PoolConfig,
    PoolStats,
    WorkerPool,
    resolve_n_jobs,
)
from .shards import Shard, plan_shards, shard_bounds
from .shm import SegmentHandle, SharedPackedMatrix, live_segments

__all__ = [
    "ParallelStats",
    "parallel_count_supports",
    "parallel_partition",
    "PersistentWorkerPool",
    "PoolConfig",
    "PoolStats",
    "WorkerPool",
    "resolve_n_jobs",
    "Shard",
    "plan_shards",
    "shard_bounds",
    "SegmentHandle",
    "SharedPackedMatrix",
    "live_segments",
]
