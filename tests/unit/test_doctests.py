"""Run the doctest examples embedded in public docstrings.

Keeps every ``>>>`` example in the API documentation executable and
correct — documentation that drifts from the code fails the suite.
"""

import doctest

import pytest

import repro.core.api
import repro.core.substitutes
import repro.itemset
import repro.measures.information
import repro.mining.apriori
import repro.taxonomy.builders

MODULES = [
    repro.itemset,
    repro.mining.apriori,
    repro.core.api,
    repro.core.substitutes,
    repro.measures.information,
    repro.taxonomy.builders,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[module.__name__ for module in MODULES]
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module.__name__}"
    )


def test_at_least_some_examples_exist():
    """Guard against silently losing all examples (e.g. a refactor that
    strips docstrings): the suite must actually be testing something."""
    total = sum(
        doctest.testmod(module, verbose=False).attempted
        for module in MODULES
    )
    assert total >= 5
