"""Unit tests for random taxonomy generation."""

import numpy as np
import pytest

from repro.synthetic.params import GeneratorParams
from repro.synthetic.taxonomy_gen import generate_taxonomy


def params(**overrides):
    base = dict(num_items=500, num_roots=10, fanout=5.0)
    base.update(overrides)
    return GeneratorParams(**base)


class TestGenerateTaxonomy:
    def test_leaf_count_hits_target(self):
        taxonomy = generate_taxonomy(params(), np.random.default_rng(0))
        assert len(taxonomy.leaves) == 500

    def test_root_count(self):
        taxonomy = generate_taxonomy(params(), np.random.default_rng(0))
        assert len(taxonomy.roots) == 10

    def test_deterministic_with_seed(self):
        first = generate_taxonomy(params(), np.random.default_rng(7))
        second = generate_taxonomy(params(), np.random.default_rng(7))
        assert first.parent_map() == second.parent_map()

    def test_different_seeds_differ(self):
        first = generate_taxonomy(params(), np.random.default_rng(1))
        second = generate_taxonomy(params(), np.random.default_rng(2))
        assert first.parent_map() != second.parent_map()

    def test_small_fanout_is_taller(self):
        wide = generate_taxonomy(
            params(fanout=9.0), np.random.default_rng(3)
        )
        narrow = generate_taxonomy(
            params(fanout=3.0), np.random.default_rng(3)
        )
        assert narrow.height > wide.height

    def test_average_fanout_tracks_parameter(self):
        taxonomy = generate_taxonomy(
            params(num_items=2000, fanout=6.0), np.random.default_rng(4)
        )
        assert taxonomy.fanout() == pytest.approx(6.0, rel=0.25)

    def test_roots_exceeding_budget_stay_leaves(self):
        taxonomy = generate_taxonomy(
            GeneratorParams(num_items=10, num_roots=10, fanout=4.0),
            np.random.default_rng(5),
        )
        assert len(taxonomy.leaves) == 10
        assert len(taxonomy.categories) == 0

    def test_categories_have_at_least_two_children(self):
        taxonomy = generate_taxonomy(params(), np.random.default_rng(6))
        near_full = [
            category
            for category in taxonomy.categories
            if len(taxonomy.children(category)) < 2
        ]
        assert near_full == []
