"""Convenience one-shot counting over the engine registry.

Historically this module held every counting engine and a
``count_supports`` free function that routed between them through a
string ``engine=`` kwarg plus ~8 companion policy kwargs. The engines
now live in :mod:`repro.mining.engines` behind the
:class:`~repro.mining.engines.CountingEngine` protocol, and callers
that need policy (engine choice, parallelism, caching) bind it once in
a :class:`~repro.core.session.MiningSession` and call
``session.count()``.

What remains here is the plain form only:
``count_supports(rows, candidates, taxonomy)`` counts one pass with the
default engine. The deprecated policy-kwargs path (``engine=``,
``n_jobs=``, ``use_cache=``, …) warned through two release cycles and
was removed in PR 7 — passing any of them is now a ``TypeError``.

``ENGINES`` / ``SERIAL_ENGINES`` / ``DEFAULT_ENGINE`` are re-exported
from the registry for compatibility.
"""

from __future__ import annotations

from collections.abc import Collection

from ..itemset import Itemset
from ..taxonomy.tree import Taxonomy
from .engines import (  # noqa: F401  (compat re-exports)
    DEFAULT_ENGINE,
    ENGINES,
    SERIAL_ENGINES,
    count_pass,
    create_engine,
)


def count_supports(
    transactions,
    candidates: Collection[Itemset],
    taxonomy: Taxonomy | None = None,
    restrict_to_candidate_items: bool = False,
) -> dict[Itemset, int]:
    """Count how many transactions contain each candidate.

    One pass with the default engine — the convenience entry point for
    scripts and doctests. Anything beyond that (engine choice,
    parallelism, cache policy, stats accounting) belongs to a
    :class:`~repro.core.session.MiningSession`, which binds the policy
    once and exposes the same counting through ``session.count()``.

    Returns the absolute count per candidate; every candidate appears
    as a key, with 0 when unsupported.
    """
    engine = create_engine(DEFAULT_ENGINE)
    return count_pass(
        engine,
        engine.prepare(transactions, taxonomy),
        candidates,
        restrict_to_candidate_items=restrict_to_candidate_items,
    )
