"""E4 — Tables 1 & 2: the frozen-yogurt / bottled-water worked example.

Regenerates the paper's worked example end to end: a consistent
transaction database realizing Table 1's brand supports is mined with the
full pipeline at MinSup = 4,000 / 100k-equivalent and MinRI = 0.5, and the
output is checked to be the paper's single rule, Perrier =/=> Bryers.

Run directly for the tables::

    python -m benchmarks.bench_table12_example
"""

from repro.core.api import mine_negative_rules
from repro.data.database import TransactionDatabase
from repro.taxonomy.builders import taxonomy_from_nested

MINSUP = 0.04
MINRI = 0.5

#: Consistent rendition of Table 1 (out of 10,000 transactions).
GROUPS = [
    (("Bryers", "Evian"), 1200),
    (("Bryers", "Perrier"), 50),
    (("Bryers",), 750),
    (("Healthy Choice", "Evian"), 420),
    (("Healthy Choice", "Perrier"), 250),
    (("Healthy Choice",), 330),
    (("Evian",), 380),
    (("Perrier",), 500),
    (("Carbonated",), 6120),
]


def build_taxonomy():
    return taxonomy_from_nested(
        {
            "Beverages": {
                "Carbonated": [],
                "NonCarbonated": {
                    "Bottled juices": [],
                    "Bottled water": ["Evian", "Perrier"],
                },
            },
            "Desserts": {
                "Ice creams": [],
                "Frozen yogurt": ["Bryers", "Healthy Choice"],
            },
        }
    )


def build_database(taxonomy):
    rows = []
    for names, count in GROUPS:
        row = [taxonomy.id_of(name) for name in names]
        rows.extend([row] * count)
    return TransactionDatabase(rows)


def run_example():
    taxonomy = build_taxonomy()
    database = build_database(taxonomy)
    result = mine_negative_rules(
        database, taxonomy, minsup=MINSUP, minri=MINRI
    )
    return taxonomy, database, result


def test_table12_pipeline(benchmark):
    taxonomy, _database, result = (None, None, None)

    def execute():
        return run_example()

    taxonomy, _database, result = benchmark.pedantic(
        execute, rounds=1, iterations=1
    )
    perrier = taxonomy.id_of("Perrier")
    bryers = taxonomy.id_of("Bryers")
    pairs = {(rule.antecedent, rule.consequent) for rule in result.rules}
    assert ((perrier,), (bryers,)) in pairs
    benchmark.extra_info.update(
        rules=len(result.rules),
        negatives=result.stats.negative_itemsets,
        candidates=result.stats.candidates_generated,
    )


def main() -> None:
    taxonomy, database, result = run_example()
    total = len(database)

    print("=== Table 1: supports (absolute, |D| = 10,000) ===")
    for name in ("Bryers", "Healthy Choice", "Evian", "Perrier",
                 "Frozen yogurt", "Bottled water"):
        items = (taxonomy.id_of(name),)
        support = result.large_itemsets.support_or_none(items) or 0.0
        print(f"  {name:<22} {round(support * total):>7}")
    fy_bw = tuple(
        sorted(
            (
                taxonomy.id_of("Frozen yogurt"),
                taxonomy.id_of("Bottled water"),
            )
        )
    )
    pair_support = result.large_itemsets.support_or_none(fy_bw) or 0.0
    print(f"  {'Frozen yogurt + Bottled water':<29} "
          f"{round(pair_support * total):>4}")

    print("\n=== Table 2: expected vs actual supports (brand pairs) ===")
    brands = {"Bryers", "Healthy Choice", "Evian", "Perrier"}
    brand_ids = {taxonomy.id_of(name) for name in brands}
    for negative in result.negative_itemsets:
        if set(negative.items) <= brand_ids:
            print(
                f"  {taxonomy.format_itemset(negative.items):<35} "
                f"expected={round(negative.expected_support * total):>6} "
                f"actual={round(negative.actual_support * total):>6}"
            )

    print(f"\n=== Rules at MinSup={MINSUP}, MinRI={MINRI} ===")
    for rule in result.rules:
        print("  " + rule.format(taxonomy))
    print(
        "\nshape check: the paper's single rule is "
        "'Perrier =/=> Bryers' (RI 0.7 as published; 0.65 from the "
        "paper's own formulas — see EXPERIMENTS.md)"
    )


if __name__ == "__main__":
    main()
