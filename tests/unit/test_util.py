"""Unit tests for internal validation and timing helpers."""

import pytest

from repro._util import (
    Stopwatch,
    check_fraction,
    check_nonnegative,
    check_positive,
)
from repro.errors import ConfigError


class TestValidators:
    def test_fraction_accepts_boundary(self):
        assert check_fraction(1.0, "x") == 1.0
        assert check_fraction(0.001, "x") == 0.001

    @pytest.mark.parametrize("value", [0.0, -0.2, 1.0001])
    def test_fraction_rejects(self, value):
        with pytest.raises(ConfigError, match="x must be"):
            check_fraction(value, "x")

    def test_positive(self):
        assert check_positive(1, "n") == 1
        with pytest.raises(ConfigError):
            check_positive(0, "n")

    def test_nonnegative(self):
        assert check_nonnegative(0.0, "n") == 0.0
        with pytest.raises(ConfigError):
            check_nonnegative(-1e-9, "n")


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        with watch.measure():
            pass
        with watch.measure():
            pass
        assert watch.elapsed >= 0.0
        assert len(watch.laps) == 2

    def test_reset(self):
        watch = Stopwatch()
        with watch.measure():
            pass
        watch.reset()
        assert watch.elapsed == 0.0
        assert watch.laps == []

    def test_records_lap_on_exception(self):
        watch = Stopwatch()
        with pytest.raises(ValueError):
            with watch.measure():
                raise ValueError("boom")
        assert len(watch.laps) == 1
