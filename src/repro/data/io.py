"""Plain-text IO for transaction databases and taxonomies.

Two tiny line-oriented formats keep datasets diffable and tool-friendly:

* **Basket files** — one transaction per line, item ids separated by
  whitespace. Lines starting with ``#`` are comments.

  ::

      # tid-implicit basket file
      3 17 42
      8 17

* **Taxonomy files** — tab-separated ``child<TAB>parent[<TAB>name]`` rows.
  A row with parent ``-`` declares an isolated root. The optional third
  column names the *child* node.
"""

from __future__ import annotations

import os
from pathlib import Path

from ..errors import DatabaseError, TaxonomyError
from ..taxonomy.tree import Taxonomy
from .database import TransactionDatabase

PathLike = str | os.PathLike[str]


def save_basket_file(database: TransactionDatabase, path: PathLike) -> None:
    """Write *database* to *path* in basket format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# repro basket file: one transaction per line\n")
        for row in database:
            handle.write(" ".join(str(item) for item in row))
            handle.write("\n")


def load_basket_file(path: PathLike) -> TransactionDatabase:
    """Read a basket file back into a :class:`TransactionDatabase`."""
    transactions: list[list[int]] = []
    path = Path(path)
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                transactions.append([int(tok) for tok in stripped.split()])
            except ValueError as exc:
                raise DatabaseError(
                    f"{path}:{line_number}: malformed basket line "
                    f"{stripped!r}"
                ) from exc
    if not transactions:
        raise DatabaseError(f"{path}: no transactions found")
    return TransactionDatabase(transactions)


def save_taxonomy_file(taxonomy: Taxonomy, path: PathLike) -> None:
    """Write *taxonomy* to *path* in child/parent/name TSV format."""
    names = taxonomy.names_map()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# repro taxonomy file: child<TAB>parent[<TAB>name]\n")
        parent_map = taxonomy.parent_map()
        for node in taxonomy.nodes:
            parent = parent_map.get(node)
            parent_token = "-" if parent is None else str(parent)
            if node in names:
                handle.write(f"{node}\t{parent_token}\t{names[node]}\n")
            else:
                handle.write(f"{node}\t{parent_token}\n")


def load_taxonomy_file(path: PathLike) -> Taxonomy:
    """Read a taxonomy TSV back into a :class:`Taxonomy`."""
    parents: dict[int, int] = {}
    extra_roots: list[int] = []
    names: dict[int, str] = {}
    path = Path(path)
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.rstrip("\n")
            if not stripped.strip() or stripped.startswith("#"):
                continue
            fields = stripped.split("\t")
            if len(fields) not in (2, 3):
                raise TaxonomyError(
                    f"{path}:{line_number}: expected 2 or 3 tab-separated "
                    f"fields, got {len(fields)}"
                )
            try:
                child = int(fields[0])
            except ValueError as exc:
                raise TaxonomyError(
                    f"{path}:{line_number}: malformed child id {fields[0]!r}"
                ) from exc
            if fields[1] == "-":
                extra_roots.append(child)
            else:
                try:
                    parents[child] = int(fields[1])
                except ValueError as exc:
                    raise TaxonomyError(
                        f"{path}:{line_number}: malformed parent id "
                        f"{fields[1]!r}"
                    ) from exc
            if len(fields) == 3:
                names[child] = fields[2]
    return Taxonomy(parents, names=names, extra_roots=extra_roots)
