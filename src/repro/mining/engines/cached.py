"""The ``cached`` engine: persistent vertical bitmap index counting.

One physical scan materializes a :class:`~repro.mining.vertical.
VerticalIndex` attached to the database, and every later pass (any
Apriori level, the Improved miner's negative-candidate count, EstMerge
sample estimates) intersects cached bitmaps instead of re-reading rows.
Generalized counting ORs descendant bitmaps lazily, so no per-row
ancestor extension happens at all. With ``packed=True`` the index stores
NumPy word arrays and counts with the same vectorized kernel as the
``numpy`` engine. See :mod:`repro.mining.vertical` and DESIGN.md §6.
"""

from __future__ import annotations

from collections.abc import Collection

from ...itemset import Itemset
from .. import vertical
from .base import (
    Capabilities,
    CountingEngine,
    EnginePolicy,
    EngineState,
    register_engine,
)


@register_engine("cached")
class CachedEngine(CountingEngine):
    """Vertical counting with the rebuild amortized across passes.

    Requires the scan-counted database (not plain rows) to persist the
    index; plain rows fall back to a one-shot index build per pass. It
    ignores ``restrict_to_candidate_items`` — extended rows are never
    materialized in the first place.
    """

    capabilities = Capabilities(packed=True, caching=True, shardable=True)

    def __init__(
        self,
        use_cache: bool = True,
        cache_bytes: int | None = None,
        packed: bool = False,
        batch_words: int | None = None,
    ) -> None:
        self.use_cache = use_cache
        self.cache_bytes = cache_bytes
        self.packed = packed
        self.batch_words = batch_words

    @classmethod
    def from_policy(
        cls, policy: EnginePolicy, inner=None
    ) -> "CachedEngine":
        cls._reject_inner(inner)
        return cls(
            use_cache=policy.use_cache,
            cache_bytes=policy.cache_bytes,
            packed=policy.packed,
            batch_words=policy.batch_words,
        )

    def count(
        self,
        state: EngineState,
        candidates: Collection[Itemset],
        *,
        restrict_to_candidate_items: bool = False,
        cache_stats=None,
        parallel_stats=None,
    ) -> dict[Itemset, int]:
        return vertical.count_with_index(
            state.transactions,
            candidates,
            taxonomy=state.taxonomy,
            budget_bytes=self.cache_bytes,
            use_cache=self.use_cache,
            stats=cache_stats,
            packed=self.packed,
            batch_words=self.batch_words,
        )
