"""Small internal helpers shared across subpackages."""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from .errors import ConfigError


def check_fraction(value: float, name: str) -> float:
    """Validate that *value* lies in ``(0, 1]`` and return it.

    Support and interest thresholds are fractions of the database size;
    zero is rejected because it would admit every itemset.
    """
    if not 0.0 < value <= 1.0:
        raise ConfigError(f"{name} must be in (0, 1], got {value!r}")
    return value


def check_positive(value: int, name: str) -> int:
    """Validate that *value* is a positive integer and return it."""
    if value < 1:
        raise ConfigError(f"{name} must be >= 1, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Validate that *value* is >= 0 and return it."""
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {value!r}")
    return value


@dataclass
class Stopwatch:
    """Accumulating wall-clock timer used by the benchmark harnesses.

    >>> watch = Stopwatch()
    >>> with watch.measure():
    ...     pass
    >>> watch.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _laps: list[float] = field(default_factory=list)

    @contextmanager
    def measure(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            lap = time.perf_counter() - start
            self.elapsed += lap
            self._laps.append(lap)

    @property
    def laps(self) -> list[float]:
        return list(self._laps)

    def reset(self) -> None:
        self.elapsed = 0.0
        self._laps.clear()
