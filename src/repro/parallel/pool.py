"""Process worker pool with per-task timeouts, retries and serial fallback.

:class:`WorkerPool` is the execution substrate of the parallel engine. It
deliberately does **not** reuse :class:`multiprocessing.Pool` /
``concurrent.futures``: both lose track of tasks when a worker dies
abruptly (a killed child can hang a pending ``get()`` forever), and the
whole point of this pool is that a crashed or wedged worker degrades to a
retry and finally to in-process serial execution rather than a hang.

Design: one short-lived process per task *attempt*, at most ``n_jobs``
in flight, results returned over a one-way pipe. On Linux (fork start
method) process creation costs milliseconds, which is negligible against a
counting pass; the scheme buys exact crash detection (pipe EOF), exact
timeout enforcement (``terminate()``), and zero shared state between
attempts.

Failure ladder per task::

    attempt 1 .. 1 + retries   (each failure sleeps backoff * attempt)
    -> serial fallback         (the task runs in the parent process)

The serial fallback re-raises whatever the task raises — a
deterministically failing task therefore surfaces its real exception to
the caller instead of a wrapped pool error.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait

from .._util import check_nonnegative, check_positive
from ..errors import ConfigError
from ..obs import api as _obs


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` request: ``None`` means one per CPU."""
    if n_jobs is None:
        return max(1, os.cpu_count() or 1)
    return check_positive(n_jobs, "n_jobs")


@dataclass(frozen=True, slots=True)
class PoolConfig:
    """Tunables of one :class:`WorkerPool`.

    Attributes
    ----------
    n_jobs:
        Maximum concurrent worker processes. ``1`` disables
        multiprocessing entirely: tasks run serially in the parent.
    timeout:
        Per-attempt wall-clock budget in seconds; ``None`` = unbounded.
        A timed-out worker is terminated and the task retried.
    retries:
        Re-attempts after the first failed attempt, before the serial
        fallback.
    backoff:
        Base sleep between attempts; attempt ``k`` sleeps ``backoff * k``.
    start_method:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); ``None`` = platform default.
    """

    n_jobs: int = 1
    timeout: float | None = None
    retries: int = 1
    backoff: float = 0.05
    start_method: str | None = None

    def __post_init__(self) -> None:
        check_positive(self.n_jobs, "n_jobs")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(
                f"timeout must be positive or None, got {self.timeout!r}"
            )
        check_nonnegative(self.retries, "retries")
        check_nonnegative(self.backoff, "backoff")


@dataclass(slots=True)
class PoolStats:
    """Observable accounting of one pool's lifetime.

    Attributes
    ----------
    tasks:
        Tasks submitted via :meth:`WorkerPool.map`.
    workers_launched:
        Worker processes started (attempts, not tasks).
    retries:
        Failed attempts that were re-queued.
    timeouts:
        Attempts killed for exceeding the per-task timeout.
    crashes:
        Attempts whose worker died without reporting a result.
    errors:
        Attempts whose worker raised an exception.
    serial_tasks:
        Tasks run in the parent because ``n_jobs == 1``.
    fallbacks:
        Tasks run in the parent after exhausting retries (or because
        worker processes could not be created at all).
    """

    tasks: int = 0
    workers_launched: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    errors: int = 0
    serial_tasks: int = 0
    fallbacks: int = 0


def _child(func: Callable, payload, connection) -> None:
    """Worker entry point: run one task, report over the pipe, exit."""
    # A forked child inherits the parent's observability state, including
    # open trace-file handles it must never write to or close; start
    # clean. Tasks that should measure open their own worker-scope
    # collection and ship the registry back in their result.
    _obs.detach()
    try:
        result = func(payload)
    except BaseException as exc:  # noqa: BLE001 — report, parent decides
        try:
            connection.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            connection.close()
        return
    connection.send(("ok", result))
    connection.close()


class _Task:
    __slots__ = ("index", "payload", "attempts", "process", "connection",
                 "deadline")

    def __init__(self, index: int, payload) -> None:
        self.index = index
        self.payload = payload
        self.attempts = 0
        self.process = None
        self.connection = None
        self.deadline: float | None = None


class WorkerPool:
    """Run independent tasks across worker processes; never hang.

    Parameters
    ----------
    config:
        A :class:`PoolConfig`; defaults to serial (``n_jobs=1``).

    Notes
    -----
    Task functions and payloads must be picklable under the chosen start
    method (top-level functions; payloads of plain tuples). Results are
    returned in submission order regardless of completion order, so a
    caller merging partial results gets a deterministic reduction.
    """

    def __init__(self, config: PoolConfig | None = None) -> None:
        self.config = config or PoolConfig()
        self.stats = PoolStats()
        self._context = multiprocessing.get_context(self.config.start_method)

    def map(self, func: Callable, payloads: Iterable) -> list:
        """Apply *func* to every payload; return results in order.

        Failures follow the module-level ladder: retry with backoff, then
        serial fallback in the parent. Exceptions raised by the serial
        fallback (or by any task when ``n_jobs == 1``) propagate.
        """
        items: Sequence = list(payloads)
        results: list = [None] * len(items)
        self.stats.tasks += len(items)
        if not items:
            return results
        if self.config.n_jobs == 1:
            for index, payload in enumerate(items):
                results[index] = func(payload)
                self.stats.serial_tasks += 1
            return results
        self._run_parallel(func, items, results)
        return results

    # ------------------------------------------------------------------
    # Parallel scheduler
    # ------------------------------------------------------------------
    def _run_parallel(
        self, func: Callable, items: Sequence, results: list
    ) -> None:
        pending: deque[_Task] = deque(
            _Task(index, payload) for index, payload in enumerate(items)
        )
        running: dict = {}  # recv connection -> _Task
        try:
            while pending or running:
                while pending and len(running) < self.config.n_jobs:
                    task = pending.popleft()
                    if not self._launch(func, task):
                        # Process creation failed: finish in-parent.
                        results[task.index] = func(task.payload)
                        self.stats.fallbacks += 1
                        continue
                    running[task.connection] = task
                if not running:
                    continue
                for connection in self._wait(running):
                    task = running.pop(connection)
                    self._finish(func, task, pending, results)
                self._reap_timeouts(func, running, pending, results)
        finally:
            for task in running.values():
                self._kill(task)

    def _launch(self, func: Callable, task: _Task) -> bool:
        receiver, sender = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_child, args=(func, task.payload, sender), daemon=True
        )
        try:
            process.start()
        except OSError:
            receiver.close()
            sender.close()
            return False
        sender.close()  # parent's copy — EOF then tracks the child alone
        task.process = process
        task.connection = receiver
        task.attempts += 1
        if self.config.timeout is not None:
            task.deadline = time.monotonic() + self.config.timeout
        self.stats.workers_launched += 1
        return True

    def _wait(self, running: dict) -> list:
        timeout = None
        deadlines = [
            task.deadline
            for task in running.values()
            if task.deadline is not None
        ]
        if deadlines:
            timeout = max(0.0, min(deadlines) - time.monotonic())
        return _connection_wait(list(running), timeout)

    def _finish(
        self, func: Callable, task: _Task, pending: deque, results: list
    ) -> None:
        try:
            status, value = task.connection.recv()
        except (EOFError, OSError):
            status, value = "crashed", None
        task.connection.close()
        task.process.join()
        if status == "ok":
            results[task.index] = value
            return
        if status == "crashed":
            self.stats.crashes += 1
        else:
            self.stats.errors += 1
        self._retry_or_fallback(func, task, pending, results)

    def _reap_timeouts(
        self, func: Callable, running: dict, pending: deque, results: list
    ) -> None:
        now = time.monotonic()
        for connection, task in list(running.items()):
            if task.deadline is not None and now >= task.deadline:
                del running[connection]
                self._kill(task)
                self.stats.timeouts += 1
                self._retry_or_fallback(func, task, pending, results)

    def _retry_or_fallback(
        self, func: Callable, task: _Task, pending: deque, results: list
    ) -> None:
        if task.attempts <= self.config.retries:
            self.stats.retries += 1
            if self.config.backoff:
                time.sleep(self.config.backoff * task.attempts)
            task.process = None
            task.connection = None
            task.deadline = None
            pending.append(task)
            return
        results[task.index] = func(task.payload)
        self.stats.fallbacks += 1

    def _kill(self, task: _Task) -> None:
        process = task.process
        if process is None:
            return
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover — stubborn child
                process.kill()
                process.join()
        else:
            process.join()
        if task.connection is not None:
            task.connection.close()
