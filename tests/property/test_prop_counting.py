"""Property-based tests: all counting engines agree with set semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.itemset import itemset
from repro.mining.engines import count_pass, create_engine
from repro.mining.hash_tree import HashTree


def count(engine_spec, transactions, candidates):
    engine = create_engine(engine_spec)
    return count_pass(
        engine, engine.prepare(transactions, None), candidates
    )

transactions_strategy = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=25), min_size=1, max_size=8
    ).map(itemset),
    min_size=1,
    max_size=40,
)
candidates_strategy = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=25), min_size=1, max_size=4
    ).map(itemset),
    min_size=1,
    max_size=25,
).map(lambda cands: sorted(set(cands)))


def oracle(transactions, candidates):
    counts = {candidate: 0 for candidate in candidates}
    for row in transactions:
        row_set = set(row)
        for candidate in candidates:
            if set(candidate) <= row_set:
                counts[candidate] += 1
    return counts


@settings(max_examples=60, deadline=None)
@given(transactions_strategy, candidates_strategy)
def test_engines_match_oracle(transactions, candidates):
    expected = oracle(transactions, candidates)
    for engine in ("bitmap", "hashtree", "index", "brute"):
        assert count(engine, transactions, candidates) == expected


@settings(max_examples=60, deadline=None)
@given(
    transactions_strategy,
    st.lists(
        st.lists(
            st.integers(min_value=0, max_value=25),
            min_size=3,
            max_size=3,
        ).map(itemset).filter(lambda s: len(s) == 3),
        min_size=1,
        max_size=30,
    ).map(lambda cands: sorted(set(cands))),
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=4),
)
def test_hash_tree_parameters_never_change_counts(
    transactions, candidates, branching, leaf_capacity
):
    """Branching factor and leaf capacity are performance knobs only."""
    tree = HashTree(
        candidates, branching=branching, leaf_capacity=leaf_capacity
    )
    assert tree.count_all(transactions) == oracle(transactions, candidates)


@settings(max_examples=40, deadline=None)
@given(transactions_strategy, candidates_strategy)
def test_counts_bounded_by_database_size(transactions, candidates):
    counts = count("hashtree", transactions, candidates)
    assert all(0 <= count <= len(transactions) for count in counts.values())


@settings(max_examples=40, deadline=None)
@given(transactions_strategy, candidates_strategy)
def test_count_is_antitone_in_candidate_size(transactions, candidates):
    """A candidate can never out-count one of its own subsets."""
    counts = count("brute", transactions, candidates)
    by_items = dict(counts)
    for candidate, support in counts.items():
        for drop in range(len(candidate)):
            subset = candidate[:drop] + candidate[drop + 1:]
            if subset in by_items:
                assert by_items[subset] >= support
