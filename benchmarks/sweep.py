"""Shared sweep logic for the execution-time figures (Figures 5 and 6).

The paper measures "generation of negative itemsets and negative rules"
and explicitly excludes "the time taken to generate the generalized large
itemsets" — :func:`negative_phase_seconds` reproduces that accounting by
pre-mining the positive itemsets outside the timed region and timing only
candidate generation, counting, negative selection and rule generation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.candidates import generate_negative_candidates
from repro.core.negmining import (
    NaiveNegativeMiner,
    select_negatives,
)
from repro.core.rulegen import generate_negative_rules
from repro.core.session import MiningSession
from repro.mining.generalized import mine_generalized
from repro.mining.itemset_index import LargeItemsetIndex
from repro.synthetic.generator import SyntheticDataset
from repro.taxonomy.prune import restrict_to_items

from .common import MINRI


@dataclass(slots=True)
class SweepPoint:
    """One (algorithm, minsup) measurement of the Figure 5/6 sweep."""

    algorithm: str
    minsup: float
    seconds: float
    large_itemsets: int
    candidates: int
    negatives: int
    rules: int


def _positive_index(
    dataset: SyntheticDataset, minsup: float
) -> LargeItemsetIndex:
    return mine_generalized(dataset.database, dataset.taxonomy, minsup)


def improved_negative_phase(
    dataset: SyntheticDataset, minsup: float, index: LargeItemsetIndex
) -> SweepPoint:
    """Time the Improved algorithm's negative phase (Figure 3)."""
    database, taxonomy = dataset.database, dataset.taxonomy
    total = len(database)

    started = time.perf_counter()
    large_singles = [items[0] for items in index.of_size(1)]
    pruned = restrict_to_items(taxonomy, large_singles)
    candidates = generate_negative_candidates(
        index, pruned, minsup, MINRI
    )
    counts = MiningSession(database, taxonomy).count(
        list(candidates), restrict_to_candidate_items=True
    )
    negatives = select_negatives(
        candidates, counts, total, minsup, MINRI
    )
    rules = generate_negative_rules(negatives, index, MINRI)
    seconds = time.perf_counter() - started
    return SweepPoint(
        algorithm="improved",
        minsup=minsup,
        seconds=seconds,
        large_itemsets=len(index),
        candidates=len(candidates),
        negatives=len(negatives),
        rules=len(rules),
    )


def naive_negative_phase(
    dataset: SyntheticDataset, minsup: float
) -> SweepPoint:
    """Time the Naive algorithm end to end, then subtract the positive
    passes by re-measuring them separately.

    The Naive schedule interleaves positive and negative passes, so its
    negative-phase cost is measured as (total - positive-only) — the same
    normalization the paper applies.
    """
    database = dataset.database

    started = time.perf_counter()
    output = NaiveNegativeMiner(
        database, dataset.taxonomy, minsup, MINRI
    ).mine()
    rules = generate_negative_rules(
        output.negatives, output.large_itemsets, MINRI
    )
    total_seconds = time.perf_counter() - started

    started = time.perf_counter()
    mine_generalized(database, dataset.taxonomy, minsup)
    positive_seconds = time.perf_counter() - started

    return SweepPoint(
        algorithm="naive",
        minsup=minsup,
        seconds=max(0.0, total_seconds - positive_seconds),
        large_itemsets=len(output.large_itemsets),
        candidates=output.stats.candidates_generated,
        negatives=output.stats.negative_itemsets,
        rules=len(rules),
    )


def run_sweep(dataset: SyntheticDataset, minsups: list[float]) -> list[SweepPoint]:
    """Full Figure 5/6 sweep: both algorithms at every support level."""
    points: list[SweepPoint] = []
    for minsup in minsups:
        index = _positive_index(dataset, minsup)
        points.append(improved_negative_phase(dataset, minsup, index))
        points.append(naive_negative_phase(dataset, minsup))
    return points


def print_figure(points: list[SweepPoint], title: str) -> None:
    """Render the sweep as the paper's time-vs-support series."""
    print()
    print(f"=== {title} (MinRI = {MINRI}) ===")
    print(
        f"{'minsup':>8} {'algorithm':>10} {'time(s)':>9} {'large':>7} "
        f"{'cands':>7} {'negs':>7} {'rules':>7}"
    )
    for point in points:
        print(
            f"{point.minsup:>8.4f} {point.algorithm:>10} "
            f"{point.seconds:>9.3f} {point.large_itemsets:>7} "
            f"{point.candidates:>7} {point.negatives:>7} "
            f"{point.rules:>7}"
        )
