"""Disk-backed transaction database with real per-pass IO.

The paper's whole efficiency argument is *passes over the data*: its
database lives on disk, so every extra pass costs real IO. The in-memory
:class:`~repro.data.database.TransactionDatabase` models that with a scan
counter; :class:`FileBackedDatabase` makes it literal — every
:meth:`~FileBackedDatabase.scan` re-reads and re-parses the basket file
from disk, so the Naive algorithm's ``2n`` passes cost visibly more wall
clock than the Improved algorithm's ``n + 1``, reproducing the *reason*
behind Figures 5 and 6 rather than only their shape.

The class is a drop-in for ``TransactionDatabase`` wherever only the
scanning interface is used (all miners); it deliberately does not cache
rows. Summary statistics needed repeatedly (length, item universe) are
computed once at open time.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator
from itertools import chain
from pathlib import Path

from ..errors import DatabaseError
from ..itemset import Itemset, itemset

PathLike = str | os.PathLike[str]


class FileBackedDatabase:
    """Scan-counted transaction database streaming from a basket file.

    Parameters
    ----------
    path:
        A basket file (see :mod:`repro.data.io`): one transaction of
        whitespace-separated item ids per line, ``#`` comments allowed.

    Notes
    -----
    Construction performs one full read to validate the file and compute
    |D|, the item universe and the average length; this validation read is
    *not* counted as a mining pass (the paper's counts start with the
    algorithm).
    """

    __slots__ = (
        "_path",
        "_scans",
        "_logical_scans",
        "_length",
        "_items",
        "_total_items",
        "_item_counts",
        "_vertical_index",
        "_shard_cache",
        "_epoch",
        "_epoch_token",
        "_offsets",
        "_end_offset",
        "_sealed",
    )

    def __init__(self, path: PathLike) -> None:
        self._path = Path(path)
        self._scans = 0
        self._logical_scans = 0
        self._vertical_index = None
        self._shard_cache = None
        self._item_counts: dict[int, int] | None = None
        self._validate()
        self._epoch = object()
        self._epoch_token = self.cache_token()
        # Row-count -> byte-offset checkpoints at known row boundaries;
        # tail_rows() seeks the closest one instead of re-parsing the
        # head of the file. Every append records one.
        self._offsets: dict[int, int] = {0: 0}

    def _validate(self) -> None:
        """One uncounted read computing |D|, the item universe, lengths."""
        length = 0
        total_items = 0
        items: set[int] = set()
        offset = 0
        sealed = True
        try:
            handle = open(self._path, "rb")
        except OSError as exc:
            raise DatabaseError(
                f"cannot open basket file {self._path}: {exc}"
            ) from exc
        with handle:
            for line_number, raw in enumerate(handle, start=1):
                offset += len(raw)
                sealed = raw.endswith(b"\n")
                row = self._parse_line(
                    f"{self._path}:{line_number}",
                    raw.decode("utf-8").strip(),
                )
                if row is None:
                    continue
                length += 1
                total_items += len(row)
                items.update(row)
        if length == 0:
            raise DatabaseError(f"{self._path}: no transactions found")
        self._length = length
        self._items = frozenset(items)
        self._total_items = total_items
        # Bytes consumed into rows so far, and whether that prefix ended
        # in a newline: absorb_appends() reads new bytes from here, and
        # refuses the fast path when the last consumed line was unsealed
        # (a later write may extend it rather than append after it).
        self._end_offset = offset
        self._sealed = sealed

    def _parse_line(self, where: str, stripped: str) -> Itemset | None:
        """One basket line as a canonical row; ``None`` for blank/comment."""
        if not stripped or stripped.startswith("#"):
            return None
        try:
            row = tuple(sorted({int(token) for token in stripped.split()}))
        except ValueError as exc:
            raise DatabaseError(
                f"{where}: malformed basket line {stripped!r}"
            ) from exc
        if not row:
            raise DatabaseError(f"{where}: empty transaction")
        return row

    def _read(self) -> Iterator[Itemset]:
        """Stream the file line by line, skipping a live writer's tail.

        Scans reread the file, so complete lines appended since the last
        validation are seen (the long-standing contract). The one
        exception is an *unterminated* trailing fragment past the
        consumed boundary (``_end_offset``): that is a partial append a
        live writer has not finished — see :meth:`absorb_appends` — and
        counting half a basket would corrupt supports, so it is skipped.
        A static file legitimately missing its final newline is NOT
        skipped: validation sealed it inside ``_end_offset``.
        """
        try:
            handle = open(self._path, "rb")
        except OSError as exc:
            raise DatabaseError(
                f"cannot open basket file {self._path}: {exc}"
            ) from exc
        with handle:
            consumed = 0
            for line_number, raw in enumerate(handle, start=1):
                consumed += len(raw)
                if consumed > self._end_offset and not raw.endswith(
                    b"\n"
                ):
                    break
                row = self._parse_line(
                    f"{self._path}:{line_number}",
                    raw.decode("utf-8").strip(),
                )
                if row is not None:
                    yield row

    # ------------------------------------------------------------------
    # TransactionDatabase-compatible interface
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[Itemset]:
        """Stream all transactions from disk, counting one pass.

        Records one logical *and* one physical pass, like
        :meth:`repro.data.database.TransactionDatabase.scan`.
        """
        self._scans += 1
        self._logical_scans += 1
        return self._read()

    def physical_scan(self) -> Iterator[Itemset]:
        """Stream rows counting a *physical* pass only (cache builds)."""
        self._scans += 1
        return self._read()

    def count_logical_pass(self) -> None:
        """Record one *logical* counting pass served without disk IO."""
        self._logical_scans += 1

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, transactions: Iterable[Iterable[int]]) -> int:
        """Append transactions to the basket file; returns rows added.

        Same canonicalization and emptiness rules as the in-memory
        database's :meth:`~repro.data.database.TransactionDatabase.append`.
        The pre-append end of file is recorded as a byte checkpoint so
        :meth:`tail_rows` can serve the appended suffix with a seek
        instead of re-parsing the whole file, and the append *epoch*
        is preserved (the ``cache_token`` still changes — size and
        mtime move — so non-incremental caches rebuild as before).
        """
        rows: list[Itemset] = []
        for index, raw in enumerate(transactions):
            row = itemset(raw)
            if not row:
                raise DatabaseError(
                    f"{self._path}: appended transaction {index} is empty"
                )
            rows.append(row)
        if not rows:
            return 0
        # Absorb any external rewrite first so the checkpoint below is
        # recorded against the file we actually extend.
        self.append_epoch()
        try:
            with open(self._path, "r+b") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size:
                    handle.seek(size - 1)
                    if handle.read(1) != b"\n":
                        handle.write(b"\n")
                checkpoint = handle.tell()
                payload = "".join(
                    " ".join(map(str, row)) + "\n" for row in rows
                ).encode("utf-8")
                handle.write(payload)
        except OSError as exc:
            raise DatabaseError(
                f"cannot append to basket file {self._path}: {exc}"
            ) from exc
        self._offsets[self._length] = checkpoint
        self._end_offset = checkpoint + len(payload)
        self._sealed = True
        self._length += len(rows)
        self._total_items += sum(len(row) for row in rows)
        self._items = self._items | frozenset(chain.from_iterable(rows))
        if self._item_counts is not None:
            for row in rows:
                for item in row:
                    self._item_counts[item] = (
                        self._item_counts.get(item, 0) + 1
                    )
        self._epoch_token = self.cache_token()
        return len(rows)

    def append_epoch(self) -> tuple[object, int]:
        """The file's append lineage: ``(epoch, n_rows)``.

        The epoch object survives :meth:`append` calls but not external
        rewrites: if the on-disk fingerprint no longer matches the last
        state this object produced or observed, a fresh epoch is
        allocated, the seek checkpoints are dropped, and the summary
        statistics are recomputed (one uncounted read, like
        construction). Incrementally maintained caches therefore treat
        foreign modifications as full invalidations — never as appends.
        """
        token = self.cache_token()
        if token != self._epoch_token:
            self._epoch = object()
            self._epoch_token = token
            self._offsets = {0: 0}
            self._item_counts = None
            self._validate()
        return self._epoch, self._length

    def absorb_appends(self) -> tuple[int, bool]:
        """Absorb on-disk growth of the basket file (``tail -f`` style).

        External writers extend a live basket log between polls of the
        streaming watcher; this compares the current on-disk fingerprint
        with the last state this object produced or observed and returns
        ``(rows_absorbed, rewritten)``:

        * unchanged file → ``(0, False)``;
        * same inode, strictly larger, consumed prefix newline-sealed →
          a *grow in place*: only the appended bytes are read. Complete
          lines become rows (recording a byte checkpoint for
          :meth:`tail_rows`, exactly like :meth:`append`); a trailing
          line still missing its newline is a **partial append** — it is
          left unconsumed, and the fingerprint is left stale, so the
          next call re-examines the tail once the writer finishes the
          line. Returns ``(rows, False)``;
        * anything else — inode change, truncation, a same-size mtime
          change, or an unsealed consumed tail that may have been
          extended in place — is a *foreign rewrite*: full invalidation
          through :meth:`append_epoch` (fresh epoch, checkpoints
          dropped, statistics recomputed). Returns ``(0, True)``.

        Like ``tail -f``, a rewrite that keeps the inode and strictly
        grows the file is indistinguishable from an append and is
        absorbed as one; malformed appended lines raise
        :class:`~repro.errors.DatabaseError` before any state changes.
        """
        token = self.cache_token()
        if token == self._epoch_token:
            return 0, False
        old_inode, old_size = self._epoch_token[1], self._epoch_token[2]
        inode, size = token[1], token[2]
        if inode != old_inode or size <= old_size or not self._sealed:
            self.append_epoch()
            return 0, True
        try:
            with open(self._path, "rb") as handle:
                handle.seek(self._end_offset)
                chunk = handle.read()
        except OSError as exc:
            raise DatabaseError(
                f"cannot open basket file {self._path}: {exc}"
            ) from exc
        cut = chunk.rfind(b"\n")
        if cut < 0:
            # Only a partial line so far; consume nothing and keep the
            # fingerprint stale so the next poll looks again.
            return 0, False
        complete = chunk[: cut + 1]
        rows: list[Itemset] = []
        for line in complete.splitlines():
            row = self._parse_line(
                str(self._path), line.decode("utf-8").strip()
            )
            if row is not None:
                rows.append(row)
        checkpoint = self._end_offset
        self._end_offset += len(complete)
        if rows:
            self._offsets[self._length] = checkpoint
            self._length += len(rows)
            self._total_items += sum(len(row) for row in rows)
            self._items = self._items | frozenset(
                chain.from_iterable(rows)
            )
            if self._item_counts is not None:
                for row in rows:
                    for item in row:
                        self._item_counts[item] = (
                            self._item_counts.get(item, 0) + 1
                        )
        if cut == len(chunk) - 1:
            self._epoch_token = token
        return len(rows), False

    def tail_rows(self, start: int) -> list[Itemset]:
        """Rows from *start* on, **without** pass accounting.

        Seeks the closest recorded byte checkpoint at or before *start*
        (appends record one per batch) and parses only from there — for
        the common "extend by the appended suffix" read this touches
        just the appended bytes, not the head of the file.
        """
        if not 0 <= start <= self._length:
            raise DatabaseError(
                f"tail start {start} outside [0, {self._length}]"
            )
        anchor = max(
            (rows for rows in self._offsets if rows <= start), default=0
        )
        offset = self._offsets.get(anchor, 0)
        tail: list[Itemset] = []
        try:
            handle = open(self._path, "rb")
        except OSError as exc:
            raise DatabaseError(
                f"cannot open basket file {self._path}: {exc}"
            ) from exc
        with handle:
            handle.seek(offset)
            seen = anchor
            consumed = offset
            for line in handle:
                consumed += len(line)
                if consumed > self._end_offset and not line.endswith(
                    b"\n"
                ):
                    break  # a live writer's unfinished trailing line
                row = self._parse_line(
                    str(self._path), line.decode("utf-8").strip()
                )
                if row is None:
                    continue
                if seen >= start:
                    tail.append(row)
                seen += 1
        return tail

    def item_counts(self) -> dict[int, int]:
        """Absolute occurrence count of every item (cached; not a pass)."""
        if self._item_counts is None:
            counts: dict[int, int] = {}
            for row in self._read():
                for item in row:
                    counts[item] = counts.get(item, 0) + 1
            self._item_counts = counts
        return dict(self._item_counts)

    def __iter__(self) -> Iterator[Itemset]:
        """Stream without counting (reports/tests only — still does IO)."""
        return self._read()

    def __len__(self) -> int:
        return self._length

    @property
    def scans(self) -> int:
        """Number of *physical* mining passes (disk reads) made so far."""
        return self._scans

    @property
    def logical_scans(self) -> int:
        """Number of *logical* counting passes made so far."""
        return self._logical_scans

    def reset_scans(self) -> None:
        self._scans = 0
        self._logical_scans = 0

    def cache_token(self) -> object:
        """Fingerprint of the on-disk file for cache invalidation.

        Inode, size and nanosecond mtime: any rewrite of the basket file
        changes the token, so a vertical index built against the old
        contents can never serve stale counts — it is rebuilt instead.
        """
        try:
            status = os.stat(self._path)
        except OSError as exc:
            raise DatabaseError(
                f"cannot stat basket file {self._path}: {exc}"
            ) from exc
        return (
            str(self._path), status.st_ino, status.st_size,
            status.st_mtime_ns,
        )

    @property
    def items(self) -> frozenset[int]:
        """The distinct items seen at validation time."""
        return self._items

    def average_length(self) -> float:
        return self._total_items / self._length

    def absolute(self, fraction: float) -> float:
        return fraction * self._length

    def fraction(self, count: int) -> float:
        return count / self._length

    @property
    def path(self) -> Path:
        """Location of the underlying basket file."""
        return self._path

    def __repr__(self) -> str:
        return (
            f"FileBackedDatabase(path={str(self._path)!r}, "
            f"transactions={self._length}, items={len(self._items)})"
        )
