"""Reproduction of the paper's worked example (Section 2.1.3, Tables 1-2).

The example is reproduced at three levels of fidelity:

1. **As published** — Table 2's expected supports are injected verbatim and
   rule generation must output exactly the paper's single rule,
   ``Perrier =/=> Bryers`` with RI = 0.7 (and reject the reverse direction,
   RI = 0.175 < 0.5).
2. **Formula-derived** — the paper's own Case-1 formula applied to Table 1
   yields different expectations (2,500 for {Bryers, Perrier}, not 4,000);
   the published numbers are consistent with sup(Evian) = 12,000 /
   sup(Perrier) = 8,000 instead of Table 1's 10,000 / 5,000. Both variants
   are checked; see DESIGN.md "Substitutions" for the analysis.
3. **End-to-end** — a *consistent* transaction database in the spirit of
   the example (Bryers buyers shun Perrier) is mined with the full
   pipeline, which must rediscover Perrier =/=> Bryers organically.

Note that Tables 1 and 2 are jointly unsatisfiable by any real database:
|{B,E}| + |{HC,E}| - |E| forces at least 1,700 transactions containing
Bryers, Healthy Choice and Evian together, while sup(Frozen yogurt) =
30,000 = sup(B) + sup(HC) forces zero overlap between B and HC. Hence
level 3 uses its own consistent supports.
"""


import pytest

from repro.core.api import mine_negative_rules
from repro.core.candidates import generate_negative_candidates
from repro.core.negmining import NegativeItemset
from repro.core.rulegen import generate_negative_rules
from repro.data.database import TransactionDatabase

from ..conftest import (
    TABLE1_TOTAL,
    TABLE2_ACTUAL,
    TABLE2_EXPECTED_PUBLISHED,
)

MINSUP = 4_000 / TABLE1_TOTAL
MINRI = 0.5


class TestAsPublished:
    """Level 1: Table 2's numbers verbatim through rule generation."""

    def test_only_rule_is_perrier_not_bryers(
        self, figure2_taxonomy, table1_index
    ):
        taxonomy = figure2_taxonomy
        bryers = taxonomy.id_of("Bryers")
        perrier = taxonomy.id_of("Perrier")
        pair = tuple(sorted((bryers, perrier)))
        negative = NegativeItemset(
            items=pair,
            expected_support=TABLE2_EXPECTED_PUBLISHED[
                ("Bryers", "Perrier")
            ] / TABLE1_TOTAL,
            actual_support=TABLE2_ACTUAL[("Bryers", "Perrier")]
            / TABLE1_TOTAL,
            source=tuple(
                sorted(
                    (
                        taxonomy.id_of("Frozen yogurt"),
                        taxonomy.id_of("Bottled water"),
                    )
                )
            ),
            case="children",
        )
        rules = generate_negative_rules(
            [negative], table1_index, MINRI
        )
        assert len(rules) == 1
        rule = rules[0]
        assert rule.antecedent == (perrier,)
        assert rule.consequent == (bryers,)
        assert rule.ri == pytest.approx(0.7)

    def test_reverse_direction_fails_minri(
        self, figure2_taxonomy, table1_index
    ):
        """Bryers =/=> Perrier has RI = 3,500/20,000 = 0.175 < 0.5."""
        taxonomy = figure2_taxonomy
        bryers = taxonomy.id_of("Bryers")
        rules_all = generate_negative_rules(
            [
                NegativeItemset(
                    items=tuple(
                        sorted((bryers, taxonomy.id_of("Perrier")))
                    ),
                    expected_support=0.04,
                    actual_support=0.005,
                    source=(0, 1),
                    case="children",
                )
            ],
            table1_index,
            0.1,  # permissive: both directions emitted
        )
        by_antecedent = {rule.antecedent: rule.ri for rule in rules_all}
        assert by_antecedent[(bryers,)] == pytest.approx(0.175)

    def test_other_candidates_not_negative(self):
        """{B,E} and {HC,P} exceed or roughly meet expectations."""
        for names in (("Bryers", "Evian"), ("Healthy Choice", "Perrier")):
            expected = TABLE2_EXPECTED_PUBLISHED[names] / TABLE1_TOTAL
            actual = TABLE2_ACTUAL[names] / TABLE1_TOTAL
            deviation = expected - actual
            assert deviation < MINSUP * MINRI


class TestFormulaDerived:
    """Level 2: the paper's formulas applied to Table 1's supports.

    The implementation finds a generation path the paper's own trace
    overlooks: once {Bryers, Evian} is itself a large itemset, Case 3
    generates {Bryers, Perrier} from it with
    E = 7,500 * (5,000/10,000) = 3,750 — larger than the Case-1 path from
    {Frozen yogurt, Bottled water} (2,500), so the max-dedup rule of
    Section 2.1.1 keeps 3,750. With that expectation the pipeline derives
    the paper's exact rule (Perrier =/=> Bryers, and only it) from
    Table 1's supports, with RI = 0.65 instead of the published 0.7.
    """

    def test_candidate_set(self, figure2_taxonomy, table1_index):
        taxonomy = figure2_taxonomy
        candidates = generate_negative_candidates(
            table1_index, taxonomy, MINSUP, MINRI
        )
        bryers = taxonomy.id_of("Bryers")
        perrier = taxonomy.id_of("Perrier")
        healthy = taxonomy.id_of("Healthy Choice")
        evian = taxonomy.id_of("Evian")
        # {Bryers, Evian} and {Healthy Choice, Evian} are large itemsets
        # (Table 2 actuals exceed MinSup), hence not candidates.
        assert tuple(sorted((bryers, evian))) not in candidates
        assert tuple(sorted((healthy, evian))) not in candidates
        # {Bryers, Perrier}: max over the Case-1 path (2,500) and the
        # Case-3 path from large {Bryers, Evian} (3,750).
        pair = tuple(sorted((bryers, perrier)))
        assert pair in candidates
        assert candidates[pair].expected_support == pytest.approx(0.0375)
        assert candidates[pair].source == tuple(
            sorted((bryers, evian))
        )
        # {Healthy Choice, Perrier}: Case 1 gives 1,250 (< 2,000) but the
        # Case-3 path from large {Healthy Choice, Evian} gives
        # 4,200 * 0.5 = 2,100 >= 2,000 — a candidate, as in Table 2.
        hc_pair = tuple(sorted((healthy, perrier)))
        assert hc_pair in candidates
        assert candidates[hc_pair].expected_support == pytest.approx(
            0.021
        )

    def test_rule_derivation_from_table1(
        self, figure2_taxonomy, table1_index
    ):
        """Counting Table 2's actuals against the formula expectations
        yields exactly the paper's rule: Perrier =/=> Bryers."""
        taxonomy = figure2_taxonomy
        bryers = taxonomy.id_of("Bryers")
        perrier = taxonomy.id_of("Perrier")
        healthy = taxonomy.id_of("Healthy Choice")
        candidates = generate_negative_candidates(
            table1_index, taxonomy, MINSUP, MINRI
        )
        negatives = []
        for names, actual in TABLE2_ACTUAL.items():
            items = tuple(sorted(taxonomy.id_of(name) for name in names))
            if items not in candidates:
                continue
            candidate = candidates[items]
            deviation = (
                candidate.expected_support - actual / TABLE1_TOTAL
            )
            if deviation >= MINSUP * MINRI - 1e-12:
                negatives.append(
                    NegativeItemset(
                        items=items,
                        expected_support=candidate.expected_support,
                        actual_support=actual / TABLE1_TOTAL,
                        source=candidate.source,
                        case=candidate.case,
                    )
                )
        # Only {Bryers, Perrier} deviates enough; {HC, Perrier} actually
        # exceeds its expectation (2,500 > 2,100).
        assert [negative.items for negative in negatives] == [
            tuple(sorted((bryers, perrier)))
        ]
        rules = generate_negative_rules(negatives, table1_index, MINRI)
        assert len(rules) == 1
        rule = rules[0]
        assert rule.antecedent == (perrier,)
        assert rule.consequent == (bryers,)
        assert rule.ri == pytest.approx((0.0375 - 0.005) / 0.05)
        assert healthy not in rule.items


class TestEndToEnd:
    """Level 3: a consistent database mined through the whole pipeline."""

    @pytest.fixture
    def database(self, figure2_taxonomy):
        """A *consistent* rendition of Table 1 over 10,000 transactions.

        Exact group counts (brand supports: B = 2,000, HC = 1,000,
        E = 2,000, P = 800):

        ====================== =====
        {Bryers, Evian}        1,200
        {Bryers, Perrier}         50
        {Bryers}                 750
        {Healthy Choice, Evian}  420
        {HC, Perrier}            250
        {Healthy Choice}         330
        {Evian}                  380
        {Perrier}                500
        {Carbonated} (filler)  6,120
        ====================== =====
        """
        taxonomy = figure2_taxonomy
        bryers = taxonomy.id_of("Bryers")
        healthy = taxonomy.id_of("Healthy Choice")
        evian = taxonomy.id_of("Evian")
        perrier = taxonomy.id_of("Perrier")
        filler = taxonomy.id_of("Carbonated")
        groups = [
            ([bryers, evian], 1200),
            ([bryers, perrier], 50),
            ([bryers], 750),
            ([healthy, evian], 420),
            ([healthy, perrier], 250),
            ([healthy], 330),
            ([evian], 380),
            ([perrier], 500),
            ([filler], 6120),
        ]
        rows = [row for row, count in groups for _ in range(count)]
        return TransactionDatabase(rows)

    def test_fixture_matches_intended_supports(
        self, figure2_taxonomy, database
    ):
        taxonomy = figure2_taxonomy
        counts = database.item_counts()
        assert counts[taxonomy.id_of("Bryers")] == 2000
        assert counts[taxonomy.id_of("Healthy Choice")] == 1000
        assert counts[taxonomy.id_of("Evian")] == 2000
        assert counts[taxonomy.id_of("Perrier")] == 800
        assert len(database) == 10_000

    def test_pipeline_rediscovers_the_rule(
        self, figure2_taxonomy, database
    ):
        taxonomy = figure2_taxonomy
        result = mine_negative_rules(
            database, taxonomy, minsup=0.04, minri=0.5
        )
        perrier = taxonomy.id_of("Perrier")
        bryers = taxonomy.id_of("Bryers")
        pairs = {
            (rule.antecedent, rule.consequent) for rule in result.rules
        }
        # As in the paper: the one and only brand-level rule.
        assert ((perrier,), (bryers,)) in pairs
        assert ((bryers,), (perrier,)) not in pairs
        brand_rules = [
            rule
            for rule in result.rules
            if set(rule.items)
            <= {perrier, bryers, taxonomy.id_of("Evian"),
                taxonomy.id_of("Healthy Choice")}
        ]
        assert len(brand_rules) == 1

    def test_no_rule_against_evian(self, figure2_taxonomy, database):
        """Evian pairs normally with both brands — no negative rule."""
        taxonomy = figure2_taxonomy
        result = mine_negative_rules(
            database, taxonomy, minsup=0.04, minri=0.5
        )
        evian = taxonomy.id_of("Evian")
        for rule in result.rules:
            assert evian not in rule.items
