"""Observability: tracing spans + process-wide metrics (DESIGN.md §8).

Instrument with :func:`span`/:func:`incr`; enable with
:func:`obs_session` (driver) or :func:`worker_collection` (pool
workers); everything is a near-free no-op while disabled.
"""

from .api import (
    METRICS_MODES,
    Observability,
    active_registry,
    configure,
    current,
    detach,
    enabled,
    in_span,
    incr,
    max_gauge,
    merge_registry,
    obs_session,
    observe,
    shutdown,
    span,
    worker_collection,
)
from .registry import DEFAULT_BOUNDS, Histogram, MetricsRegistry
from .sinks import JsonlSink, NullSink, SummarySink
from .span import NULL_SPAN, Span

__all__ = [
    "DEFAULT_BOUNDS",
    "METRICS_MODES",
    "NULL_SPAN",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NullSink",
    "Observability",
    "Span",
    "SummarySink",
    "active_registry",
    "configure",
    "current",
    "detach",
    "enabled",
    "in_span",
    "incr",
    "max_gauge",
    "merge_registry",
    "obs_session",
    "observe",
    "shutdown",
    "span",
    "worker_collection",
]
