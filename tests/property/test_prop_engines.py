"""Property-based tests: every registered engine agrees with brute force.

The registry is the source of truth: the parametrization enumerates
:func:`repro.mining.engines.all_engine_specs` — plain names plus every
``parallel:<inner>`` composition — so a newly registered engine is
covered by these bit-identity checks automatically, with and without a
taxonomy. Parallel compositions run with ``n_jobs=1`` here (the
in-process sharded path); real multiprocess agreement is covered by
``test_prop_parallel.py``. The exception is ``parallel-shm``, which
runs against one persistent module-level two-worker engine: every
example rebinds a different database, so the publish / re-publish /
pool-reconfigure cycle is exercised hundreds of times while the worker
processes themselves live for the whole module.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.session import MiningSession
from repro.itemset import itemset
from repro.mining.engines import all_engine_specs
from repro.taxonomy.builders import taxonomy_from_parents

transactions_strategy = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=25), min_size=1, max_size=8
    ).map(itemset),
    min_size=1,
    max_size=40,
)
candidates_strategy = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=25), min_size=1, max_size=4
    ).map(itemset),
    min_size=1,
    max_size=25,
).map(lambda cands: sorted(set(cands)))

# Leaves 1..12 under categories 100..103 under roots 200..201, with the
# shape drawn randomly per example.
taxonomy_strategy = st.builds(
    lambda mids, tops: taxonomy_from_parents(
        {leaf: mid for leaf, mid in enumerate(mids, start=1)}
        | {100 + index: top for index, top in enumerate(tops)}
    ),
    st.lists(
        st.integers(min_value=100, max_value=103), min_size=12, max_size=12
    ),
    st.lists(
        st.integers(min_value=200, max_value=201), min_size=4, max_size=4
    ),
)
leaf_transactions_strategy = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=12), min_size=1, max_size=5
    ).map(itemset),
    min_size=1,
    max_size=30,
)


_SHM_ENGINE = None


def _shm_engine():
    """One persistent two-worker shm engine shared by every example."""
    global _SHM_ENGINE
    if _SHM_ENGINE is None:
        from repro.mining.engines.parallel import ParallelShmEngine
        from repro.parallel.pool import PoolConfig

        _SHM_ENGINE = ParallelShmEngine(
            n_jobs=2,
            pool_config=PoolConfig(n_jobs=2, retries=1, backoff=0.0),
        )
    return _SHM_ENGINE


@pytest.fixture(scope="module", autouse=True)
def _close_shm_engine():
    """Tear the persistent engine down so its segment and workers do
    not outlive this module (later tests assert no live segments)."""
    yield
    global _SHM_ENGINE
    if _SHM_ENGINE is not None:
        _SHM_ENGINE.close()
        _SHM_ENGINE = None


def session_for(spec, transactions, taxonomy=None):
    """A session over *spec*; parallel specs pinned to one in-process job."""
    if spec == "parallel-shm":
        return MiningSession(transactions, taxonomy, _shm_engine())
    n_jobs = 1 if spec.startswith("parallel") else None
    return MiningSession(transactions, taxonomy, spec, n_jobs=n_jobs)


@pytest.mark.parametrize("spec", all_engine_specs())
@settings(max_examples=25, deadline=None)
@given(transactions_strategy, candidates_strategy)
def test_engine_matches_brute(spec, transactions, candidates):
    expected = MiningSession(transactions, engine="brute").count(candidates)
    assert session_for(spec, transactions).count(candidates) == expected


@pytest.mark.parametrize("spec", all_engine_specs())
@settings(max_examples=15, deadline=None)
@given(leaf_transactions_strategy, taxonomy_strategy, st.data())
def test_engine_matches_brute_generalized(spec, transactions, taxonomy, data):
    nodes = sorted(taxonomy.nodes)
    candidates = data.draw(
        st.lists(
            st.lists(st.sampled_from(nodes), min_size=1, max_size=3).map(
                itemset
            ),
            min_size=1,
            max_size=12,
        ).map(lambda cands: sorted(set(cands)))
    )
    expected = MiningSession(transactions, taxonomy, "brute").count(
        candidates
    )
    counted = session_for(spec, transactions, taxonomy).count(candidates)
    assert counted == expected


@pytest.mark.parametrize("spec", all_engine_specs())
@settings(max_examples=15, deadline=None)
@given(transactions_strategy, candidates_strategy)
def test_restriction_never_changes_counts(spec, transactions, candidates):
    plain = session_for(spec, transactions).count(candidates)
    restricted = session_for(spec, transactions).count(
        candidates, restrict_to_candidate_items=True
    )
    assert restricted == plain
