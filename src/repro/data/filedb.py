"""Disk-backed transaction database with real per-pass IO.

The paper's whole efficiency argument is *passes over the data*: its
database lives on disk, so every extra pass costs real IO. The in-memory
:class:`~repro.data.database.TransactionDatabase` models that with a scan
counter; :class:`FileBackedDatabase` makes it literal — every
:meth:`~FileBackedDatabase.scan` re-reads and re-parses the basket file
from disk, so the Naive algorithm's ``2n`` passes cost visibly more wall
clock than the Improved algorithm's ``n + 1``, reproducing the *reason*
behind Figures 5 and 6 rather than only their shape.

The class is a drop-in for ``TransactionDatabase`` wherever only the
scanning interface is used (all miners); it deliberately does not cache
rows. Summary statistics needed repeatedly (length, item universe) are
computed once at open time.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from pathlib import Path

from ..errors import DatabaseError
from ..itemset import Itemset

PathLike = str | os.PathLike[str]


class FileBackedDatabase:
    """Scan-counted transaction database streaming from a basket file.

    Parameters
    ----------
    path:
        A basket file (see :mod:`repro.data.io`): one transaction of
        whitespace-separated item ids per line, ``#`` comments allowed.

    Notes
    -----
    Construction performs one full read to validate the file and compute
    |D|, the item universe and the average length; this validation read is
    *not* counted as a mining pass (the paper's counts start with the
    algorithm).
    """

    __slots__ = (
        "_path",
        "_scans",
        "_logical_scans",
        "_length",
        "_items",
        "_total_items",
        "_vertical_index",
        "_shard_cache",
    )

    def __init__(self, path: PathLike) -> None:
        self._path = Path(path)
        self._scans = 0
        self._logical_scans = 0
        self._vertical_index = None
        self._shard_cache = None
        length = 0
        total_items = 0
        items: set[int] = set()
        for row in self._read():
            length += 1
            total_items += len(row)
            items.update(row)
        if length == 0:
            raise DatabaseError(f"{self._path}: no transactions found")
        self._length = length
        self._items = frozenset(items)
        self._total_items = total_items

    def _read(self) -> Iterator[Itemset]:
        try:
            handle = open(self._path, encoding="utf-8")
        except OSError as exc:
            raise DatabaseError(
                f"cannot open basket file {self._path}: {exc}"
            ) from exc
        with handle:
            for line_number, line in enumerate(handle, start=1):
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                try:
                    row = tuple(
                        sorted({int(token) for token in stripped.split()})
                    )
                except ValueError as exc:
                    raise DatabaseError(
                        f"{self._path}:{line_number}: malformed basket "
                        f"line {stripped!r}"
                    ) from exc
                if not row:
                    raise DatabaseError(
                        f"{self._path}:{line_number}: empty transaction"
                    )
                yield row

    # ------------------------------------------------------------------
    # TransactionDatabase-compatible interface
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[Itemset]:
        """Stream all transactions from disk, counting one pass.

        Records one logical *and* one physical pass, like
        :meth:`repro.data.database.TransactionDatabase.scan`.
        """
        self._scans += 1
        self._logical_scans += 1
        return self._read()

    def physical_scan(self) -> Iterator[Itemset]:
        """Stream rows counting a *physical* pass only (cache builds)."""
        self._scans += 1
        return self._read()

    def count_logical_pass(self) -> None:
        """Record one *logical* counting pass served without disk IO."""
        self._logical_scans += 1

    def __iter__(self) -> Iterator[Itemset]:
        """Stream without counting (reports/tests only — still does IO)."""
        return self._read()

    def __len__(self) -> int:
        return self._length

    @property
    def scans(self) -> int:
        """Number of *physical* mining passes (disk reads) made so far."""
        return self._scans

    @property
    def logical_scans(self) -> int:
        """Number of *logical* counting passes made so far."""
        return self._logical_scans

    def reset_scans(self) -> None:
        self._scans = 0
        self._logical_scans = 0

    def cache_token(self) -> object:
        """Fingerprint of the on-disk file for cache invalidation.

        Inode, size and nanosecond mtime: any rewrite of the basket file
        changes the token, so a vertical index built against the old
        contents can never serve stale counts — it is rebuilt instead.
        """
        try:
            status = os.stat(self._path)
        except OSError as exc:
            raise DatabaseError(
                f"cannot stat basket file {self._path}: {exc}"
            ) from exc
        return (
            str(self._path), status.st_ino, status.st_size,
            status.st_mtime_ns,
        )

    @property
    def items(self) -> frozenset[int]:
        """The distinct items seen at validation time."""
        return self._items

    def average_length(self) -> float:
        return self._total_items / self._length

    def absolute(self, fraction: float) -> float:
        return fraction * self._length

    def fraction(self, count: int) -> float:
        return count / self._length

    @property
    def path(self) -> Path:
        """Location of the underlying basket file."""
        return self._path

    def __repr__(self) -> str:
        return (
            f"FileBackedDatabase(path={str(self._path)!r}, "
            f"transactions={self._length}, items={len(self._items)})"
        )
