"""Unit tests for the interestingness-measure registry and builtins."""

import pytest

from repro.errors import ConfigError
from repro.measures.registry import (
    DEFAULT_MEASURE,
    InterestMeasure,
    MeasureCapabilities,
    MeasurePolicy,
    create_measure,
    measure_names,
    measure_table,
    register_measure,
    registered_measures,
    validate_spec,
)


class TestRegistry:
    def test_builtins_registered_in_order(self):
        assert measure_names() == ("ri", "kong-interest", "coherent")
        assert DEFAULT_MEASURE == "ri"

    def test_registered_measures_is_a_copy(self):
        measures = registered_measures()
        measures.pop("ri")
        assert "ri" in measure_names()

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_measure("ri")
            class Clash(InterestMeasure):
                pass

    def test_unknown_spec_rejected(self):
        with pytest.raises(ConfigError, match="unknown interest measure"):
            create_measure("chi-squared-ish")
        with pytest.raises(ConfigError, match="must be a string"):
            validate_spec(7)

    def test_validate_spec_normalizes(self):
        assert validate_spec("coherent") == "coherent"
        assert validate_spec(create_measure("ri")) == "ri"

    def test_instance_passes_through(self):
        measure = create_measure("kong-interest")
        assert create_measure(measure) is measure

    def test_figure3_policy_is_ri_only(self):
        policy = MeasurePolicy(figure3_literal=True)
        literal = create_measure("ri", policy)
        assert literal.figure3_literal
        for name in ("kong-interest", "coherent"):
            with pytest.raises(ConfigError, match="does not support"):
                create_measure(name, policy)

    def test_capability_flags(self):
        caps = {
            name: cls.capabilities
            for name, cls in registered_measures().items()
        }
        assert caps["ri"].needs_taxonomy_expectation
        assert caps["ri"].monotone_prune
        assert not caps["kong-interest"].needs_taxonomy_expectation
        assert not caps["kong-interest"].monotone_prune
        assert caps["coherent"].supports_positive
        assert caps["coherent"].bounded_range

    def test_capabilities_describe(self):
        assert "monotone_prune" in MeasureCapabilities().describe()
        empty = MeasureCapabilities(
            needs_taxonomy_expectation=False, monotone_prune=False
        )
        assert empty.describe() == "-"

    def test_measure_table_both_renderings(self):
        text = measure_table()
        markdown = measure_table(markdown=True)
        for name in measure_names():
            assert name in text
            assert f"| {name} |" in markdown
        assert "needs_taxonomy_expectation" in text
        assert markdown.splitlines()[1].startswith("|---")


class TestRIMeasure:
    def test_itemset_predicate_matches_deviation_threshold(self):
        ri = create_measure("ri")
        # deviation 0.035 against MinSup*MinRI = 0.02
        assert ri.admits_itemset(0.04, 0.005, (), 0.04, 0.5)
        assert not ri.admits_itemset(0.04, 0.025, (), 0.04, 0.5)

    def test_figure3_literal_swaps_the_predicate(self):
        literal = create_measure(
            "ri", MeasurePolicy(figure3_literal=True)
        )
        # Figure 3 keeps any candidate whose *actual* support is below
        # the threshold, regardless of the deviation.
        assert literal.admits_itemset(0.021, 0.005, (), 0.04, 0.5)
        assert not literal.admits_itemset(0.9, 0.02, (), 0.04, 0.5)

    def test_rule_score_is_rule_interest(self):
        ri = create_measure("ri")
        score = ri.rule_score(0.04, 0.005, 0.05, 0.3)
        assert score == pytest.approx(0.7)
        assert ri.admits_rule(score, None, 0.5)
        assert not ri.admits_rule(score, None, 0.8)

    def test_spec_and_repr(self):
        ri = create_measure("ri")
        assert ri.spec == "ri"
        assert "ri" in repr(ri)


class TestKongInterestMeasure:
    def test_itemset_predicate_hand_computed(self):
        kong = create_measure("kong-interest")
        # independence = 0.3 * 0.4 = 0.12; 0.12 - 0.02 = 0.10 >= 0.05
        assert kong.admits_itemset(0.5, 0.02, (0.3, 0.4), 0.1, 0.5)
        # 0.12 - 0.08 = 0.04 < 0.05 — not deviant enough
        assert not kong.admits_itemset(0.5, 0.08, (0.3, 0.4), 0.1, 0.5)

    def test_expected_support_is_ignored(self):
        kong = create_measure("kong-interest")
        assert kong.admits_itemset(
            0.0, 0.02, (0.3, 0.4), 0.1, 0.5
        ) == kong.admits_itemset(0.9, 0.02, (0.3, 0.4), 0.1, 0.5)

    def test_rule_score_hand_computed(self):
        kong = create_measure("kong-interest")
        score = kong.rule_score(0.5, 0.02, 0.3, 0.4)
        assert score == pytest.approx(0.10)
        assert kong.admits_rule(score, 0.1, 0.5)
        assert not kong.admits_rule(0.04, 0.1, 0.5)

    def test_rule_threshold_needs_minsup(self):
        kong = create_measure("kong-interest")
        with pytest.raises(ConfigError, match="pass minsup"):
            kong.admits_rule(0.1, None, 0.5)


class TestCoherentMeasure:
    def test_itemset_predicate_is_below_independence(self):
        coherent = create_measure("coherent")
        assert coherent.admits_itemset(0.5, 0.1, (0.6, 0.5), 0.1, 0.5)
        assert not coherent.admits_itemset(
            0.5, 0.4, (0.6, 0.5), 0.1, 0.5
        )

    def test_rule_score_is_worst_quadrant_margin(self):
        coherent = create_measure("coherent")
        # sup(X)=0.6, sup(Y)=0.5, s11=0.15 -> s10=0.45, s01=0.35,
        # s00=0.10; margins 0.30, 0.35, 0.20, 0.25 -> min 0.20.
        score = coherent.rule_score(0.5, 0.15, 0.6, 0.5)
        assert score == pytest.approx(0.20)
        assert coherent.admits_rule(score, None, 0.5)

    def test_sparse_data_is_rejected(self):
        coherent = create_measure("coherent")
        # Typical market-basket margins: s00 dominates, so the rule is
        # not coherent however disjoint the sides are.
        assert coherent.rule_score(0.5, 0.0, 0.3, 0.1) < 0.0
        assert not coherent.admits_rule(-0.1, None, 0.5)


class TestBaseProtocol:
    def test_abstract_methods_raise(self):
        measure = InterestMeasure()
        with pytest.raises(NotImplementedError):
            measure.admits_itemset(0.1, 0.0, (), 0.1, 0.5)
        with pytest.raises(NotImplementedError):
            measure.rule_score(0.1, 0.0, 0.2, 0.2)
        with pytest.raises(NotImplementedError):
            measure.admits_rule(0.1, 0.1, 0.5)
