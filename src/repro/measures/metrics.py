"""Rule quality metrics over fractional supports.

All functions take *fractional* supports (values in ``[0, 1]``): the
support of the antecedent ``X``, the consequent ``Y``, and their union
``X ∪ Y``. They are deliberately independent of the mining machinery so
they can score rules from any source.
"""

from __future__ import annotations

import math

from ..errors import ConfigError


def _check(value: float, name: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must be a fraction in [0, 1], got {value}")
    return value


def _check_rule(sup_x: float, sup_y: float, sup_xy: float) -> None:
    _check(sup_x, "sup_x")
    _check(sup_y, "sup_y")
    _check(sup_xy, "sup_xy")
    if sup_xy > min(sup_x, sup_y) + 1e-12:
        raise ConfigError(
            "support(X ∪ Y) cannot exceed the support of either side "
            f"(got {sup_xy} > min({sup_x}, {sup_y}))"
        )


def _clamp_joint(sup_x: float, sup_y: float, sup_xy: float) -> float:
    """Degenerate-tolerant validation for the sentinel-returning metrics.

    Like :func:`_check_rule`, but an impossible joint support — which
    float division can produce from perfectly consistent counts — is
    clamped to ``min(sup_x, sup_y)`` instead of raising, so a report
    scoring many rules (:mod:`repro.measures.compare`) never aborts on
    one degenerate rule. The fractions themselves are still validated.
    """
    _check(sup_x, "sup_x")
    _check(sup_y, "sup_y")
    _check(sup_xy, "sup_xy")
    return min(sup_xy, sup_x, sup_y)


def confidence(sup_x: float, sup_xy: float) -> float:
    """``P(Y | X)`` — the classic rule confidence."""
    _check(sup_x, "sup_x")
    _check(sup_xy, "sup_xy")
    if sup_x <= 0.0:
        raise ConfigError("confidence undefined for support(X) = 0")
    return sup_xy / sup_x


def negative_confidence(sup_x: float, sup_xy: float) -> float:
    """``P(not Y | X)`` — how often X buyers avoid Y.

    This is the number quoted in negative-rule prose like "60 % of the
    customers who buy potato chips do not buy bottled water".
    """
    return 1.0 - confidence(sup_x, sup_xy)


def lift(sup_x: float, sup_y: float, sup_xy: float) -> float:
    """``P(X ∪ Y) / (P(X) · P(Y))`` — ratio to independence.

    Lift below 1 indicates negative correlation, above 1 positive.
    """
    _check_rule(sup_x, sup_y, sup_xy)
    if sup_x <= 0.0 or sup_y <= 0.0:
        raise ConfigError("lift undefined when either side has support 0")
    return sup_xy / (sup_x * sup_y)


def leverage(sup_x: float, sup_y: float, sup_xy: float) -> float:
    """``P(X ∪ Y) - P(X) · P(Y)`` — Piatetsky-Shapiro's rule-interest.

    The additive counterpart of lift; negative values indicate the items
    co-occur less often than independence predicts.
    """
    _check_rule(sup_x, sup_y, sup_xy)
    return sup_xy - sup_x * sup_y


def conviction(sup_x: float, sup_y: float, sup_xy: float) -> float:
    """``P(X) · P(not Y) / P(X and not Y)``.

    Conviction below 1 marks negative association. Degenerate supports
    get a documented sentinel instead of an error: ``math.inf`` for
    perfect implication (``sup_xy == sup_x`` — X never occurs without
    Y), and a joint support exceeding either side (float noise in
    derived supports) is clamped to the feasible maximum rather than
    rejected. ``support(X) = 0`` still raises — a rule antecedent is
    large by construction, so that is a caller bug.
    """
    sup_xy = _clamp_joint(sup_x, sup_y, sup_xy)
    if sup_x <= 0.0:
        raise ConfigError("conviction undefined for support(X) = 0")
    x_without_y = sup_x - sup_xy
    if x_without_y <= 0.0:
        return math.inf
    return sup_x * (1.0 - sup_y) / x_without_y


def chi_square(
    sup_x: float, sup_y: float, sup_xy: float, transactions: int
) -> float:
    """Chi-square statistic of the 2×2 contingency table of X and Y.

    Parameters
    ----------
    sup_x, sup_y, sup_xy:
        Fractional supports.
    transactions:
        |D|, needed to scale fractions back to counts.

    Returns
    -------
    float
        The statistic (1 degree of freedom). Returns the sentinel
        ``0.0`` for a zero-variance contingency table — either marginal
        degenerate (all or no transactions contain a side), so the
        table has an empty row or column. A joint support exceeding
        either side (float noise in derived supports) is clamped to the
        feasible maximum rather than rejected; ``transactions < 1``
        still raises.
    """
    sup_xy = _clamp_joint(sup_x, sup_y, sup_xy)
    if transactions < 1:
        raise ConfigError("transactions must be >= 1")
    statistic = 0.0
    for x_present in (True, False):
        for y_present in (True, False):
            margin_x = sup_x if x_present else 1.0 - sup_x
            margin_y = sup_y if y_present else 1.0 - sup_y
            expected = margin_x * margin_y * transactions
            if expected <= 0.0:
                return 0.0
            if x_present and y_present:
                observed_fraction = sup_xy
            elif x_present:
                observed_fraction = sup_x - sup_xy
            elif y_present:
                observed_fraction = sup_y - sup_xy
            else:
                observed_fraction = 1.0 - sup_x - sup_y + sup_xy
            observed = observed_fraction * transactions
            statistic += (observed - expected) ** 2 / expected
    return statistic
