"""Unit tests for the bit-packed NumPy counting kernel."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.mining import bitpack
from repro.mining.bitpack import (
    DEFAULT_BATCH_WORDS,
    PackedMatrix,
    count_candidates,
    count_rows,
    pack_bigint,
    popcount,
    unpack_to_bigint,
    words_for,
    zeros,
)
from repro.core.session import MiningSession
from repro.mining.vertical import CacheStats
from repro.taxonomy.builders import taxonomy_from_parents

ROWS = [(1, 2, 3), (1, 3), (2, 4), (1, 2, 4), (3, 4), (1, 2, 3, 4)]
CANDIDATES = [(1,), (2,), (1, 2), (3, 4), (1, 2, 3), (9,)]

# Two-level taxonomy: categories 100..101 over leaves 1..4.
TAXONOMY = taxonomy_from_parents({1: 100, 2: 100, 3: 101, 4: 101})


def brute(rows, candidates, taxonomy=None):
    return MiningSession(list(rows), taxonomy, "brute").count(candidates)


class TestWordHelpers:
    @pytest.mark.parametrize(
        ("n_rows", "expected"),
        [(0, 0), (1, 1), (63, 1), (64, 1), (65, 2), (128, 2), (1000, 16)],
    )
    def test_words_for(self, n_rows, expected):
        assert words_for(n_rows) == expected

    @pytest.mark.parametrize(
        "mask", [0, 1, 0b1011, (1 << 63), (1 << 64) - 1, (1 << 200) | 7]
    )
    def test_pack_unpack_roundtrip(self, mask):
        n_words = max(1, words_for(mask.bit_length()))
        words = pack_bigint(mask, n_words)
        assert words.dtype == np.dtype("<u8")
        assert len(words) == n_words
        assert unpack_to_bigint(words) == mask

    @pytest.mark.parametrize(
        "mask", [0, 1, 0b1011, (1 << 63), (1 << 64) - 1, (1 << 200) | 7]
    )
    def test_popcount_matches_bit_count(self, mask):
        n_words = max(1, words_for(mask.bit_length()))
        assert int(popcount(pack_bigint(mask, n_words))) == mask.bit_count()

    def test_popcount_batched_axis(self):
        masks = [0, 0xFF, (1 << 64) - 1, 0b101]
        words = np.vstack([pack_bigint(mask, 1) for mask in masks])
        assert popcount(words).tolist() == [m.bit_count() for m in masks]

    def test_zeros_is_empty_row(self):
        assert int(popcount(zeros(3))) == 0


class TestCountCandidates:
    def test_empty_candidate_rejected(self):
        matrix = PackedMatrix.from_rows(ROWS)
        with pytest.raises(ConfigError, match="empty candidate"):
            count_candidates(matrix.row, [()], matrix.n_words)

    def test_no_candidates_returns_empty(self):
        assert count_candidates(lambda node: zeros(1), [], 1) == {}

    def test_batch_words_must_be_positive(self):
        matrix = PackedMatrix.from_rows(ROWS)
        with pytest.raises(Exception):
            matrix.count(CANDIDATES, batch_words=0)

    def test_tiny_batches_do_not_change_counts(self):
        """Batching is a memory knob only; a 1-word budget still counts."""
        matrix = PackedMatrix.from_rows(ROWS)
        expected = brute(ROWS, CANDIDATES)
        stats = CacheStats()
        counts = matrix.count(CANDIDATES, batch_words=1, stats=stats)
        assert counts == expected
        # Every (size, candidate) pair becomes its own batch under a
        # one-word budget — strictly more batches than size groups.
        assert stats.kernel_batches == len(CANDIDATES)
        one_shot = CacheStats()
        assert matrix.count(CANDIDATES, stats=one_shot) == expected
        assert one_shot.kernel_batches < stats.kernel_batches

    def test_default_budget_batches_once_per_size(self):
        matrix = PackedMatrix.from_rows(ROWS)
        stats = CacheStats()
        matrix.count(CANDIDATES, stats=stats)
        sizes = {len(candidate) for candidate in CANDIDATES}
        assert stats.kernel_batches == len(sizes)

    def test_stats_optional(self):
        matrix = PackedMatrix.from_rows(ROWS)
        assert matrix.count(CANDIDATES) == brute(ROWS, CANDIDATES)


class TestPackedMatrix:
    @pytest.mark.parametrize("n_rows", [1, 63, 64, 65, 130])
    def test_word_boundary_row_counts(self, n_rows):
        rows = [(1,) if index % 2 else (1, 2) for index in range(n_rows)]
        matrix = PackedMatrix.from_rows(rows)
        assert matrix.n_rows == n_rows
        assert matrix.n_words == words_for(n_rows)
        assert matrix.count([(1,), (2,), (1, 2)]) == brute(
            rows, [(1,), (2,), (1, 2)]
        )

    def test_absent_item_counts_zero(self):
        matrix = PackedMatrix.from_rows(ROWS)
        assert matrix.count([(9,), (1, 9)]) == {(9,): 0, (1, 9): 0}

    def test_wanted_filter_drops_other_items(self):
        matrix = PackedMatrix.from_rows(ROWS, wanted={1, 2})
        assert matrix.count([(1, 2)]) == brute(ROWS, [(1, 2)])
        assert matrix.count([(3,)]) == {(3,): 0}

    def test_generalized_counts_match_brute(self):
        matrix = PackedMatrix.from_rows(ROWS)
        candidates = [(100,), (101,), (100, 101), (1, 101), (100, 3, 4)]
        assert matrix.count(candidates, taxonomy=TAXONOMY) == brute(
            ROWS, candidates, taxonomy=TAXONOMY
        )

    def test_category_rows_memoized(self):
        matrix = PackedMatrix.from_rows(ROWS)
        first = matrix.row(100, taxonomy=TAXONOMY)
        second = matrix.row(100, taxonomy=TAXONOMY)
        assert first is second

    def test_category_of_absent_leaves_is_zero(self):
        taxonomy = taxonomy_from_parents({7: 300, 8: 300})
        matrix = PackedMatrix.from_rows(ROWS, wanted={1})
        assert matrix.count([(300,)], taxonomy=taxonomy) == {(300,): 0}

    def test_repr_mentions_shape(self):
        matrix = PackedMatrix.from_rows(ROWS)
        assert "rows=6" in repr(matrix)


class TestCountRows:
    def test_matches_brute(self):
        assert count_rows(ROWS, CANDIDATES) == brute(ROWS, CANDIDATES)

    def test_empty_candidates(self):
        assert count_rows(ROWS, []) == {}

    def test_generalized_matches_brute(self):
        candidates = [(100,), (1, 101), (100, 101)]
        assert count_rows(ROWS, candidates, taxonomy=TAXONOMY) == brute(
            ROWS, candidates, taxonomy=TAXONOMY
        )

    def test_kernel_batches_recorded_through_engine(self):
        session = MiningSession(
            list(ROWS), engine="numpy", batch_words=1
        )
        assert session.count(CANDIDATES) == brute(ROWS, CANDIDATES)
        assert session.cache_stats.kernel_batches == len(CANDIDATES)

    def test_default_batch_budget_is_bounded(self):
        assert DEFAULT_BATCH_WORDS == 1 << 21
        assert bitpack._POPCOUNT_LUT.sum() == 1024
