"""E10 — Observability overhead: the disabled path must be free.

Every hot counting path funnels through instrumentation points in
:mod:`repro.obs`. When no trace file and no metrics sink are configured
(the default), each point reduces to one module-global ``is None`` test,
so the instrumented pass entry (:func:`repro.mining.engines.count_pass`,
which every :class:`~repro.core.session.MiningSession` pass goes
through) should cost the same as calling the engine's uninstrumented
``count()`` method directly.

Three measurements:

``per-call cost``
    Microbenchmark of one disabled ``obs.span()`` enter/exit and one
    disabled ``obs.incr()``, in nanoseconds. Unlike pass timings these
    are stable to a few percent even on a contended machine.
``noop bound`` (the gate)
    The instrumentation points hit per counting pass, priced at the
    measured per-call cost, as a fraction of the measured pass time.
    This is an upper bound on what the disabled observability layer can
    add, and must stay under ``--limit`` (default 2 %). It comes out
    around 0.001 %: the disabled path is one module-global ``is None``
    test per pass, against milliseconds of counting.
``noop path measured`` (evidence, not gated)
    Identical passes timed through ``count_pass`` (observability
    disabled) and directly through the engine's ``count()`` — median
    within-pair ratio, GC off, alternating order. On a quiet machine
    this lands within fractions of a percent of zero; on a contended
    one it is noise-dominated (±2-3 % either side of zero), which is
    exactly why the gate prices the per-call cost instead of trusting
    this delta.
``enabled path`` (informational)
    The same passes with a live metrics registry, quantifying what
    turning observability *on* costs.

Run::

    python -m benchmarks.bench_obs_overhead
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
import time


def _build_workload(dataset):
    """One realistic taxonomy-mode pass: singles + large pairs."""
    from benchmarks.bench_engine_matrix import _level_candidates

    taxonomy = dataset.taxonomy
    singles, pairs = _level_candidates(dataset, 0.10, taxonomy)
    return taxonomy, [singles, pairs]


def _time_passes(fn, passes, loops: int = 3) -> float:
    """Wall time of running all passes through *fn*, *loops* times.

    One sample is several hundred milliseconds long on purpose: the
    longer each timed region, the less a momentary stall skews the
    within-pair ratio the caller computes.
    """
    start = time.perf_counter()
    for _ in range(loops):
        for candidates in passes:
            fn(candidates)
    return time.perf_counter() - start


def _per_call_ns(repeats: int = 200_000) -> tuple[float, float]:
    """(span_ns, incr_ns) of one disabled instrumentation point."""
    from repro.obs import api as obs

    assert obs.current() is None, "must measure with obs disabled"
    start = time.perf_counter()
    for _ in range(repeats):
        with obs.span("bench.noop"):
            pass
    span_ns = (time.perf_counter() - start) / repeats * 1e9
    start = time.perf_counter()
    for _ in range(repeats):
        obs.incr("bench.noop")
    incr_ns = (time.perf_counter() - start) / repeats * 1e9
    return span_ns, incr_ns


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats",
        type=int,
        default=15,
        help="back-to-back timing pairs; the median within-pair ratio "
             "is the verdict (default %(default)s)",
    )
    parser.add_argument(
        "--limit",
        type=float,
        default=0.02,
        help="maximum tolerated no-op overhead fraction "
             "(default %(default)s = 2%%)",
    )
    parser.add_argument(
        "--no-check",
        action="store_false",
        dest="check",
        help="report only; do not fail on overhead above the limit",
    )
    args = parser.parse_args(argv)

    os.environ.setdefault("REPRO_BENCH_SCALE", "0.1")
    from benchmarks.common import dataset, paper_row
    from repro.mining.engines import count_pass, create_engine
    from repro.obs.api import obs_session

    tall = dataset("tall")
    database = tall.database
    taxonomy, passes = _build_workload(tall)

    engine = create_engine("bitmap")
    state = engine.prepare(database, taxonomy)

    def raw(candidates):
        return engine.count(
            state, candidates, restrict_to_candidate_items=True
        )

    def instrumented(candidates):
        return count_pass(
            engine, state, candidates, restrict_to_candidate_items=True
        )

    # Machine-speed drift (frequency scaling, GC pauses, allocator
    # state) is far larger than a 2 % question, so: garbage collection
    # is off while timing, each pair of variants runs back-to-back in
    # alternating order (cancelling any drift slower than one pair),
    # and the median of the within-pair ratios is the verdict. A warmup
    # pair is discarded.
    _time_passes(raw, passes, loops=1)
    _time_passes(instrumented, passes, loops=1)
    bases, noops, ratios = [], [], []
    gc.disable()
    try:
        for index in range(args.repeats):
            first, second = (
                (raw, instrumented)
                if index % 2 == 0
                else (instrumented, raw)
            )
            one = _time_passes(first, passes)
            two = _time_passes(second, passes)
            if first is raw:
                a, b = one, two
            else:
                a, b = two, one
            bases.append(a)
            noops.append(b)
            ratios.append(b / a)
    finally:
        gc.enable()
    base = min(bases)
    noop = min(noops)
    ratios.sort()
    overhead = ratios[len(ratios) // 2] - 1.0

    with obs_session(metrics="summary", stream=open(os.devnull, "w")):
        enabled = min(
            _time_passes(instrumented, passes) for _ in range(3)
        )
    enabled_overhead = enabled / base - 1.0

    span_ns, incr_ns = _per_call_ns()

    # The gate: price every instrumentation point one timed sample hits
    # (one count_pass wrapper per pass, generously costed at a full
    # disabled span enter/exit plus a disabled incr) against the
    # measured sample time. This bounds the disabled-path overhead
    # without inheriting the pass timings' machine noise.
    points = 3 * len(passes)  # passes per sample (loops=3 in each)
    bound = points * (span_ns + incr_ns) * 1e-9 / base

    paper_row(
        "per-call cost",
        span_ns=round(span_ns, 1),
        incr_ns=round(incr_ns, 1),
    )
    paper_row(
        "noop bound",
        points_per_sample=points,
        overhead_pct=round(bound * 100, 5),
    )
    paper_row(
        "noop path measured",
        raw_count_s=round(base, 5),
        count_pass_s=round(noop, 5),
        median_delta_pct=round(overhead * 100, 2),
    )
    paper_row(
        "enabled path",
        wall_s=round(enabled, 5),
        overhead_pct=round(enabled_overhead * 100, 2),
    )

    if args.check and bound > args.limit:
        print(
            f"FAIL: disabled-observability overhead bound {bound:.4%} "
            f"exceeds the {args.limit:.0%} budget",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: disabled-path bound {bound:.4%} of pass time "
        f"(budget {args.limit:.0%})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
