"""Interestingness measures: the registry plus the classical metrics.

The paper's RI is "only one measure of interestingness" (its own
footnote). This subpackage provides:

* the *measure registry* (:mod:`repro.measures.registry`) — pluggable
  :class:`InterestMeasure` semantics for the negative-mining pipeline:
  the paper's ``"ri"`` (default), the independence-deviation
  ``"kong-interest"`` (arXiv:1806.07084) and the contingency-quadrant
  ``"coherent"`` (arXiv:1308.2310);
* the standard complementary metrics — lift, leverage
  (Piatetsky-Shapiro, paper ref [9]), conviction, and the chi-square
  statistic — so users can cross-score both positive and negative
  rules.

The cross-measure comparison layer lives in
:mod:`repro.measures.compare`; it is *not* imported here because it
depends on :mod:`repro.core` (import it explicitly where needed).
"""

from .information import expected_itemset_support, surprise_bits
from .metrics import (
    chi_square,
    confidence,
    conviction,
    leverage,
    lift,
    negative_confidence,
)
from .registry import (
    DEFAULT_MEASURE,
    InterestMeasure,
    MeasureCapabilities,
    MeasurePolicy,
    create_measure,
    measure_names,
    measure_table,
    register_measure,
    registered_measures,
)
from .scoring import RuleScores, score_negative_rule, score_positive_rule

__all__ = [
    "confidence",
    "lift",
    "leverage",
    "conviction",
    "chi_square",
    "negative_confidence",
    "RuleScores",
    "score_negative_rule",
    "score_positive_rule",
    "surprise_bits",
    "expected_itemset_support",
    "DEFAULT_MEASURE",
    "InterestMeasure",
    "MeasureCapabilities",
    "MeasurePolicy",
    "create_measure",
    "measure_names",
    "measure_table",
    "register_measure",
    "registered_measures",
]
