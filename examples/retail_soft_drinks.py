"""The paper's motivating scenario (Example 1): Ruffles, Coke and Pepsi.

"Suppose we find that when customers buy Ruffles they also usually buy
Coke but not Pepsi. We can then conclude that Ruffles has an interesting
negative association with Pepsi." — Section 1.1.

This example builds a realistic soft-drink / snacks market, shows the
*positive* associations first (the evidence), then mines the negative
rules and cross-scores them with classical measures (lift, leverage,
conviction) from :mod:`repro.measures`.

Run with::

    python examples/retail_soft_drinks.py
"""

import random

from repro import TransactionDatabase, mine_negative_rules
from repro.measures import conviction, leverage, lift
from repro.mining import generate_rules, mine_generalized
from repro.taxonomy import taxonomy_from_nested


def build_market(seed: int = 42) -> TransactionDatabase:
    """5,000 baskets: chips drive colas; Ruffles buyers are Coke loyal."""
    rng = random.Random(seed)
    rows = []
    for _ in range(5000):
        basket = set()
        buys_chips = rng.random() < 0.45
        if buys_chips:
            brand = "Ruffles" if rng.random() < 0.6 else "Lays"
            basket.add(brand)
            if rng.random() < 0.75:  # chips pull a soft drink
                if brand == "Ruffles":
                    # Brand loyalty: Ruffles promo bundles with Coke.
                    basket.add("Coke" if rng.random() < 0.96 else "Pepsi")
                else:
                    basket.add("Coke" if rng.random() < 0.45 else "Pepsi")
        if rng.random() < 0.25:
            basket.add("Evian" if rng.random() < 0.6 else "Perrier")
        if rng.random() < 0.15:
            basket.add("Pepsi")
        if not basket:
            basket.add("Evian")
        rows.append(basket)
    return rows


def main() -> None:
    taxonomy = taxonomy_from_nested(
        {
            "beverages": {
                "soft drinks": ["Coke", "Pepsi"],
                "bottled water": ["Evian", "Perrier"],
            },
            "snacks": {"chips": ["Ruffles", "Lays"]},
        }
    )
    raw_rows = build_market()
    rows = [
        [taxonomy.id_of(name) for name in basket] for basket in raw_rows
    ]
    database = TransactionDatabase(rows)

    print("=== positive associations (the evidence) ===")
    index = mine_generalized(database, taxonomy, minsup=0.05)
    for rule in generate_rules(index, minconf=0.6)[:8]:
        print("  " + rule.format(taxonomy.name_of))

    print()
    print("=== strong negative associations ===")
    result = mine_negative_rules(database, taxonomy, minsup=0.05, minri=0.4)
    total = len(database)
    for rule in result.rules[:8]:
        rule_lift = lift(
            rule.antecedent_support,
            rule.consequent_support,
            rule.actual_support,
        )
        rule_leverage = leverage(
            rule.antecedent_support,
            rule.consequent_support,
            rule.actual_support,
        )
        rule_conviction = conviction(
            rule.antecedent_support,
            rule.consequent_support,
            rule.actual_support,
        )
        print("  " + rule.format(taxonomy))
        print(
            f"      lift={rule_lift:.3f}  leverage={rule_leverage:+.4f}  "
            f"conviction={rule_conviction:.3f}  |D|={total}"
        )

    print()
    pepsi = taxonomy.id_of("Pepsi")
    ruffles = taxonomy.id_of("Ruffles")
    hit = any(
        rule.antecedent == (pepsi,) and rule.consequent == (ruffles,)
        for rule in result.rules
    )
    print(
        "paper's motivating rule {Pepsi} =/=> {Ruffles} found:",
        "yes" if hit else "no",
    )


if __name__ == "__main__":
    main()
