"""CI benchmark-regression gate: engines, serving, parallel scaling.

Re-runs the quick engine matrix (``bench_engine_matrix --quick``) and
compares each engine's mean wall-clock per logical pass against the
committed baseline in ``BENCH_counting.json`` (the
``["quick"]["engine_matrix"]`` key, written by a ``--quick`` run on the
maintainer's machine). It then does the same for the serving layer
(``bench_serving --quick``): the cold and hot-LRU scoring paths are
compared through their ``wall_per_10k_s`` figures (per-request latency
times 10,000 — scaled so both sit above the measurement floor) under
the ``["quick"]["serving"]`` key. Finally the parallel-scaling profile
(``bench_parallel_scaling --quick``) is gated the same way: each
variant's steady-state per-pass wall (serial numpy, process-per-task
``parallel:numpy``, shared-memory ``parallel-shm`` at several job
counts) under ``["quick"]["parallel_scaling"]``. The
incremental-maintenance profile (``bench_incremental --quick``) gates
the append-then-recount walls of the ``mmap`` and ``cached`` engines —
incremental and full-invalidation modes — under
``["quick"]["incremental"]``. The streaming profile
(``bench_streaming --quick``) gates the per-update walls of the
delta-push and recompile-from-scratch serving-update paths for both
engines under ``["quick"]["streaming"]``. Finally the cross-measure
profile (``bench_measures --quick``) gates each registered
interestingness measure's mean re-judgment wall over the grocery
scenarios under ``["quick"]["measures"]``.

Raw wall-clock is useless across machines, so both sides are normalized
by their own geometric mean across the engines before comparing: a CI
runner that is uniformly 3x slower than the baseline machine produces
identical normalized profiles, while a single engine regressing 2x moves
its normalized ratio to roughly ``2 / 2**(1/n)`` (~1.81 for the
seven-engine matrix) — far above the default 25 % gate. Two noise
guards: each side is the element-wise minimum over ``--repeats`` runs,
and per-pass times below :data:`MEASUREMENT_FLOOR_S` are clamped to it
(sub-5 ms cells jitter more between identical runs than the gate
allows).

Exits non-zero when any engine's normalized per-pass time — or either
serving mode's normalized per-10k-request time — exceeds ``threshold``
times its baseline share. ``--inject KEY`` doubles that engine's (or
serving mode's — ``cold``/``hot``) measured time after the run,
demonstrating that the gate trips.

Run::

    python -m benchmarks.check_regression
    python -m benchmarks.check_regression --inject numpy  # must fail
    python -m benchmarks.check_regression --inject hot    # must fail
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import tempfile
from pathlib import Path

#: Multiplicative slack on the normalized per-pass ratio before the gate
#: fails. 1.25 = "a quarter slower than the committed profile".
DEFAULT_THRESHOLD = 1.25

#: Per-pass times below this are clamped before comparing: on a shared
#: CI runner a 2 ms pass jitters by 30-50 % between identical runs, so
#: differences below the floor are timer noise, not regressions. An
#: engine regressing from under the floor to real time (e.g. 2 ms ->
#: 7 ms) still rises above it and trips the gate.
MEASUREMENT_FLOOR_S = 0.005


def geometric_mean(values: list[float]) -> float:
    """The geometric mean; the scale factor normalization divides out."""
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(per_pass: dict[str, float], engines: list[str]) -> dict:
    """Per-engine share of the matrix: time / geomean over *engines*."""
    mean = geometric_mean([per_pass[engine] for engine in engines])
    return {engine: per_pass[engine] / mean for engine in engines}


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    threshold: float,
) -> tuple[list[dict], list[str]]:
    """Compare normalized profiles; returns (rows, failed engine names)."""
    engines = sorted(set(baseline) & set(current))
    if not engines:
        raise SystemExit("no engines shared between baseline and run")
    baseline = {
        e: max(baseline[e], MEASUREMENT_FLOOR_S) for e in engines
    }
    current = {
        e: max(current[e], MEASUREMENT_FLOOR_S) for e in engines
    }
    base_norm = normalize(baseline, engines)
    cur_norm = normalize(current, engines)
    rows, failed = [], []
    for engine in engines:
        ratio = cur_norm[engine] / base_norm[engine]
        verdict = "ok" if ratio <= threshold else "REGRESSED"
        if ratio > threshold:
            failed.append(engine)
        rows.append({
            "engine": engine,
            "baseline_per_pass_s": baseline[engine],
            "current_per_pass_s": current[engine],
            "normalized_ratio": round(ratio, 3),
            "verdict": verdict,
        })
    return rows, failed


def _run_quick_matrix(out: Path, trace: str | None, repeats: int) -> dict:
    """Run the quick engine matrix *repeats* times; keep per-engine minima.

    Wall-clock noise is one-sided (a run can only be slowed down, never
    sped up), so the element-wise minimum over repeats converges on the
    true per-engine speed. The committed baseline is reduced the same
    way (``--update-baseline``), keeping the comparison symmetric.
    """
    from benchmarks import bench_engine_matrix
    from repro.obs.api import obs_session

    argv = ["--quick", "--no-check", "--out", str(out)]
    report: dict = {}
    best: dict[str, float] = {}
    with obs_session(trace_path=trace):
        for attempt in range(repeats):
            code = bench_engine_matrix.main(argv)
            if code != 0:
                raise SystemExit(
                    f"engine matrix run failed with exit code {code}"
                )
            report = json.loads(out.read_text())["quick"]["engine_matrix"]
            for engine, value in report["mean_wall_per_pass_s"].items():
                best[engine] = min(best.get(engine, value), value)
            print(f"[repeat {attempt + 1}/{repeats}] done")
    report["mean_wall_per_pass_s"] = best
    report["repeats"] = repeats
    return report


def _run_quick_serving(out: Path, repeats: int) -> dict:
    """Run the quick serving benchmark *repeats* times; keep minima.

    The element-wise minimum over repeats is taken per serving mode
    (``cold``/``hot``), mirroring :func:`_run_quick_matrix`.
    """
    from benchmarks import bench_serving

    argv = ["--quick", "--no-check", "--out", str(out)]
    report: dict = {}
    best: dict[str, float] = {}
    for attempt in range(repeats):
        code = bench_serving.main(argv)
        if code != 0:
            raise SystemExit(
                f"serving benchmark run failed with exit code {code}"
            )
        report = json.loads(out.read_text())["quick"]["serving"]
        for mode, value in report["wall_per_10k_s"].items():
            best[mode] = min(best.get(mode, value), value)
        print(f"[serving repeat {attempt + 1}/{repeats}] done")
    report["wall_per_10k_s"] = best
    report["repeats"] = repeats
    return report


def _run_quick_parallel(out: Path, repeats: int) -> dict:
    """Run the quick parallel-scaling benchmark; keep per-variant minima.

    The element-wise minimum over repeats is taken per variant label
    (``parallel-shm@2``, ``parallel:numpy@4``, …), mirroring
    :func:`_run_quick_matrix`.
    """
    from benchmarks import bench_parallel_scaling

    argv = ["--quick", "--no-check", "--out", str(out)]
    report: dict = {}
    best: dict[str, float] = {}
    for attempt in range(repeats):
        code = bench_parallel_scaling.main(argv)
        if code != 0:
            raise SystemExit(
                f"parallel scaling run failed with exit code {code}"
            )
        report = json.loads(out.read_text())["quick"]["parallel_scaling"]
        for variant, value in report["steady_wall_per_pass_s"].items():
            best[variant] = min(best.get(variant, value), value)
        print(f"[parallel repeat {attempt + 1}/{repeats}] done")
    report["steady_wall_per_pass_s"] = best
    report["repeats"] = repeats
    return report


def _run_quick_incremental(out: Path, repeats: int) -> dict:
    """Run the quick incremental benchmark; keep per-mode minima.

    The element-wise minimum over repeats is taken per maintenance mode
    (``mmap-incremental``, ``cached-full``, …), mirroring
    :func:`_run_quick_matrix`.
    """
    from benchmarks import bench_incremental

    argv = ["--quick", "--no-check", "--out", str(out)]
    report: dict = {}
    best: dict[str, float] = {}
    for attempt in range(repeats):
        code = bench_incremental.main(argv)
        if code != 0:
            raise SystemExit(
                f"incremental benchmark run failed with exit code {code}"
            )
        report = json.loads(out.read_text())["quick"]["incremental"]
        for mode, value in report["wall_recount_s"].items():
            best[mode] = min(best.get(mode, value), value)
        print(f"[incremental repeat {attempt + 1}/{repeats}] done")
    report["wall_recount_s"] = best
    report["repeats"] = repeats
    return report


def _run_quick_streaming(out: Path, repeats: int) -> dict:
    """Run the quick streaming benchmark; keep per-mode minima.

    The element-wise minimum over repeats is taken per update mode
    (``cached-delta-push``, ``mmap-recompile``, …), mirroring
    :func:`_run_quick_matrix`.
    """
    from benchmarks import bench_streaming

    argv = ["--quick", "--no-check", "--out", str(out)]
    report: dict = {}
    best: dict[str, float] = {}
    for attempt in range(repeats):
        code = bench_streaming.main(argv)
        if code != 0:
            raise SystemExit(
                f"streaming benchmark run failed with exit code {code}"
            )
        report = json.loads(out.read_text())["quick"]["streaming"]
        for mode, value in report["wall_update_s"].items():
            best[mode] = min(best.get(mode, value), value)
        print(f"[streaming repeat {attempt + 1}/{repeats}] done")
    report["wall_update_s"] = best
    report["repeats"] = repeats
    return report


def _run_quick_measures(out: Path, repeats: int) -> dict:
    """Run the quick cross-measure benchmark; keep per-measure minima.

    The element-wise minimum over repeats is taken per measure name
    (``ri``, ``kong-interest``, …), mirroring
    :func:`_run_quick_matrix`.
    """
    from benchmarks import bench_measures

    argv = ["--quick", "--no-check", "--out", str(out)]
    report: dict = {}
    best: dict[str, float] = {}
    for attempt in range(repeats):
        code = bench_measures.main(argv)
        if code != 0:
            raise SystemExit(
                f"measures benchmark run failed with exit code {code}"
            )
        report = json.loads(out.read_text())["quick"]["measures"]
        for measure, value in report["wall_per_eval_s"].items():
            best[measure] = min(best.get(measure, value), value)
        print(f"[measures repeat {attempt + 1}/{repeats}] done")
    report["wall_per_eval_s"] = best
    report["repeats"] = repeats
    return report


def _write_step_summary(baseline: Path, failed: list[str]) -> None:
    """Append re-baselining instructions to the GitHub job summary.

    Only active under Actions (``GITHUB_STEP_SUMMARY`` set); a failed
    gate otherwise explains itself on stderr.
    """
    import os

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary:
        return
    names = ", ".join(f"`{name}`" for name in failed)
    with open(summary, "a", encoding="utf-8") as handle:
        handle.write(
            "## Benchmark regression gate failed\n\n"
            f"Regressed beyond the committed profile: {names}.\n\n"
            "If the slowdown is intended (algorithm change, new "
            "measurement), re-baseline and commit the result:\n\n"
            "```sh\n"
            "python -m benchmarks.check_regression --update-baseline\n"
            f"git add {baseline.name}\n"
            "```\n\n"
            "Otherwise, find the regression — the per-mode ratios are "
            "in the job log above.\n"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_counting.json",
        help="committed benchmark report holding the quick baseline",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="maximum allowed normalized slowdown per engine "
             "(default %(default)s = +25%%)",
    )
    parser.add_argument(
        "--inject",
        metavar="KEY",
        default=None,
        help="double this engine's or serving mode's (cold/hot) "
             "measured time after the run (self-test: the gate must "
             "fail)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a JSON-lines observability trace of the "
             "benchmark run to FILE (uploaded as a CI artifact)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="quick-matrix repetitions; per-engine minima are compared "
             "(default %(default)s)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the reduced run into the baseline file instead of "
             "comparing (maintainer re-baselining)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        current = _run_quick_matrix(
            Path(tmp) / "current.json", args.trace, args.repeats
        )
        serving = _run_quick_serving(
            Path(tmp) / "serving.json", args.repeats
        )
        parallel = _run_quick_parallel(
            Path(tmp) / "parallel.json", args.repeats
        )
        incremental = _run_quick_incremental(
            Path(tmp) / "incremental.json", args.repeats
        )
        streaming = _run_quick_streaming(
            Path(tmp) / "streaming.json", args.repeats
        )
        measures = _run_quick_measures(
            Path(tmp) / "measures.json", args.repeats
        )

    if args.update_baseline:
        from benchmarks.common import fold_report

        fold_report(args.baseline, "engine_matrix", current, quick=True)
        fold_report(args.baseline, "serving", serving, quick=True)
        fold_report(
            args.baseline, "parallel_scaling", parallel, quick=True
        )
        fold_report(args.baseline, "incremental", incremental, quick=True)
        fold_report(args.baseline, "streaming", streaming, quick=True)
        fold_report(args.baseline, "measures", measures, quick=True)
        print(
            f"re-baselined quick engine_matrix, serving, "
            f"parallel_scaling, incremental, streaming and measures "
            f"in {args.baseline}"
        )
        return 0

    baseline_doc = json.loads(args.baseline.read_text())
    failed: list[str] = []
    gates = (
        ("engine_matrix", "mean_wall_per_pass_s", current),
        ("serving", "wall_per_10k_s", serving),
        ("parallel_scaling", "steady_wall_per_pass_s", parallel),
        ("incremental", "wall_recount_s", incremental),
        ("streaming", "wall_update_s", streaming),
        ("measures", "wall_per_eval_s", measures),
    )
    for key, field, run in gates:
        try:
            baseline = baseline_doc["quick"][key]
        except KeyError:
            raise SystemExit(
                f"{args.baseline} has no ['quick']['{key}'] baseline; "
                "run 'python -m benchmarks.check_regression "
                "--update-baseline' and commit the result"
            ) from None

        if run["scale"] != baseline["scale"]:
            raise SystemExit(
                f"{key} scale mismatch: run at {run['scale']} vs "
                f"baseline {baseline['scale']} — is REPRO_BENCH_SCALE "
                "set?"
            )

        measured = dict(run[field])
        if args.inject and args.inject in measured:
            measured[args.inject] *= 2.0
            print(
                f"[inject] doubled {args.inject} to "
                f"{measured[args.inject]}"
            )

        rows, bad = compare(baseline[field], measured, args.threshold)
        failed.extend(f"{key}:{name}" for name in bad)
        width = max(len(row["engine"]) for row in rows)
        for row in rows:
            print(
                f"{key} {row['engine']:<{width}}  "
                f"base={row['baseline_per_pass_s']:.5f}s  "
                f"now={row['current_per_pass_s']:.5f}s  "
                f"ratio={row['normalized_ratio']:.3f}  {row['verdict']}"
            )

    if args.inject and not any(
        args.inject in run[field] for _, field, run in gates
    ):
        raise SystemExit(f"unknown engine or mode {args.inject!r}")
    if failed:
        print(
            f"FAIL: regressed beyond {args.threshold}x the baseline "
            f"profile: {', '.join(failed)}",
            file=sys.stderr,
        )
        _write_step_summary(args.baseline, failed)
        return 1
    print(
        f"ok: no engine or serving mode beyond {args.threshold}x the "
        "baseline profile"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
