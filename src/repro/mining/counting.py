"""Pluggable support-counting engines.

Counting the support of a candidate set against the database is the inner
loop of every miner here (positive and negative). The engines listed in
:data:`ENGINES` are provided — however many that tuple holds at any point,
all of them return identical counts (property-tested):

* ``"bitmap"`` (default) — vertical counting: one pass builds a per-item
  transaction bitset (a Python ``int``), and each candidate's count is the
  popcount of the AND of its items' bitsets. By far the fastest of the
  pure-Python engines; the 1998 paper predates the vertical-layout
  literature, so this engine is an engineering substitution (documented in
  DESIGN.md) — the paper-faithful hash tree remains available and
  equivalent.
* ``"numpy"`` — the bitmap layout packed into ``uint64`` word arrays and
  counted in vectorized batches (``np.bitwise_and.reduce`` + popcount;
  see :mod:`repro.mining.bitpack` and DESIGN.md §7; the README's
  counting-performance table has measured numbers). Taxonomy candidates
  are
  matched by descendant-OR instead of per-row ancestor extension (so,
  like ``"cached"``, it ignores ``restrict_to_candidate_items`` and
  tolerates transaction items unknown to the taxonomy). The fastest
  serial engine per pass; still rebuilds its packed matrix every pass.
* ``"hashtree"`` — the classic Apriori hash tree of Section 2.4 (see
  :mod:`repro.mining.hash_tree`). Candidates are grouped by size and one
  tree is built per size.
* ``"index"`` — candidates bucketed by their smallest item; for each
  transaction only buckets of present items are probed. Simple and fast for
  small candidate sets.
* ``"brute"`` — test every candidate against every transaction. The oracle
  the others are verified against.
* ``"cached"`` — vertical counting with the rebuild amortized away: one
  physical scan materializes a persistent :class:`~repro.mining.vertical.
  VerticalIndex` attached to the database, and every later pass (any
  Apriori level, the Improved miner's negative-candidate count, EstMerge
  sample estimates) intersects cached bitmaps instead of re-reading rows.
  Generalized counting ORs descendant bitmaps lazily, so no per-row
  ``ancestor_closure`` extension happens at all. With ``packed=True`` the
  index stores NumPy word arrays and counts with the same vectorized
  kernel as ``"numpy"``. See :mod:`repro.mining.vertical`.
* ``"parallel"`` — shard the pass into contiguous row ranges, count each
  shard with a serial engine in a worker process and sum the partial
  counts (see :mod:`repro.parallel`). Selected either explicitly or by
  passing ``n_jobs > 1`` with any serial engine (including ``"numpy"``
  as the per-shard kernel, and packed shard-local indexes under
  ``"cached"`` + ``packed=True``).

Candidates must be non-empty itemsets: an empty candidate has no
well-defined first item for the bucketed engines and its support (every
transaction) is never meaningful to a miner, so every engine rejects it
with :class:`~repro.errors.ConfigError` rather than answering
inconsistently.

The free function :func:`count_supports` adds the generalized-mining twist:
when a taxonomy is supplied, each transaction is extended with item
ancestors before matching, optionally filtered to the ancestors that can
actually occur in a candidate (the *Cumulate* optimization).

*transactions* may be either the rows of one pass (``database.scan()``)
or the scan-counted database itself. Passing the database is required for
the ``"cached"`` engine (the cache is keyed by a database fingerprint)
and equivalent for every other engine — ``count_supports`` simply calls
``scan()`` itself, preserving pass accounting.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Collection, Iterable, Iterator

from ..errors import ConfigError
from ..itemset import Itemset
from ..obs import api as obs
from ..taxonomy.tree import Taxonomy
from . import bitpack, vertical
from .hash_tree import HashTree

ENGINES = (
    "bitmap", "cached", "numpy", "hashtree", "index", "brute", "parallel"
)

#: The engines that count rows in-process; ``"parallel"`` delegates each
#: shard to one of these.
SERIAL_ENGINES = ("bitmap", "cached", "numpy", "hashtree", "index", "brute")

DEFAULT_ENGINE = "bitmap"


def _count_bitmap(
    transactions: Iterable[Itemset], candidates: Collection[Itemset]
) -> dict[Itemset, int]:
    """Vertical counting with per-item transaction bitsets.

    Builds ``mask[item]`` — an arbitrary-precision integer whose bit ``t``
    is set when transaction ``t`` contains the item — restricted to items
    that occur in some candidate, then intersects masks per candidate and
    popcounts.
    """
    if not candidates:
        return {}
    wanted = set()
    for candidate in candidates:
        wanted.update(candidate)
    masks: dict[int, int] = {}
    get_mask = masks.get
    for position, row in enumerate(transactions):
        bit = 1 << position
        for item in row:
            if item in wanted:
                masks[item] = get_mask(item, 0) | bit
    counts: dict[Itemset, int] = {}
    for candidate in candidates:
        # Micro-fast path: a candidate whose items never occurred in this
        # pass needs no mask intersection (and no popcount) at all.
        mask = get_mask(candidate[0])
        if mask is None:
            counts[candidate] = 0
            continue
        for item in candidate[1:]:
            other = get_mask(item)
            if other is None:
                mask = 0
                break
            mask &= other
            if not mask:
                break
        counts[candidate] = mask.bit_count()
    return counts


def _count_brute(
    transactions: Iterable[Itemset], candidates: Collection[Itemset]
) -> dict[Itemset, int]:
    if not candidates:
        return {}
    counts = dict.fromkeys(candidates, 0)
    candidate_list = list(counts)
    for row in transactions:
        row_set = set(row)
        for candidate in candidate_list:
            if all(item in row_set for item in candidate):
                counts[candidate] += 1
    return counts


def _count_index(
    transactions: Iterable[Itemset], candidates: Collection[Itemset]
) -> dict[Itemset, int]:
    if not candidates:
        return {}
    counts = dict.fromkeys(candidates, 0)
    by_first: dict[int, list[Itemset]] = defaultdict(list)
    for candidate in counts:
        by_first[candidate[0]].append(candidate)
    for row in transactions:
        row_set = set(row)
        for item in row:
            for candidate in by_first.get(item, ()):
                if all(member in row_set for member in candidate[1:]):
                    counts[candidate] += 1
    return counts


def _count_hashtree(
    transactions: Iterable[Itemset], candidates: Collection[Itemset]
) -> dict[Itemset, int]:
    if not candidates:
        return {}
    by_size: dict[int, list[Itemset]] = defaultdict(list)
    for candidate in candidates:
        by_size[len(candidate)].append(candidate)
    trees = {
        size: HashTree(members) for size, members in by_size.items()
    }
    for row in transactions:
        for tree in trees.values():
            tree.add_transaction(row)
    counts: dict[Itemset, int] = {}
    for tree in trees.values():
        counts.update(tree.counts())
    return counts


_ENGINE_FUNCS = {
    "bitmap": _count_bitmap,
    "brute": _count_brute,
    "index": _count_index,
    "hashtree": _count_hashtree,
}


def _extended(
    transactions: Iterable[Itemset],
    taxonomy: Taxonomy,
    keep: frozenset[int] | None,
) -> Iterator[Itemset]:
    """Yield transactions extended with ancestors (optionally filtered).

    *keep*, when given, restricts the extended transaction to items that can
    appear in some candidate — Cumulate's "filter the ancestors" and "drop
    useless items" optimizations rolled into one.
    """
    for row in transactions:
        extended = taxonomy.ancestor_closure(row)
        if keep is not None:
            extended = extended & keep
        yield tuple(sorted(extended))


def count_supports(
    transactions,
    candidates: Collection[Itemset],
    taxonomy: Taxonomy | None = None,
    engine: str = DEFAULT_ENGINE,
    restrict_to_candidate_items: bool = False,
    n_jobs: int | None = None,
    shard_rows: int | None = None,
    parallel_stats=None,
    use_cache: bool = True,
    cache_bytes: int | None = None,
    cache_stats=None,
    packed: bool = False,
    batch_words: int | None = None,
) -> dict[Itemset, int]:
    """Count how many transactions contain each candidate.

    Parameters
    ----------
    transactions:
        The rows of one database pass (e.g. ``database.scan()``), or the
        scan-counted database itself. Passing the database lets the
        ``"cached"`` engine serve the pass from its vertical index
        (recording a logical pass without a physical read); every other
        engine simply calls ``scan()`` on it, which is equivalent to
        passing ``database.scan()``.
    candidates:
        Canonical non-empty itemsets to count; mixed sizes are allowed.
        An empty *collection* short-circuits to ``{}`` without touching
        *transactions* (no mask/tree setup, no row consumption, no pass
        recorded); an empty *candidate* inside the collection raises
        :class:`~repro.errors.ConfigError` (see module docstring).
    taxonomy:
        When given, rows are extended with ancestors first so that
        category-level candidates are counted generalized (the cached
        engine instead ORs descendant bitmaps — identical counts).
    engine:
        One of :data:`ENGINES`.
    restrict_to_candidate_items:
        With a taxonomy: intersect each extended row with the set of items
        occurring in any candidate (Cumulate optimization; changes no
        counts, only speed). The cached and numpy engines ignore it: they
        never materialize extended rows in the first place.
    n_jobs:
        Worker processes for sharded counting. ``None`` keeps the serial
        path (except under ``engine="parallel"``, where it means one
        worker per CPU); any value above 1 routes the pass through
        :func:`repro.parallel.engine.parallel_count_supports` with this
        *engine* as the per-shard engine.
    shard_rows:
        Target rows per shard for the parallel path.
    parallel_stats:
        Optional :class:`repro.parallel.engine.ParallelStats` accumulator
        recording shard/worker/retry counts.
    use_cache:
        Cached engine only: reuse the index attached to the database.
        ``False`` rebuilds every pass (the rebuild-per-pass baseline).
    cache_bytes:
        Cached engine only: LRU memory budget for the vertical index.
    cache_stats:
        Optional :class:`repro.mining.vertical.CacheStats` accumulator
        (also records ``kernel_batches`` for the numpy/packed kernels).
    packed:
        Cached engine only: store the vertical index as bit-packed NumPy
        word arrays and count with the vectorized kernel of
        :mod:`repro.mining.bitpack` instead of big-int bitmaps. Counts
        are identical; only speed and memory layout change.
    batch_words:
        Numpy/packed kernels only: memory budget, in 64-bit words, for
        one gathered candidate batch (default
        :data:`repro.mining.bitpack.DEFAULT_BATCH_WORDS`).

    Returns
    -------
    dict
        Absolute count per candidate. Every candidate appears as a key,
        with 0 when unsupported.
    """
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown counting engine {engine!r}; choose from {ENGINES}"
        )
    if not candidates:
        return {}
    for candidate in candidates:
        if not candidate:
            raise ConfigError(
                "cannot count an empty candidate itemset; candidates "
                "must contain at least one item"
            )
    state = obs.current()
    if state is None:
        # Observability off: straight to the engines, zero added work.
        return _dispatch(
            transactions,
            candidates,
            taxonomy,
            engine,
            restrict_to_candidate_items,
            n_jobs,
            shard_rows,
            parallel_stats,
            use_cache,
            cache_bytes,
            cache_stats,
            packed,
            batch_words,
        )
    prefix = "" if state.scope == "driver" else state.scope + "."
    try:
        n_rows = len(transactions)
    except TypeError:
        n_rows = None
    # Top-level counts only: the parallel engine's serial-fallback path
    # re-enters count_supports for the same logical pass, and counting it
    # twice would break parallel == serial metric totals.
    if not state.in_span("count."):
        registry = state.registry
        registry.incr(prefix + "counting.passes")
        registry.incr(prefix + "counting.candidates", len(candidates))
        if n_rows is not None:
            registry.incr(prefix + "counting.rows", n_rows)
    if cache_stats is None and (engine in ("cached", "numpy") or packed):
        cache_stats = vertical.CacheStats(
            registry=state.registry, prefix=prefix
        )
    if parallel_stats is None and (
        engine == "parallel" or (n_jobs is not None and n_jobs > 1)
    ):
        from ..parallel.engine import ParallelStats

        parallel_stats = ParallelStats(
            registry=state.registry, prefix=prefix
        )
    with obs.span("count." + engine) as span:
        span.annotate("candidates", len(candidates))
        if n_rows is not None:
            span.annotate("rows", n_rows)
        return _dispatch(
            transactions,
            candidates,
            taxonomy,
            engine,
            restrict_to_candidate_items,
            n_jobs,
            shard_rows,
            parallel_stats,
            use_cache,
            cache_bytes,
            cache_stats,
            packed,
            batch_words,
        )


def _dispatch(
    transactions,
    candidates: Collection[Itemset],
    taxonomy: Taxonomy | None,
    engine: str,
    restrict_to_candidate_items: bool,
    n_jobs: int | None,
    shard_rows: int | None,
    parallel_stats,
    use_cache: bool,
    cache_bytes: int | None,
    cache_stats,
    packed: bool,
    batch_words: int | None,
) -> dict[Itemset, int]:
    """Route one validated counting pass to its engine."""
    if engine == "parallel" or (n_jobs is not None and n_jobs > 1):
        # Imported lazily: repro.parallel.engine imports this module.
        from ..parallel.engine import parallel_count_supports

        return parallel_count_supports(
            transactions,
            candidates,
            taxonomy=taxonomy,
            base_engine=engine,
            restrict_to_candidate_items=restrict_to_candidate_items,
            n_jobs=n_jobs,
            shard_rows=shard_rows,
            stats=parallel_stats,
            use_cache=use_cache,
            cache_stats=cache_stats,
            packed=packed,
            batch_words=batch_words,
        )
    if engine == "cached":
        return vertical.count_with_index(
            transactions,
            candidates,
            taxonomy=taxonomy,
            budget_bytes=cache_bytes,
            use_cache=use_cache,
            stats=cache_stats,
            packed=packed,
            batch_words=batch_words,
        )
    if engine == "numpy":
        numpy_rows: Iterable[Itemset] = (
            transactions.scan()
            if hasattr(transactions, "scan")
            else transactions
        )
        return bitpack.count_rows(
            numpy_rows,
            candidates,
            taxonomy=taxonomy,
            batch_words=batch_words,
            stats=cache_stats,
        )
    rows: Iterable[Itemset] = (
        transactions.scan() if hasattr(transactions, "scan") else transactions
    )
    if taxonomy is not None:
        keep: frozenset[int] | None = None
        if restrict_to_candidate_items:
            keep = frozenset(
                item for candidate in candidates for item in candidate
            )
        rows = _extended(rows, taxonomy, keep)
    return _ENGINE_FUNCS[engine](rows, candidates)
