"""Canonical itemset representation and basic lattice operations.

Throughout the library an *item* is an ``int`` identifier (taxonomy nodes and
transaction items share one id space) and an *itemset* is a sorted tuple of
distinct item ids. The sorted-tuple canonical form makes itemsets hashable,
cheap to compare, and directly usable as dictionary keys for support tables —
the "hash table of large itemsets" of Section 2.4 of the paper is a plain
``dict`` keyed on these tuples.

The helpers here are deliberately small and allocation-conscious: they sit on
the hot path of candidate generation and support counting.
"""

from __future__ import annotations

from collections.abc import Iterable
from itertools import combinations

Item = int
Itemset = tuple[int, ...]


def itemset(items: Iterable[int]) -> Itemset:
    """Return the canonical (sorted, de-duplicated) form of *items*.

    >>> itemset([3, 1, 2, 1])
    (1, 2, 3)
    """
    return tuple(sorted(set(items)))


def is_canonical(candidate: tuple[int, ...]) -> bool:
    """Return True when *candidate* is sorted and free of duplicates."""
    return all(a < b for a, b in zip(candidate, candidate[1:]))


def union(first: Itemset, second: Itemset) -> Itemset:
    """Return the canonical union of two canonical itemsets.

    Merges two sorted tuples without building intermediate sets.
    """
    merged: list[int] = []
    i = j = 0
    len_a, len_b = len(first), len(second)
    while i < len_a and j < len_b:
        a, b = first[i], second[j]
        if a < b:
            merged.append(a)
            i += 1
        elif b < a:
            merged.append(b)
            j += 1
        else:
            merged.append(a)
            i += 1
            j += 1
    if i < len_a:
        merged.extend(first[i:])
    if j < len_b:
        merged.extend(second[j:])
    return tuple(merged)


def difference(first: Itemset, second: Itemset) -> Itemset:
    """Return the canonical set difference ``first - second``."""
    exclude = set(second)
    return tuple(item for item in first if item not in exclude)


def is_subset(small: Itemset, big: Itemset) -> bool:
    """Return True when every item of *small* occurs in *big*.

    Both arguments must be canonical; runs a linear merge rather than
    building sets.
    """
    if len(small) > len(big):
        return False
    j = 0
    len_b = len(big)
    for item in small:
        while j < len_b and big[j] < item:
            j += 1
        if j == len_b or big[j] != item:
            return False
        j += 1
    return True


def subsets_of_size(source: Itemset, size: int) -> list[Itemset]:
    """Return all size-*size* subsets of a canonical itemset, canonical order.

    >>> subsets_of_size((1, 2, 3), 2)
    [(1, 2), (1, 3), (2, 3)]
    """
    return list(combinations(source, size))


def proper_nonempty_subsets(source: Itemset) -> list[Itemset]:
    """Return every proper non-empty subset of *source*.

    Used by rule generators to enumerate antecedent/consequent splits.
    The result contains ``2**len(source) - 2`` itemsets.
    """
    out: list[Itemset] = []
    for size in range(1, len(source)):
        out.extend(combinations(source, size))
    return out


def replace_positions(
    source: Itemset, positions: tuple[int, ...], replacements: tuple[int, ...]
) -> Itemset | None:
    """Replace ``source[p]`` with the matching replacement for each position.

    Returns the canonical result, or ``None`` when the replacement introduces
    a duplicate item (the resulting "itemset" would collapse to a smaller
    size, which candidate generation must reject).
    """
    items = list(source)
    for position, new_item in zip(positions, replacements):
        items[position] = new_item
    if len(set(items)) != len(items):
        return None
    return tuple(sorted(items))
