"""The counting-engine protocol, capability flags and registry.

Every support-counting backend is a :class:`CountingEngine`: a small
object configured once (from an :class:`EnginePolicy`), asked to
``prepare()`` an :class:`EngineState` for a database/taxonomy pair, and
then invoked through ``count(state, candidates)`` for each logical pass.
Engines self-register under a name with :func:`register_engine`, which is
the single source of truth the CLI, the benchmarks and the property tests
enumerate — a newly registered engine is automatically validated,
listed by ``python -m repro engines`` and covered by the
registry-parametrized equivalence test.

Specs
-----
An engine *spec* is either a plain registered name (``"bitmap"``,
``"numpy"``, …) or a composition ``"parallel:<inner>"`` selecting the
sharding wrapper around a serial engine (``"parallel:numpy"`` counts
shards with the bit-packed kernel). :func:`create_engine` resolves a spec
plus a policy into a ready engine object; it also auto-wraps any
shardable engine in the parallel wrapper when the policy asks for more
than one worker, which is how ``n_jobs=4`` with ``engine="bitmap"``
keeps working exactly as before the registry existed.

Validation
----------
The precheck every engine used to duplicate lives here once
(:func:`validate_candidates` / :func:`count_pass`): unknown engine names
are rejected at spec resolution, an empty candidate *collection*
short-circuits to ``{}`` without touching the data, and an empty
candidate *itemset* raises :class:`~repro.errors.ConfigError` — an empty
candidate has no well-defined first item for the bucketed engines and
its support (every transaction) is never meaningful to a miner. A new
engine cannot forget any of this because :func:`count_pass` runs it
before the engine is ever called.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable
from dataclasses import dataclass, fields
from typing import Any, ClassVar

from ..._util import check_positive
from ...errors import ConfigError
from ...itemset import Itemset
from ...obs import api as obs
from ...taxonomy.tree import Taxonomy
from .. import vertical


@dataclass(frozen=True, slots=True)
class Capabilities:
    """Declared properties of one counting engine.

    Attributes
    ----------
    packed:
        Counts through the bit-packed NumPy kernel
        (:mod:`repro.mining.bitpack`), at least optionally.
    caching:
        Maintains a persistent per-database structure across passes
        (physical passes can drop below logical passes).
    shardable:
        Row ranges can be counted independently and summed, so the
        parallel wrapper may use it as a per-shard inner engine.
    needs_numpy:
        Requires NumPy at runtime.
    shared_memory:
        Publishes its packed data via ``multiprocessing.shared_memory``
        and counts through persistent workers attached zero-copy
        (:mod:`repro.parallel.shm`).
    out_of_core:
        Keeps its packed data in memory-mapped spill files with bounded
        resident bytes (:mod:`repro.mining.segmatrix`); under the
        parallel wrapper, workers map their own segments instead of
        receiving pickled row slices.
    """

    packed: bool = False
    caching: bool = False
    shardable: bool = True
    needs_numpy: bool = False
    shared_memory: bool = False
    out_of_core: bool = False

    def describe(self) -> str:
        """The set flags as a short comma-separated string."""
        names = [f.name for f in fields(self) if getattr(self, f.name)]
        return ", ".join(names) if names else "-"


@dataclass(frozen=True, slots=True)
class EnginePolicy:
    """Execution policy an engine is configured from (once, up front).

    This is the registry-side mirror of the engine-related
    ``MiningConfig`` fields; :func:`create_engine` hands it to each
    engine class's ``from_policy`` so the class picks out the fields it
    understands and ignores the rest.
    """

    n_jobs: int | None = None
    shard_rows: int | None = None
    use_cache: bool = True
    cache_bytes: int | None = None
    packed: bool = False
    batch_words: int | None = None
    shm: bool = False
    segment_rows: int | None = None
    max_resident_bytes: int | None = None
    spill_dir: str | None = None

    def __post_init__(self) -> None:
        if self.n_jobs is not None:
            check_positive(self.n_jobs, "n_jobs")
        if self.shard_rows is not None:
            check_positive(self.shard_rows, "shard_rows")
        if self.cache_bytes is not None:
            check_positive(self.cache_bytes, "cache_bytes")
        if self.batch_words is not None:
            check_positive(self.batch_words, "batch_words")
        if self.segment_rows is not None:
            check_positive(self.segment_rows, "segment_rows")
        if self.max_resident_bytes is not None:
            check_positive(self.max_resident_bytes, "max_resident_bytes")


@dataclass(slots=True)
class EngineState:
    """One prepared (transactions, taxonomy) binding.

    *transactions* is either the scan-counted database or the plain rows
    of one pass — exactly the two forms ``count_supports`` always
    accepted. ``prepare()`` exists so engines that build per-database
    structures (the cached engine today, a disk-resident layout tomorrow)
    have a place to do it once per session instead of once per pass.
    """

    transactions: Any
    taxonomy: Taxonomy | None = None

    def rows(self) -> Iterable[Itemset]:
        """The rows of one pass (calls ``scan()`` on a database)."""
        source = self.transactions
        return source.scan() if hasattr(source, "scan") else source

    def n_rows(self) -> int | None:
        """Row count when knowable without consuming an iterator."""
        try:
            return len(self.transactions)
        except TypeError:
            return None


class CountingEngine:
    """Base class and protocol for support-counting backends.

    Subclasses set :attr:`name` and :attr:`capabilities`, register with
    :func:`register_engine`, and implement :meth:`count`. They may
    override :meth:`from_policy` to consume policy fields and
    :meth:`prepare` to build per-database state.
    """

    name: ClassVar[str] = ""
    capabilities: ClassVar[Capabilities] = Capabilities()
    #: True for wrapper engines (the parallel wrapper) that hold an inner
    #: engine; create_engine never auto-wraps an engine twice.
    wraps: ClassVar[bool] = False

    @property
    def spec(self) -> str:
        """The spec string that would recreate this engine's shape."""
        return self.name

    @property
    def wants_cache_stats(self) -> bool:
        """Whether an obs session should auto-create CacheStats for it."""
        return self.capabilities.caching or self.capabilities.packed

    @property
    def wants_parallel_stats(self) -> bool:
        """Whether an obs session should auto-create ParallelStats."""
        return False

    @classmethod
    def from_policy(
        cls, policy: EnginePolicy, inner: "str | CountingEngine | None" = None
    ) -> "CountingEngine":
        """Build an engine from *policy*; non-wrappers reject *inner*."""
        cls._reject_inner(inner)
        return cls()

    @classmethod
    def _reject_inner(cls, inner: "str | CountingEngine | None") -> None:
        if inner is not None:
            raise ConfigError(
                f"engine {cls.name!r} does not compose with an inner "
                f"engine; only 'parallel:<engine>' specs are valid"
            )

    def prepare(
        self, transactions: Any, taxonomy: Taxonomy | None = None
    ) -> EngineState:
        """Bind a database/taxonomy pair; called once per session."""
        return EngineState(transactions, taxonomy)

    def count(
        self,
        state: EngineState,
        candidates: Collection[Itemset],
        *,
        restrict_to_candidate_items: bool = False,
        cache_stats=None,
        parallel_stats=None,
    ) -> dict[Itemset, int]:
        """Count one validated pass; implemented by each engine."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.spec!r}>"


_REGISTRY: dict[str, type[CountingEngine]] = {}


def register_engine(name: str):
    """Class decorator: register a :class:`CountingEngine` under *name*."""

    def decorate(cls: type[CountingEngine]) -> type[CountingEngine]:
        if name in _REGISTRY:
            raise ValueError(f"engine {name!r} is already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def registered_engines() -> dict[str, type[CountingEngine]]:
    """Name -> engine class, in registration order (a copy)."""
    return dict(_REGISTRY)


def engine_names() -> tuple[str, ...]:
    """All registered engine names, in registration order."""
    return tuple(_REGISTRY)


def serial_engine_names() -> tuple[str, ...]:
    """The shardable (per-shard capable) engine names."""
    return tuple(
        name
        for name, cls in _REGISTRY.items()
        if cls.capabilities.shardable
    )


def all_engine_specs() -> tuple[str, ...]:
    """Every reachable spec: plain names plus ``parallel:<inner>``.

    This is what the registry-parametrized property test enumerates, so
    a newly registered engine (and its parallel composition, when
    shardable) is covered automatically.
    """
    specs = list(_REGISTRY)
    if "parallel" in _REGISTRY:
        specs.extend(
            f"parallel:{name}" for name in serial_engine_names()
        )
    return tuple(specs)


def parse_spec(spec: str) -> tuple[str, str | None]:
    """Split ``"name"`` / ``"name:inner"``, validating both names."""
    if not isinstance(spec, str):
        raise ConfigError(
            f"engine spec must be a string or CountingEngine, got "
            f"{type(spec).__name__}"
        )
    name, _, inner = spec.partition(":")
    _require_known(name)
    if not _:
        return name, None
    if not _REGISTRY[name].wraps:
        raise ConfigError(
            f"engine {name!r} does not compose with an inner engine; "
            f"only 'parallel:<engine>' specs are valid"
        )
    _require_known(inner)
    return name, inner


def _require_known(name: str) -> None:
    if name not in _REGISTRY:
        raise ConfigError(
            f"unknown counting engine {name!r}; "
            f"choose from {engine_names()}"
        )


def validate_spec(spec: "str | CountingEngine") -> str:
    """Validate an engine spec and return it normalized (for configs)."""
    if isinstance(spec, CountingEngine):
        return spec.spec
    parse_spec(spec)
    return spec


def create_engine(
    spec: "str | CountingEngine",
    policy: EnginePolicy | None = None,
) -> CountingEngine:
    """Resolve a spec + policy into a ready engine object.

    A :class:`CountingEngine` instance passes through unchanged. When the
    policy requests more than one worker and the resolved engine is a
    shardable serial engine, it is wrapped in the parallel engine
    automatically — ``engine="bitmap", n_jobs=4`` shards exactly as it
    did before the registry existed.
    """
    if isinstance(spec, CountingEngine):
        return spec
    if policy is None:
        policy = EnginePolicy()
    name, inner = parse_spec(spec)
    engine = _REGISTRY[name].from_policy(policy, inner=inner)
    if (
        not engine.wraps
        and engine.capabilities.shardable
        and policy.n_jobs is not None
        and policy.n_jobs > 1
        and "parallel" in _REGISTRY
    ):
        engine = _REGISTRY["parallel"].from_policy(policy, inner=engine)
    if policy.shm and not engine.capabilities.shared_memory:
        # The shm knob upgrades parallel counting to the zero-copy
        # shared-memory kernel; it is meaningless for a serial engine,
        # so a policy that cannot produce parallel workers is an error
        # rather than a silent no-op.
        if not engine.wraps or "parallel-shm" not in _REGISTRY:
            raise ConfigError(
                "shm=True requires parallel counting: set n_jobs > 1 "
                "or choose a 'parallel'/'parallel-shm' engine spec"
            )
        engine = _REGISTRY["parallel-shm"].from_policy(policy)
    return engine


def validate_candidates(candidates: Collection[Itemset]) -> None:
    """The registry-level candidate precheck shared by all engines.

    Raises :class:`~repro.errors.ConfigError` for an empty candidate
    itemset (see module docstring). Runs before any engine code, so no
    engine can forget it.
    """
    for candidate in candidates:
        if not candidate:
            raise ConfigError(
                "cannot count an empty candidate itemset; candidates "
                "must contain at least one item"
            )


def count_pass(
    engine: CountingEngine,
    state: EngineState,
    candidates: Collection[Itemset],
    *,
    restrict_to_candidate_items: bool = False,
    cache_stats=None,
    parallel_stats=None,
) -> dict[Itemset, int]:
    """Run one validated, instrumented counting pass through *engine*.

    This is the single entry point every caller (MiningSession, the
    plain ``count_supports`` helper, the parallel shard workers) funnels
    through: it applies the registry-level precheck, then — only when an
    observability session is active — records the driver/worker
    ``counting.*`` metrics, auto-creates stats accumulators the engine
    declares a use for, and wraps the pass in a ``count.<name>`` span.
    With observability off it adds zero work beyond the precheck.
    """
    validate_candidates(candidates)
    if not candidates:
        # Never touch the data: no mask/tree setup, no row consumption,
        # no pass recorded.
        return {}
    obs_state = obs.current()
    if obs_state is None:
        return engine.count(
            state,
            candidates,
            restrict_to_candidate_items=restrict_to_candidate_items,
            cache_stats=cache_stats,
            parallel_stats=parallel_stats,
        )
    prefix = "" if obs_state.scope == "driver" else obs_state.scope + "."
    n_rows = state.n_rows()
    # Top-level counts only: the parallel engine's serial-fallback path
    # re-enters count_pass for the same logical pass, and counting it
    # twice would break parallel == serial metric totals.
    if not obs_state.in_span("count."):
        registry = obs_state.registry
        registry.incr(prefix + "counting.passes")
        registry.incr(prefix + "counting.candidates", len(candidates))
        if n_rows is not None:
            registry.incr(prefix + "counting.rows", n_rows)
    if cache_stats is None and engine.wants_cache_stats:
        cache_stats = vertical.CacheStats(
            registry=obs_state.registry, prefix=prefix
        )
    if parallel_stats is None and engine.wants_parallel_stats:
        from ...parallel.engine import ParallelStats

        parallel_stats = ParallelStats(
            registry=obs_state.registry, prefix=prefix
        )
    with obs.span("count." + engine.name) as span:
        span.annotate("candidates", len(candidates))
        if n_rows is not None:
            span.annotate("rows", n_rows)
        return engine.count(
            state,
            candidates,
            restrict_to_candidate_items=restrict_to_candidate_items,
            cache_stats=cache_stats,
            parallel_stats=parallel_stats,
        )
