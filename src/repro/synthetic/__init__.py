"""Synthetic retail-transaction generator (paper Section 3.1).

Reimplements the paper's data generator: a nested-logit consumer-choice
model in which customers first decide on a *category* and then on a
particular *brand* within it. The generator has three stages, one module
each:

* :mod:`~repro.synthetic.taxonomy_gen` — a random taxonomy whose internal
  nodes have Poisson(F) children;
* :mod:`~repro.synthetic.clusters` — potentially-maximal clusters of
  leaf-parent categories, each with a set of potentially-large itemsets
  drawn from the cluster's children and exponential selection weights;
* :mod:`~repro.synthetic.generator` — Poisson-length transactions assembled
  by repeatedly picking a cluster, then one of its itemsets, corrupted by
  the paper's normal(0.5, 0.1) drop process.

:data:`~repro.synthetic.params.SHORT` and
:data:`~repro.synthetic.params.TALL` reproduce the two data sets of
Section 3.2 (fan-out 9 and 3).
"""

from .clusters import ClusterModel, build_cluster_model
from .generator import SyntheticDataset, generate_dataset, generate_transactions
from .grocery import (
    GroceryDataset,
    Persona,
    generate_grocery_dataset,
    grocery_taxonomy,
)
from .params import SHORT, TALL, GeneratorParams
from .taxonomy_gen import generate_taxonomy

__all__ = [
    "GeneratorParams",
    "SHORT",
    "TALL",
    "generate_taxonomy",
    "ClusterModel",
    "build_cluster_model",
    "SyntheticDataset",
    "generate_dataset",
    "generate_transactions",
    "GroceryDataset",
    "Persona",
    "generate_grocery_dataset",
    "grocery_taxonomy",
]
