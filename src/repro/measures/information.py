"""Information-theoretic unexpectedness (paper Section 1.1).

"In information theoretic terms the a priori probabilities represent our
state of ignorance and the deviation of the a posteriori probabilities
represent the degree of information gained."

These helpers quantify that deviation for an itemset whose expected
(a priori) and actual (a posteriori) supports are known:

* :func:`surprise_bits` — the pointwise KL contribution of observing the
  itemset's presence/absence frequencies instead of the expected ones,
  in bits per transaction. This is the "degree of information gained" of
  the quote: 0 when expectation matches observation, growing with the
  deviation in either direction.
* :func:`expected_itemset_support` — the ignorance baseline of the
  paper's intro example: under item independence with uniform item
  popularity, the chance that a specific ``k``-itemset appears in a
  transaction of average length ``t`` over ``n`` items.
"""

from __future__ import annotations

import math

from ..errors import ConfigError


def surprise_bits(expected_support: float, actual_support: float) -> float:
    """KL divergence (bits/transaction) of observed vs expected presence.

    Treats the itemset's presence as a Bernoulli variable with expected
    parameter ``expected_support`` and observed parameter
    ``actual_support`` and returns ``KL(actual || expected)`` in bits.

    Edge behavior: when the expectation is 0 or 1 and the observation
    deviates, the divergence is infinite — returned as ``math.inf``.
    """
    for name, value in (
        ("expected_support", expected_support),
        ("actual_support", actual_support),
    ):
        if not 0.0 <= value <= 1.0:
            raise ConfigError(
                f"{name} must be a fraction in [0, 1], got {value}"
            )
    terms = 0.0
    for observed, anticipated in (
        (actual_support, expected_support),
        (1.0 - actual_support, 1.0 - expected_support),
    ):
        if observed == 0.0:
            continue
        if anticipated == 0.0:
            return math.inf
        terms += observed * math.log2(observed / anticipated)
    return max(0.0, terms)


def expected_itemset_support(
    itemset_size: int, num_items: int, avg_transaction_size: float
) -> float:
    """Independence baseline for a specific ``k``-itemset's support.

    The paper's Section 1.1 example: 50,000 items, 10 M transactions of
    5 items — a specific item is expected in ``5/50,000`` of transactions
    and a specific pair in the square of that, which is why *naive*
    negative mining drowns in uninformative absences.

    >>> expected_itemset_support(1, 50_000, 5.0)
    0.0001
    >>> expected_itemset_support(2, 50_000, 5.0)
    1e-08
    """
    if itemset_size < 1:
        raise ConfigError(f"itemset_size must be >= 1, got {itemset_size}")
    if num_items < 1:
        raise ConfigError(f"num_items must be >= 1, got {num_items}")
    if avg_transaction_size <= 0:
        raise ConfigError("avg_transaction_size must be positive")
    per_item = min(1.0, avg_transaction_size / num_items)
    return per_item**itemset_size
