"""Unit tests for small-item taxonomy pruning (Improved algorithm opt. 1)."""

import pytest

from repro.errors import TaxonomyError
from repro.taxonomy.builders import taxonomy_from_parents
from repro.taxonomy.prune import prune_small_items, restrict_to_items


@pytest.fixture
def taxonomy():
    """0 -> (1, 2); 2 -> (3, 4, 5)."""
    return taxonomy_from_parents(
        {1: 0, 2: 0, 3: 2, 4: 2, 5: 2}, names={3: "three"}
    )


class TestRestrictToItems:
    def test_keeps_structure_of_kept_nodes(self, taxonomy):
        pruned = restrict_to_items(taxonomy, [0, 2, 3, 4])
        assert pruned.children(2) == (3, 4)
        assert pruned.parent(2) == 0
        assert 5 not in pruned
        assert 1 not in pruned

    def test_sibling_lists_shrink(self, taxonomy):
        pruned = restrict_to_items(taxonomy, [0, 2, 3, 4])
        assert pruned.siblings(3) == (4,)
        assert taxonomy.siblings(3) == (4, 5)

    def test_orphaned_node_becomes_root(self, taxonomy):
        # 3 kept but its parent 2 dropped: re-rooted defensively.
        pruned = restrict_to_items(taxonomy, [0, 3])
        assert pruned.parent(3) is None
        assert 3 in pruned.roots

    def test_unknown_keep_id_raises(self, taxonomy):
        with pytest.raises(TaxonomyError):
            restrict_to_items(taxonomy, [1234])

    def test_names_preserved(self, taxonomy):
        pruned = restrict_to_items(taxonomy, [0, 2, 3])
        assert pruned.name_of(3) == "three"

    def test_empty_keep_gives_empty_taxonomy(self, taxonomy):
        pruned = restrict_to_items(taxonomy, [])
        assert len(pruned) == 0

    def test_full_keep_is_identity(self, taxonomy):
        pruned = restrict_to_items(taxonomy, taxonomy.nodes)
        assert pruned.nodes == taxonomy.nodes
        assert pruned.leaves == taxonomy.leaves


class TestPruneSmallItems:
    def test_removes_below_threshold(self, taxonomy):
        supports = {0: 0.9, 1: 0.05, 2: 0.8, 3: 0.5, 4: 0.3, 5: 0.01}
        pruned = prune_small_items(taxonomy, supports, minsup=0.1)
        assert set(pruned.nodes) == {0, 2, 3, 4}

    def test_missing_support_treated_as_zero(self, taxonomy):
        pruned = prune_small_items(taxonomy, {0: 1.0}, minsup=0.1)
        assert set(pruned.nodes) == {0}

    def test_threshold_is_inclusive(self, taxonomy):
        pruned = prune_small_items(
            taxonomy, {0: 0.1, 1: 0.0999}, minsup=0.1
        )
        assert 0 in pruned
        assert 1 not in pruned
