"""Persistent vertical bitmap index: build once, count every pass for free.

The paper's cost model is *passes over the data*, yet the fast ``"bitmap"``
engine rebuilds its per-item transaction bitsets from scratch on every
:func:`repro.mining.counting.count_supports` call — one rebuild per Apriori
level, then more for the negative-mining expectation counts. This module
amortizes that: one physical scan of a database materializes a
:class:`VerticalIndex` (per-item Python ``int`` bitsets), attached to the
database and keyed by a *fingerprint*; every later counting pass intersects
cached bitmaps instead of re-reading rows.

Pass semantics split in two:

logical pass
    One counting pass in the paper's cost model (the Improved miner's
    ``n + 1``, Partition's ``2``). Every cached count records exactly one
    via :meth:`~repro.data.database.TransactionDatabase.count_logical_pass`.
physical pass
    An actual read of the rows. The cache build is one; later counts are
    zero until the fingerprint invalidates or evicted items need a rebuild.

Generalized counting gets the biggest win: a category's bitmap is the OR
of its descendants' bitmaps, computed lazily and memoized, so no per-row
``ancestor_closure`` extension ever happens — bit-identical to Cumulate
counting (property-tested against the ``"brute"`` engine).

Two interchangeable storage backends hold the bitmaps: Python big-ints
(default) and, with ``packed=True``, bit-packed ``uint64`` word arrays
counted by the vectorized NumPy kernel of :mod:`repro.mining.bitpack` —
same bits, same counts, different speed/memory profile.

Staleness is impossible by construction: :func:`get_index` revalidates the
fingerprint on every use and rebuilds on mismatch
(:meth:`~repro.data.database.TransactionDatabase.cache_token` for the
in-memory database is the rows tuple itself; the file-backed database
tokens on inode/size/mtime). A bounded memory budget evicts in LRU order —
derived category bitmaps first (recomputable for free), then base item
bitmaps (restored by a single targeted physical pass on next use).
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from collections.abc import Collection, Iterable

from .._util import check_positive
from ..errors import DatabaseError
from ..itemset import Itemset
from ..obs import api as obs
from ..obs.registry import MetricsRegistry, stats_property
from ..taxonomy.tree import Taxonomy
from . import bitpack

#: Approximate per-entry dict overhead (key + table slot), added to
#: the payload size of each bitmap when tracking the memory footprint.
_ENTRY_OVERHEAD = 64


def _entry_bytes(bitmap) -> int:
    """Approximate footprint of one stored bitmap (big-int or packed)."""
    if isinstance(bitmap, int):
        return sys.getsizeof(bitmap) + _ENTRY_OVERHEAD
    return bitmap.nbytes + _ENTRY_OVERHEAD


class CacheStats:
    """Observable accounting of vertical-cache activity.

    Since the observability layer (DESIGN.md §8) every field is a view
    over a :class:`~repro.obs.registry.MetricsRegistry` — reads and
    writes (``stats.hits += 1``) go straight to named registry metrics,
    so the same numbers feed :class:`repro.core.negmining.MiningStats`,
    the ``--metrics`` summary and the trace file without hand-threaded
    copies. By default each instance owns a private registry (the
    classic standalone-accumulator behavior); pass ``registry=`` to
    record into a shared one (e.g. the active observability session's),
    and ``prefix=`` to namespace the metrics (worker processes record
    under ``worker.``).

    Attributes
    ----------
    hits:
        Counting passes served from an already-built index
        (``cache.hits``).
    misses:
        Counting passes that had to build (or rebuild) an index
        (``cache.misses``).
    invalidations:
        Rebuilds forced by a fingerprint mismatch — data changed under
        the cache (``cache.invalidations``).
    evictions:
        Bitmaps dropped by the LRU memory budget (``cache.evictions``).
    rebuilt_items:
        Evicted base bitmaps restored by a targeted physical pass
        (``cache.rebuilt_items``).
    bytes:
        High-water-mark footprint of the index (gauge ``cache.bytes``;
        merging registries keeps the maximum).
    kernel_batches:
        Vectorized candidate batches executed by the bit-packed NumPy
        kernel (``kernel.batches``) — nonzero only under the ``"numpy"``
        engine or the packed cached backend.
    kernel_words:
        64-bit words gathered and intersected by those batches
        (``kernel.words``) — the kernel's work volume.
    extensions:
        Incremental catch-ups: an index or segmented matrix absorbed
        appended rows in O(append) instead of rebuilding
        (``cache.extensions``).
    matrix_bytes:
        High-water footprint of an in-RAM packed matrix (gauge
        ``kernel.matrix_bytes``) — the number the out-of-core engine
        keeps bounded.
    segments_packed / segments_extended / segments_reused:
        Segmented-matrix maintenance (``counting.segments.*``): blocks
        packed from scratch, tail blocks extended in place, and blocks
        reused untouched across a sync.
    segments_spilled_bytes / segments_resident_bytes:
        Gauges of bytes persisted under the spill directory and the
        high-water bytes of concurrently open segment blocks (the
        ``max_resident_bytes`` bound is asserted against the latter).
    segments_mmap_reads:
        Segment blocks re-opened from disk via ``np.memmap``
        (``counting.segments.mmap_reads``).
    """

    #: field name -> (metric kind, registry metric name)
    _FIELDS = {
        "hits": ("counter", "cache.hits"),
        "misses": ("counter", "cache.misses"),
        "invalidations": ("counter", "cache.invalidations"),
        "evictions": ("counter", "cache.evictions"),
        "rebuilt_items": ("counter", "cache.rebuilt_items"),
        "extensions": ("counter", "cache.extensions"),
        "bytes": ("gauge", "cache.bytes"),
        "kernel_batches": ("counter", "kernel.batches"),
        "kernel_words": ("counter", "kernel.words"),
        "matrix_bytes": ("gauge", "kernel.matrix_bytes"),
        "segments_packed": ("counter", "counting.segments.packed"),
        "segments_extended": ("counter", "counting.segments.extended"),
        "segments_reused": ("counter", "counting.segments.reused"),
        "segments_spilled_bytes": (
            "gauge", "counting.segments.spilled_bytes"
        ),
        "segments_resident_bytes": (
            "gauge", "counting.segments.resident_bytes"
        ),
        "segments_mmap_reads": ("counter", "counting.segments.mmap_reads"),
    }

    __slots__ = ("registry", "_prefix")

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        prefix: str = "",
        **values: int,
    ) -> None:
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self._prefix = prefix
        for name, value in values.items():
            if name not in self._FIELDS:
                raise TypeError(
                    f"CacheStats has no field {name!r}; "
                    f"choose from {tuple(self._FIELDS)}"
                )
            setattr(self, name, value)

    @property
    def hit_rate(self) -> float:
        """Fraction of counting passes served without a physical build."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)}" for name in self._FIELDS
        )
        return f"CacheStats({fields})"


for _name, (_kind, _metric) in CacheStats._FIELDS.items():
    setattr(CacheStats, _name, stats_property(_metric, _kind))
del _name, _kind, _metric


class VerticalIndex:
    """Per-item transaction bitsets over one database snapshot.

    Bit ``t`` of ``bits[item]`` is set when transaction ``t`` contains the
    item. Category bitmaps under a taxonomy are derived lazily (OR over
    children, recursively) and memoized per taxonomy.

    Two storage backends hold the same bits: the default keeps one Python
    ``int`` per item; ``packed=True`` keeps one little-endian ``uint64``
    word array per item and counts with the vectorized batched kernel of
    :mod:`repro.mining.bitpack` (derived category bitmaps become
    ``np.bitwise_or.reduce`` over descendant rows instead of lazy big-int
    ORs). Counts are bit-identical either way (property-tested).

    Build through :meth:`build` (physical pass over a scan-counted
    database, rebuildable after eviction) or :meth:`from_rows` (one-shot
    over materialized rows, e.g. a parallel shard; no rebuild source).
    """

    __slots__ = (
        "n_rows",
        "evictions",
        "_bits",
        "_derived",
        "_evicted",
        "_source",
        "_token",
        "_epoch",
        "_budget",
        "_nbytes",
        "_tax_refs",
        "_packed",
        "_n_words",
        "_zero",
    )

    def __init__(
        self,
        n_rows: int,
        budget_bytes: int | None = None,
        packed: bool = False,
    ) -> None:
        if budget_bytes is not None:
            check_positive(budget_bytes, "budget_bytes")
        self.n_rows = n_rows
        self.evictions = 0
        self._bits: OrderedDict[int, object] = OrderedDict()
        self._derived: OrderedDict[tuple[int, int], object] = OrderedDict()
        self._evicted: set[int] = set()
        self._source = None
        self._token = None
        self._epoch = None
        self._budget = budget_bytes
        self._nbytes = 0
        self._packed = packed
        self._n_words = bitpack.words_for(n_rows)
        # Shared "absent item" bitmap: 0 for big-ints, a zero row packed.
        self._zero = bitpack.zeros(self._n_words) if packed else 0
        # Strong refs to taxonomies keyed by id() so memo keys can never
        # collide with a recycled id after garbage collection.
        self._tax_refs: dict[int, Taxonomy] = {}

    @property
    def packed(self) -> bool:
        """True when bitmaps are stored as NumPy word arrays."""
        return self._packed

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        database,
        budget_bytes: int | None = None,
        packed: bool = False,
    ) -> "VerticalIndex":
        """One physical pass over *database* materializing all bitmaps.

        The read goes through ``database.physical_scan()`` so it counts as
        a physical pass but not a logical one (the logical counting pass
        is recorded by :func:`count_with_index`, once per count).
        """
        index = cls(len(database), budget_bytes, packed=packed)
        index._source = database
        index._token = database.cache_token()
        epoch_fn = getattr(database, "append_epoch", None)
        index._epoch = epoch_fn()[0] if epoch_fn is not None else None
        with obs.span("cache.build") as span:
            span.annotate("rows", index.n_rows)
            span.annotate("packed", packed)
            index._ingest(database.physical_scan(), None)
        index._enforce_budget()
        return index

    @classmethod
    def from_rows(
        cls, rows: Iterable[Itemset], packed: bool = False
    ) -> "VerticalIndex":
        """Build over already-materialized rows (no rebuild source).

        Used for one-shot counting over plain iterables and for parallel
        shard-local indexes. No memory budget: without a source there is
        no way to restore an evicted base bitmap.
        """
        materialized = rows if isinstance(rows, (list, tuple)) else list(rows)
        index = cls(len(materialized), packed=packed)
        index._ingest(materialized, None)
        return index

    def _ingest(self, rows: Iterable[Itemset], only: set[int] | None) -> None:
        """Scan *rows* once, building bitmaps (optionally only for *only*).

        Bits are always set on arbitrary-precision integers first (the
        fastest single-bit writes CPython offers); a packed index converts
        each finished bitmap to its word array in one ``to_bytes`` call.
        """
        bits = {} if only is None else dict.fromkeys(only, 0)
        if only is None:
            get = bits.get
            for position, row in enumerate(rows):
                bit = 1 << position
                for item in row:
                    bits[item] = get(item, 0) | bit
        else:
            for position, row in enumerate(rows):
                bit = 1 << position
                for item in row:
                    if item in bits:
                        bits[item] |= bit
        for item, bitmap in bits.items():
            if only is not None and not bitmap:
                # The evicted item vanished from the data source; keep it
                # resolvable as "absent" rather than eternally evicted.
                self._evicted.discard(item)
                continue
            if self._packed:
                bitmap = bitpack.pack_bigint(bitmap, self._n_words)
            self._bits[item] = bitmap
            self._nbytes += _entry_bytes(bitmap)
            self._evicted.discard(item)

    # ------------------------------------------------------------------
    # Validation / memory
    # ------------------------------------------------------------------
    def valid_for(self, database) -> bool:
        """True when *database* still matches the build-time fingerprint."""
        token = database.cache_token()
        return token is self._token or token == self._token

    def extend_from(self, source, stats: CacheStats | None = None) -> bool:
        """Absorb rows appended to *source* since the index was built.

        Succeeds only when *source* proves the growth is a pure append:
        it carries the same ``append_epoch`` identity the index was
        built against and has strictly more rows. The appended suffix
        (``tail_rows``) is then OR-ed into the stored bitmaps at the old
        row offset — O(append) work, no physical pass over the head.
        Derived category memos are dropped (they lack the tail bits) and
        recomputed lazily; evicted base items stay evicted, since their
        eventual targeted restore scans the *current* full database.
        Returns ``False`` (leaving the index untouched) when the growth
        cannot be proven incremental — callers fall back to a rebuild.
        """
        epoch_fn = getattr(source, "append_epoch", None)
        tail_fn = getattr(source, "tail_rows", None)
        if epoch_fn is None or tail_fn is None or self._epoch is None:
            return False
        epoch, n_rows = epoch_fn()
        if epoch is not self._epoch or n_rows <= self.n_rows:
            return False
        tail = tail_fn(self.n_rows)
        if len(tail) != n_rows - self.n_rows:
            return False
        with obs.span("cache.extend") as span:
            span.annotate("rows", len(tail))
            span.annotate("packed", self._packed)
            old_rows = self.n_rows
            new_words = bitpack.words_for(n_rows)
            while self._derived:
                _, bitmap = self._derived.popitem(last=False)
                self._nbytes -= _entry_bytes(bitmap)
            tail_bits: dict[int, int] = {}
            for position, row in enumerate(tail):
                bit = 1 << position
                for item in row:
                    tail_bits[item] = tail_bits.get(item, 0) | bit
            if self._packed:
                offset_words, offset_bits = old_rows >> 6, old_rows & 63
                span_words = new_words - offset_words
                for item in self._bits:
                    # Pad every stored row to the new width (the batched
                    # kernel vstacks rows, so widths must agree), then OR
                    # the shifted tail bits in.
                    grown = bitpack.zeros(new_words)
                    grown[: len(self._bits[item])] = self._bits[item]
                    bits = tail_bits.pop(item, 0)
                    if bits:
                        grown[offset_words:] |= bitpack.pack_bigint(
                            bits << offset_bits, span_words
                        )
                    self._bits[item] = grown
                for item, bits in tail_bits.items():
                    if item in self._evicted:
                        continue
                    grown = bitpack.zeros(new_words)
                    grown[offset_words:] |= bitpack.pack_bigint(
                        bits << offset_bits, span_words
                    )
                    self._bits[item] = grown
            else:
                for item, bits in tail_bits.items():
                    if item in self._evicted:
                        continue
                    self._bits[item] = (
                        self._bits.get(item, 0) | (bits << old_rows)
                    )
            self.n_rows = n_rows
            self._n_words = new_words
            self._zero = (
                bitpack.zeros(new_words) if self._packed else 0
            )
            self._nbytes = sum(
                _entry_bytes(bitmap) for bitmap in self._bits.values()
            )
            token_fn = getattr(source, "cache_token", None)
            if token_fn is not None:
                self._token = token_fn()
        self._enforce_budget()
        if stats is not None:
            stats.bytes = max(stats.bytes, self._nbytes)
        return True

    @property
    def nbytes(self) -> int:
        """Approximate bytes held by base and derived bitmaps."""
        return self._nbytes

    def set_budget(self, budget_bytes: int | None) -> None:
        """Adjust the memory budget (enforced after the next count)."""
        if budget_bytes is not None:
            check_positive(budget_bytes, "budget_bytes")
        self._budget = budget_bytes

    def _enforce_budget(self) -> None:
        if self._budget is None:
            return
        # Derived bitmaps first: recomputable from children for free.
        while self._nbytes > self._budget and self._derived:
            _, bitmap = self._derived.popitem(last=False)
            self._nbytes -= _entry_bytes(bitmap)
            self.evictions += 1
        # Then base bitmaps, LRU; restoring one later costs a targeted
        # physical pass.
        while self._nbytes > self._budget and self._bits:
            item, bitmap = self._bits.popitem(last=False)
            self._evicted.add(item)
            self._nbytes -= _entry_bytes(bitmap)
            self.evictions += 1

    # ------------------------------------------------------------------
    # Counting
    # ------------------------------------------------------------------
    def count(
        self,
        candidates: Collection[Itemset],
        taxonomy: Taxonomy | None = None,
        stats: CacheStats | None = None,
        batch_words: int | None = None,
    ) -> dict[Itemset, int]:
        """Count every candidate by bitmap intersection; no data pass.

        With *taxonomy*, candidate nodes are matched generalized: a
        category's bitmap is the OR of its own and all its descendants'
        base bitmaps (memoized). Identical counts to extending every row
        with ``ancestor_closure`` first. A packed index intersects whole
        candidate batches at once (*batch_words* bounds the gather, see
        :func:`repro.mining.bitpack.count_candidates`); the big-int index
        intersects candidate-by-candidate.
        """
        counts: dict[Itemset, int] = {}
        if not candidates:
            return counts
        self._ensure_present(candidates, taxonomy, stats)
        if self._packed:
            counts = bitpack.count_candidates(
                lambda node: self._node_bits(node, taxonomy),
                candidates,
                self._n_words,
                batch_words=batch_words,
                stats=stats,
            )
            self._enforce_budget()
            return counts
        for candidate in candidates:
            mask = self._node_bits(candidate[0], taxonomy)
            for item in candidate[1:]:
                if not mask:
                    break
                mask &= self._node_bits(item, taxonomy)
            counts[candidate] = mask.bit_count()
        self._enforce_budget()
        return counts

    def _node_bits(self, node: int, taxonomy: Taxonomy | None):
        if taxonomy is None or node not in taxonomy:
            return self._base_bits(node)
        children = taxonomy.children(node)
        if not children:
            return self._base_bits(node)
        key = (id(taxonomy), node)
        memoized = self._derived.get(key)
        if memoized is not None:
            self._derived.move_to_end(key)
            return memoized
        # Functional OR on purpose: ``|=`` would mutate a packed base row
        # in place (ndarrays are mutable where ints are not).
        bits = self._base_bits(node)
        for child in children:
            bits = bits | self._node_bits(child, taxonomy)
        self._derived[key] = bits
        self._nbytes += _entry_bytes(bits)
        self._tax_refs[id(taxonomy)] = taxonomy
        return bits

    def _base_bits(self, item: int):
        bits = self._bits.get(item)
        if bits is None:
            return self._zero
        self._bits.move_to_end(item)
        return bits

    def _ensure_present(
        self,
        candidates: Collection[Itemset],
        taxonomy: Taxonomy | None,
        stats: CacheStats | None,
    ) -> None:
        """Restore evicted base bitmaps this count needs, in one pass."""
        if not self._evicted:
            return
        needed: set[int] = set()
        for candidate in candidates:
            needed.update(candidate)
        if taxonomy is not None:
            for node in tuple(needed):
                if node in taxonomy:
                    needed.update(taxonomy.descendants(node))
        missing = needed & self._evicted
        if not missing:
            return
        if self._source is None:
            raise DatabaseError(
                "vertical index has evicted items but no data source to "
                "rebuild them from"
            )
        with obs.span("cache.rebuild") as span:
            span.annotate("items", len(missing))
            self._ingest(self._source.physical_scan(), missing)
        if stats is not None:
            stats.rebuilt_items += len(missing)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def __reduce__(self):
        # Ship only the row count, backend flag and base bitmaps: the
        # data source, memory budget and derived memos are parent-process
        # concerns.
        return (
            _unpickle_index,
            (self.n_rows, tuple(self._bits.items()), self._packed),
        )

    def __repr__(self) -> str:
        backend = "packed" if self._packed else "bigint"
        return (
            f"VerticalIndex(rows={self.n_rows}, items={len(self._bits)}, "
            f"evicted={len(self._evicted)}, bytes={self._nbytes}, "
            f"backend={backend})"
        )


def _unpickle_index(
    n_rows: int, items: tuple, packed: bool = False
) -> VerticalIndex:
    index = VerticalIndex(n_rows, packed=packed)
    for item, bitmap in items:
        index._bits[item] = bitmap
        index._nbytes += _entry_bytes(bitmap)
    return index


# ----------------------------------------------------------------------
# Database-attached caching
# ----------------------------------------------------------------------
def get_index(
    database,
    budget_bytes: int | None = None,
    use_cache: bool = True,
    stats: CacheStats | None = None,
    packed: bool = False,
) -> VerticalIndex:
    """The vertical index of *database*, building (or rebuilding) on demand.

    The index is attached to the database object itself; a fingerprint
    check on every call guarantees a mutated database can never serve
    stale counts — it rebuilds instead. ``use_cache=False`` builds a
    fresh index every call (the rebuild-per-pass baseline the benchmarks
    compare against). An attached index whose storage backend does not
    match *packed* is rebuilt in the requested representation (a miss,
    not an invalidation — the data did not change). A fingerprint
    mismatch that the database can prove is a *pure append*
    (``append_epoch`` identity preserved, more rows) is absorbed
    incrementally via :meth:`VerticalIndex.extend_from` — counted as an
    extension + hit, not an invalidation.
    """
    cached = getattr(database, "_vertical_index", None) if use_cache else None
    if cached is not None:
        if not cached.valid_for(database):
            if cached.packed == packed and cached.extend_from(
                database, stats
            ):
                # Pure append: the index caught up in O(append) instead
                # of rebuilding — an incremental hit, not a miss.
                if budget_bytes is not None:
                    cached.set_budget(budget_bytes)
                if stats is not None:
                    stats.extensions += 1
                    stats.hits += 1
                return cached
            if stats is not None:
                stats.invalidations += 1
        elif cached.packed == packed:
            if budget_bytes is not None:
                cached.set_budget(budget_bytes)
            if stats is not None:
                stats.hits += 1
            return cached
    if stats is not None:
        stats.misses += 1
    index = VerticalIndex.build(database, budget_bytes, packed=packed)
    if use_cache:
        try:
            database._vertical_index = index
        except AttributeError:
            pass  # Foreign database type without the cache slot.
    return index


def get_shard_indexes(
    database,
    shard_rows: int | None = None,
    n_shards: int | None = None,
    use_cache: bool = True,
    stats: CacheStats | None = None,
    packed: bool = False,
) -> list[VerticalIndex]:
    """Shard-local vertical indexes for parallel counting, built once.

    One physical pass plans the shards and builds a per-shard index;
    later passes at the same shard layout reuse (and re-ship) the built
    bitmaps, so workers never re-derive item bitsets from raw rows. The
    plan is attached to the database keyed by fingerprint + layout +
    storage backend; ``packed=True`` ships word arrays that workers count
    with the vectorized kernel.
    """
    from ..parallel.shards import plan_shards  # lazy: avoid import cycle

    layout = (shard_rows, n_shards, packed)
    cached = getattr(database, "_shard_cache", None) if use_cache else None
    if cached is not None:
        token, cached_layout, indexes = cached
        fresh = database.cache_token()
        if cached_layout == layout and (fresh is token or fresh == token):
            if stats is not None:
                stats.hits += 1
            return indexes
        if stats is not None:
            stats.invalidations += 1
    if stats is not None:
        stats.misses += 1
    token = database.cache_token()
    with obs.span("cache.shard_build") as span:
        rows = tuple(database.physical_scan())
        shards = plan_shards(rows, shard_rows=shard_rows, n_shards=n_shards)
        indexes = [
            VerticalIndex.from_rows(shard.rows, packed=packed)
            for shard in shards
        ]
        span.annotate("rows", len(rows))
        span.annotate("shards", len(indexes))
        span.annotate("packed", packed)
    if use_cache:
        try:
            database._shard_cache = (token, layout, indexes)
        except AttributeError:
            pass
    return indexes


def invalidate(database) -> None:
    """Drop any vertical caches attached to *database*."""
    for attribute in ("_vertical_index", "_shard_cache"):
        try:
            setattr(database, attribute, None)
        except AttributeError:
            pass


def count_with_index(
    source,
    candidates: Collection[Itemset],
    taxonomy: Taxonomy | None = None,
    budget_bytes: int | None = None,
    use_cache: bool = True,
    stats: CacheStats | None = None,
    packed: bool = False,
    batch_words: int | None = None,
) -> dict[Itemset, int]:
    """The ``"cached"`` engine: count via the vertical index of *source*.

    *source* may be a scan-counted database (the index is cached on it
    and one **logical** pass is recorded per call) or a plain iterable of
    canonical rows (a one-shot index is built, as the serial engines
    would scan the rows once). ``packed=True`` selects the bit-packed
    NumPy storage backend and its batched counting kernel.
    """
    if hasattr(source, "scan"):
        hits_before = stats.hits if stats is not None else 0
        index = get_index(
            source, budget_bytes=budget_bytes, use_cache=use_cache,
            stats=stats, packed=packed,
        )
        # A cache hit returns an index whose lifetime evictions were
        # already absorbed by earlier calls; only count the new ones.
        served_from_cache = stats is not None and stats.hits > hits_before
        evictions_before = index.evictions if served_from_cache else 0
        source.count_logical_pass()
    else:
        if stats is not None:
            stats.misses += 1
        index = VerticalIndex.from_rows(source, packed=packed)
        evictions_before = 0
    counts = index.count(
        candidates, taxonomy=taxonomy, stats=stats, batch_words=batch_words
    )
    if stats is not None:
        stats.evictions += index.evictions - evictions_before
        stats.bytes = max(stats.bytes, index.nbytes)
    return counts
