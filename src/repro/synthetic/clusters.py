"""Potentially-large clusters and itemsets (paper Section 3.1, stage two).

"To generate the set of potentially maximal large itemsets, we first
generate potentially maximal clusters of categories comprising of items one
level above the leaf level. ... Next for each cluster we generate a set of
potentially maximal itemsets from the children of the items in the
cluster."

A *cluster* is a small group of leaf-parent categories that tend to be
bought together (e.g. {frozen yogurt, bottled water}); its *itemsets* are
concrete brand combinations drawn from those categories' children. Cluster
and itemset weights are exponential(1), normalized — a handful of popular
purchase patterns dominate, which is what gives the data both strong
positive associations (cluster level) and strong negative ones (brands of
the same category that never co-occur in the chosen itemsets).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GenerationError
from ..itemset import Itemset, itemset
from ..taxonomy.tree import Taxonomy
from .params import GeneratorParams


@dataclass(frozen=True, slots=True)
class Cluster:
    """One potentially-maximal cluster of categories.

    Attributes
    ----------
    categories:
        The member category ids.
    itemsets:
        Potentially-large leaf itemsets drawn from the categories'
        children.
    itemset_weights:
        Normalized exponential pick probabilities, aligned with
        *itemsets*.
    corruption_levels:
        Per-itemset corruption level ``c`` (normal(0.5, 0.1), clamped to
        [0, 1]).
    """

    categories: Itemset
    itemsets: tuple[Itemset, ...]
    itemset_weights: tuple[float, ...]
    corruption_levels: tuple[float, ...]


@dataclass(frozen=True, slots=True)
class ClusterModel:
    """The complete consumer-choice model used to emit transactions."""

    clusters: tuple[Cluster, ...]
    cluster_weights: tuple[float, ...]


def leaf_parent_categories(taxonomy: Taxonomy) -> list[int]:
    """Categories "one level above the leaf level".

    A category qualifies when all of its children are leaves; when the
    taxonomy is ragged (leaves at several depths) this is the natural
    generalization.
    """
    return [
        category
        for category in sorted(taxonomy.categories)
        if all(taxonomy.is_leaf(child) for child in taxonomy.children(category))
    ]


def _normalized_exponential(count: int, rng: np.random.Generator) -> np.ndarray:
    weights = rng.exponential(scale=1.0, size=count)
    total = weights.sum()
    if total <= 0.0:  # pragma: no cover - exponential draws are positive
        return np.full(count, 1.0 / count)
    return weights / total


def build_cluster_model(
    taxonomy: Taxonomy,
    params: GeneratorParams,
    rng: np.random.Generator,
) -> ClusterModel:
    """Draw the cluster/itemset model for *taxonomy* under *params*.

    Raises
    ------
    GenerationError
        When the taxonomy has no leaf-parent categories to cluster.
    """
    eligible = leaf_parent_categories(taxonomy)
    if not eligible:
        raise GenerationError(
            "taxonomy has no categories whose children are all leaves; "
            "cannot build the cluster model"
        )
    eligible_array = np.array(eligible)
    corruption_std = float(np.sqrt(params.corruption_variance))

    clusters: list[Cluster] = []
    for _ in range(params.num_clusters):
        size = max(1, int(rng.poisson(params.avg_cluster_size)))
        size = min(size, len(eligible))
        members = rng.choice(eligible_array, size=size, replace=False)
        categories = itemset(int(member) for member in members)

        pool: list[int] = []
        for category in categories:
            pool.extend(taxonomy.children(category))
        pool_array = np.array(sorted(set(pool)))

        count = max(1, int(rng.poisson(params.avg_itemsets_per_cluster)))
        member_itemsets: list[Itemset] = []
        corruption: list[float] = []
        for _ in range(count):
            want = max(1, int(rng.poisson(params.avg_itemset_size)))
            want = min(want, len(pool_array))
            chosen = rng.choice(pool_array, size=want, replace=False)
            member_itemsets.append(itemset(int(item) for item in chosen))
            level = rng.normal(params.corruption_mean, corruption_std)
            corruption.append(float(min(1.0, max(0.0, level))))

        weights = _normalized_exponential(len(member_itemsets), rng)
        clusters.append(
            Cluster(
                categories=categories,
                itemsets=tuple(member_itemsets),
                itemset_weights=tuple(float(w) for w in weights),
                corruption_levels=tuple(corruption),
            )
        )

    cluster_weights = _normalized_exponential(len(clusters), rng)
    return ClusterModel(
        clusters=tuple(clusters),
        cluster_weights=tuple(float(w) for w in cluster_weights),
    )
