"""Unit tests for the Apriori hash tree."""

import random
from itertools import combinations

import pytest

from repro.errors import ConfigError
from repro.mining.hash_tree import HashTree


def brute_counts(candidates, transactions):
    counts = {candidate: 0 for candidate in candidates}
    for row in transactions:
        row_set = set(row)
        for candidate in candidates:
            if set(candidate) <= row_set:
                counts[candidate] += 1
    return counts


class TestConstruction:
    def test_mixed_sizes_rejected(self):
        with pytest.raises(ConfigError):
            HashTree([(1, 2), (1, 2, 3)])

    def test_empty_candidate_rejected(self):
        with pytest.raises(ConfigError):
            HashTree([()])

    def test_duplicates_collapse(self):
        tree = HashTree([(1, 2), (1, 2)])
        assert len(tree) == 1

    def test_bad_branching_rejected(self):
        with pytest.raises(ConfigError):
            HashTree([(1,)], branching=1)

    def test_bad_leaf_capacity_rejected(self):
        with pytest.raises(ConfigError):
            HashTree([(1,)], leaf_capacity=0)

    def test_candidate_size_property(self):
        assert HashTree([(3, 4, 5)]).candidate_size == 3
        assert HashTree([]).candidate_size == 0


class TestCounting:
    def test_simple_match(self):
        tree = HashTree([(1, 2), (2, 3)])
        tree.add_transaction((1, 2, 3))
        assert tree.counts() == {(1, 2): 1, (2, 3): 1}

    def test_no_match(self):
        tree = HashTree([(1, 5)])
        tree.add_transaction((1, 2, 3))
        assert tree.counts() == {(1, 5): 0}

    def test_short_transaction_skipped(self):
        tree = HashTree([(1, 2, 3)])
        tree.add_transaction((1, 2))
        assert tree.counts() == {(1, 2, 3): 0}

    def test_no_double_count_on_collisions(self):
        # Items 1 and 9 collide mod 8; the same leaf is reachable twice.
        tree = HashTree([(1, 9)], branching=8, leaf_capacity=1)
        tree.add_transaction((1, 9, 17))
        assert tree.counts() == {(1, 9): 1}

    def test_count_all(self):
        tree = HashTree([(1, 2)])
        counts = tree.count_all([(1, 2), (1, 2, 3), (2, 3)])
        assert counts == {(1, 2): 2}

    def test_splitting_preserves_counts(self):
        # Force deep splits with tiny leaves and verify against brute force.
        candidates = list(combinations(range(10), 3))
        transactions = [
            tuple(sorted(random.Random(i).sample(range(10), 6)))
            for i in range(50)
        ]
        tree = HashTree(candidates, branching=4, leaf_capacity=2)
        assert tree.count_all(transactions) == brute_counts(
            candidates, transactions
        )

    def test_matches_brute_force_on_random_data(self):
        rng = random.Random(99)
        universe = range(30)
        candidates = {
            tuple(sorted(rng.sample(universe, 4))) for _ in range(80)
        }
        transactions = [
            tuple(sorted(rng.sample(universe, rng.randint(4, 12))))
            for _ in range(120)
        ]
        tree = HashTree(candidates)
        assert tree.count_all(transactions) == brute_counts(
            candidates, transactions
        )

    def test_single_item_candidates(self):
        tree = HashTree([(1,), (2,), (3,)])
        tree.add_transaction((1, 3))
        assert tree.counts() == {(1,): 1, (2,): 0, (3,): 1}
