"""Effect of taxonomy granularity on negative-rule quality (Section 2.1.3).

The paper argues that fine-granularity taxonomies (small fan-out, more
levels) yield better negative rules than coarse ones: with many children
per category the per-child relative support shrinks, expectations get
noisy, and the candidate count explodes with fan-out.

This example mines the *same* transactions twice — once under a
two-level coarse taxonomy, once under a finer re-grouping of the same
leaves — and compares candidate counts and rule interest distributions.

Run with::

    python examples/taxonomy_granularity.py
"""

import random
import statistics

from repro import mine_negative_rules
from repro.core.estimate import estimate_candidates_per_itemset
from repro.taxonomy import taxonomy_from_nested

BRANDS = {
    "cola": ["ColaA", "ColaB"],
    "lemon soda": ["LemonA", "LemonB"],
    "still water": ["StillA", "StillB"],
    "sparkling water": ["SparkA", "SparkB"],
    "salted chips": ["SaltA", "SaltB"],
    "paprika chips": ["PapA", "PapB"],
}

FINE = {
    "drinks": {
        "soda": {"cola": BRANDS["cola"], "lemon soda": BRANDS["lemon soda"]},
        "water": {
            "still water": BRANDS["still water"],
            "sparkling water": BRANDS["sparkling water"],
        },
    },
    "snacks": {
        "chips": {
            "salted chips": BRANDS["salted chips"],
            "paprika chips": BRANDS["paprika chips"],
        },
    },
}

# Coarse: every brand directly under one of two huge categories.
COARSE = {
    "drinks": (
        BRANDS["cola"] + BRANDS["lemon soda"]
        + BRANDS["still water"] + BRANDS["sparkling water"]
    ),
    "snacks": BRANDS["salted chips"] + BRANDS["paprika chips"],
}


def build_baskets(seed: int = 3) -> list[list[str]]:
    """Cola drinkers eat salted chips; lemon-soda drinkers avoid them."""
    rng = random.Random(seed)
    rows = []
    for _ in range(4000):
        basket = set()
        if rng.random() < 0.5:
            drink_kind = "cola" if rng.random() < 0.5 else "lemon soda"
            basket.add(rng.choice(BRANDS[drink_kind]))
            if rng.random() < 0.6:
                if drink_kind == "cola":
                    chips = "salted chips" if rng.random() < 0.9 else \
                        "paprika chips"
                else:
                    chips = "paprika chips" if rng.random() < 0.9 else \
                        "salted chips"
                basket.add(rng.choice(BRANDS[chips]))
        else:
            basket.add(rng.choice(
                BRANDS["still water"] + BRANDS["sparkling water"]
            ))
        rows.append(sorted(basket))
    return rows


def mine(tree, baskets):
    taxonomy = taxonomy_from_nested(tree)
    rows = [[taxonomy.id_of(name) for name in basket]
            for basket in baskets]
    result = mine_negative_rules(rows, taxonomy, minsup=0.03, minri=0.3)
    return taxonomy, result


def main() -> None:
    baskets = build_baskets()

    print("analytic candidate estimate per large pair "
          "(Section 2.1.2 formula):")
    for label, fanout in (("fine, f=2", 2.0), ("coarse, f=8", 8.0)):
        estimate = estimate_candidates_per_itemset(2, fanout)
        print(f"  {label:<12} -> ~{estimate:.0f} candidates")
    print()

    for label, tree in (("FINE", FINE), ("COARSE", COARSE)):
        taxonomy, result = mine(tree, baskets)
        ri_values = [rule.ri for rule in result.rules]
        print(f"=== {label} taxonomy "
              f"(height={taxonomy.height}, "
              f"avg fanout={taxonomy.fanout():.1f}) ===")
        print("  candidates generated : "
              f"{result.stats.candidates_generated}")
        print("  negative itemsets    : "
              f"{result.stats.negative_itemsets}")
        print(f"  rules                : {len(result.rules)}")
        if ri_values:
            print("  median RI            : "
                  f"{statistics.median(ri_values):.3f}")
        for rule in result.rules[:4]:
            print("    " + rule.format(taxonomy))
        print()


if __name__ == "__main__":
    main()
