"""Negative rule generation (paper Section 2.3, Figure 4).

For each negative itemset ``n`` the generator emits rules
``(n - h) =/=> h`` over consequents ``h`` grown level-wise with
``apriori-gen`` — the paper's extension of the classic *ap-genrules*
procedure. A consequent ``h`` survives a level only when all of:

* ``h`` is a large itemset (the consequent of a rule must meet MinSup);
* the antecedent ``n - h`` is a large itemset (same requirement on the
  antecedent; Figure 4 prunes the consequent when it fails);
* ``RI = (E[sup(n)] - sup(n)) / sup(n - h) >= MinRI`` — growing the
  consequent only shrinks the antecedent, whose support can then only be
  larger, so a failed RI can never recover on a superset consequent.

``prune_small_antecedents=False`` disables the second pruning (but still
refuses to *emit* such rules) so the exhaustive behavior can be compared
in tests: Figure 4's pruning is a heuristic — subsets of a small
antecedent may themselves be large.

The third condition is the default measure's; generation is
parameterized by any registered
:class:`~repro.measures.registry.InterestMeasure`, whose ``rule_score``
/ ``admits_rule`` replace the RI arithmetic (and whose
``monotone_prune`` capability decides whether a failed score prunes
superset consequents the way RI's monotonicity allows).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from .._util import check_fraction
from ..itemset import Itemset, difference
from ..measures.registry import InterestMeasure, create_measure
from ..mining.apriori import apriori_gen
from ..mining.itemset_index import LargeItemsetIndex
from ..serialize import check_payload, header
from ..taxonomy.tree import Taxonomy
from .negmining import NegativeItemset


@dataclass(frozen=True, slots=True)
class NegativeRule:
    """A strong negative association rule ``antecedent =/=> consequent``.

    Attributes
    ----------
    antecedent, consequent:
        Disjoint non-empty canonical itemsets partitioning the negative
        itemset.
    ri:
        The admitting measure's rule score — the paper's rule interest
        for the default ``"ri"`` measure, the respective score for an
        alternative measure (see :attr:`measure`).
    expected_support, actual_support:
        Expectation vs measurement for ``antecedent ∪ consequent``.
    antecedent_support, consequent_support:
        Fractional supports of the sides (both >= MinSup by construction).
    measure:
        Name of the registered interestingness measure that admitted
        (and scored) this rule; provenance carried through serialization
        into the serving layer's rule index.
    """

    antecedent: Itemset
    consequent: Itemset
    ri: float
    expected_support: float
    actual_support: float
    antecedent_support: float
    consequent_support: float
    measure: str = "ri"

    @property
    def items(self) -> Itemset:
        """The underlying negative itemset."""
        return tuple(sorted(self.antecedent + self.consequent))

    def as_dict(self) -> dict:
        """A versioned JSON-able payload (see :mod:`repro.serialize`).

        Round-trips through :meth:`from_dict`; the serving layer's rule
        index persists rules in exactly this form.
        """
        return {
            **header("negative-rule"),
            "antecedent": list(self.antecedent),
            "consequent": list(self.consequent),
            "ri": self.ri,
            "expected_support": self.expected_support,
            "actual_support": self.actual_support,
            "antecedent_support": self.antecedent_support,
            "consequent_support": self.consequent_support,
            "measure": self.measure,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "NegativeRule":
        """Rebuild a rule from :meth:`as_dict` output.

        ``measure`` is read leniently (``"ri"`` when absent) so rule
        indexes compiled before measure provenance existed keep
        loading.
        """
        check_payload(payload, "negative-rule")
        return cls(
            antecedent=tuple(payload["antecedent"]),
            consequent=tuple(payload["consequent"]),
            ri=payload["ri"],
            expected_support=payload["expected_support"],
            actual_support=payload["actual_support"],
            antecedent_support=payload["antecedent_support"],
            consequent_support=payload["consequent_support"],
            measure=payload.get("measure", "ri"),
        )

    def format(self, taxonomy: Taxonomy | None = None) -> str:
        """Render the rule, using taxonomy names when available."""
        if taxonomy is not None:
            name_of = taxonomy.name_of
        else:
            name_of = str
        left = ", ".join(name_of(item) for item in self.antecedent)
        right = ", ".join(name_of(item) for item in self.consequent)
        label = "RI" if self.measure == "ri" else self.measure
        return (
            f"{{{left}}} =/=> {{{right}}} "
            f"({label}={self.ri:.3f}, expected={self.expected_support:.4f}, "
            f"actual={self.actual_support:.4f})"
        )


def generate_negative_rules(
    negatives: Iterable[NegativeItemset],
    index: LargeItemsetIndex,
    minri: float,
    prune_small_antecedents: bool = True,
    measure: "str | InterestMeasure | None" = None,
    minsup: float | None = None,
) -> list[NegativeRule]:
    """Generate every strong negative rule from the negative itemsets.

    Parameters
    ----------
    negatives:
        Output of a negative miner.
    index:
        The generalized large itemsets (for side supports and largeness
        tests).
    minri:
        Minimum rule interest.
    prune_small_antecedents:
        Follow Figure 4 and stop extending a consequent whose antecedent
        is small (default), or keep extending for exhaustive enumeration.
    measure:
        The interestingness measure scoring and admitting splits — a
        registered spec or instance; ``None`` means the paper's RI.
    minsup:
        Minimum support, for measures whose rule threshold needs it
        (``kong-interest``); the RI path ignores it.

    Returns
    -------
    list of NegativeRule, sorted by descending score.
    """
    check_fraction(minri, "minri")
    if measure is None:
        measure = create_measure("ri")
    elif isinstance(measure, str):
        measure = create_measure(measure)
    rules: list[NegativeRule] = []
    for negative in negatives:
        rules.extend(
            _rules_for_itemset(negative, index, minri,
                               prune_small_antecedents, measure, minsup)
        )
    rules.sort(key=lambda rule: (-rule.ri, rule.antecedent, rule.consequent))
    return rules


def _rules_for_itemset(
    negative: NegativeItemset,
    index: LargeItemsetIndex,
    minri: float,
    prune_small_antecedents: bool,
    measure: InterestMeasure,
    minsup: float | None,
) -> Iterator[NegativeRule]:
    items = negative.items
    size = len(items)
    frontier: list[Itemset] = []
    for drop in range(size):
        consequent = (items[drop],)
        keep, rule = _evaluate(
            negative, consequent, index, minri, prune_small_antecedents,
            measure, minsup,
        )
        if rule is not None:
            yield rule
        if keep:
            frontier.append(consequent)

    while frontier and len(frontier[0]) + 1 < size:
        next_frontier: list[Itemset] = []
        for consequent in apriori_gen(frontier):
            keep, rule = _evaluate(
                negative, consequent, index, minri,
                prune_small_antecedents, measure, minsup,
            )
            if rule is not None:
                yield rule
            if keep:
                next_frontier.append(consequent)
        frontier = next_frontier


def _evaluate(
    negative: NegativeItemset,
    consequent: Itemset,
    index: LargeItemsetIndex,
    minri: float,
    prune_small_antecedents: bool,
    measure: InterestMeasure,
    minsup: float | None,
) -> tuple[bool, NegativeRule | None]:
    """Judge one consequent; return (keep-in-frontier, emitted rule)."""
    if not index.is_large(consequent):
        return False, None
    antecedent = difference(negative.items, consequent)
    if not index.is_large(antecedent):
        # Figure 4 deletes the consequent here; exhaustive mode keeps
        # extending (a superset consequent means a *smaller* antecedent,
        # which may be large even though this one is not).
        return (not prune_small_antecedents), None
    score = measure.rule_score(
        negative.expected_support,
        negative.actual_support,
        index.support(antecedent),
        index.support(consequent),
    )
    if not measure.admits_rule(score, minsup, minri):
        # RI can never recover on a superset consequent (the antecedent
        # only shrinks, its support only grows); measures without that
        # monotonicity must keep extending.
        return (not measure.capabilities.monotone_prune), None
    rule = NegativeRule(
        antecedent=antecedent,
        consequent=consequent,
        ri=score,
        expected_support=negative.expected_support,
        actual_support=negative.actual_support,
        antecedent_support=index.support(antecedent),
        consequent_support=index.support(consequent),
        measure=measure.name,
    )
    return True, rule
