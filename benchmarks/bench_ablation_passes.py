"""A6 — Ablation: data-pass accounting, Naive (2n) vs Improved (n+1).

The paper's core efficiency argument is pass counts: the Naive schedule
re-reads the database twice per level while the Improved one defers all
negative counting to a single extra pass. The database's scan counter
verifies the claim directly.

Run directly::

    python -m benchmarks.bench_ablation_passes
"""

import pytest

from repro.core.negmining import ImprovedNegativeMiner, NaiveNegativeMiner

from .common import MINRI, dataset, support_sweep

MINSUP = support_sweep()[0]


def _run(miner_class):
    data = dataset("short")
    data.database.reset_scans()
    output = miner_class(
        data.database, data.taxonomy, MINSUP, MINRI
    ).mine()
    return output


@pytest.mark.parametrize(
    "miner_class", [ImprovedNegativeMiner, NaiveNegativeMiner],
    ids=["improved", "naive"],
)
def test_miner_passes(benchmark, miner_class):
    output = benchmark.pedantic(
        _run, args=(miner_class,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        passes=output.stats.data_passes,
        levels=output.large_itemsets.max_size,
        negatives=output.stats.negative_itemsets,
    )


def main() -> None:
    print(f"=== A6: pass accounting at MinSup={MINSUP} ===")
    improved = _run(ImprovedNegativeMiner)
    naive = _run(NaiveNegativeMiner)
    levels = improved.large_itemsets.max_size
    print(f"  levels (n)        : {levels}")
    print(
        f"  improved passes   : {improved.stats.data_passes} "
        f"(paper: n + 1 = {levels + 1})"
    )
    print(
        f"  naive passes      : {naive.stats.data_passes} "
        f"(paper: ~2n = {2 * levels})"
    )
    same = {n.items for n in improved.negatives} == {
        n.items for n in naive.negatives
    }
    print(f"  identical outputs : {same} (must be True)")


if __name__ == "__main__":
    main()
