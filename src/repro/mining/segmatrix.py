"""Segmented, memory-mapped packed matrix for out-of-core counting.

The paper's efficiency argument assumes the database does not fit in
memory — passes cost real IO — yet the fast engines (``"numpy"``,
``"cached"`` packed, ``"parallel-shm"``) all hold the entire bit-packed
word matrix in RAM and invalidate it wholesale through one global
fingerprint. This module splits the row dimension into fixed-size
*segments*: each segment packs its own rows into a ``uint64`` word block
(one row per item occurring in the segment), spills the block to a file
under a private spill directory, and re-opens it on demand as a
read-only ``np.memmap``. Counting iterates the segments and sums the
per-segment popcounts — integer addition over disjoint row ranges, so
the totals are bit-identical to packing everything at once
(property-tested against the ``"brute"`` oracle).

Three properties fall out of the layout:

bounded residency
    At most ``max_resident_bytes`` of segment blocks are kept open at a
    time (an LRU of blocks; evicting one drops the memmap, releasing
    both RSS and address space). A database far larger than RAM streams
    through a fixed-size working set — the Partition insight of the
    paper's authors (VLDB 1995) applied to the packed representation.

per-segment fingerprints
    Each segment carries a row-chained fingerprint
    (``fp = hash((fp, row))`` over its rows). A resync compares per
    segment and repacks only the segments whose rows changed; appends
    are recognized through the database's ``append_epoch()`` and touch
    only the tail — the last partial segment is *extended* in place
    (bits OR-ed at the old row offset, one block rewritten) and whole
    new segments are packed from the remaining tail rows. Appending 1 %%
    new rows therefore repacks O(append) bits, not O(|D|).

segment-aligned parallelism
    A :class:`Segment` is picklable *without* its block: workers receive
    ``(path, nodes, words)`` descriptors and ``mmap`` their own blocks,
    so nothing row-shaped — and nothing block-shaped — crosses a pipe
    (see ``repro.parallel.engine``). Spill files are never rewritten in
    place (every repack writes a fresh file and unlinks the old name),
    so a worker holding a stale mapping keeps reading consistent bits.

Spill directories are temporary and crash-safe: every live matrix holds
a ``weakref.finalize`` on its directory (runs on garbage collection
*and* interpreter exit) and an atexit sweep closes whatever a caller
forgot, mirroring the shared-memory leak guard of
:mod:`repro.parallel.shm`. :func:`live_spill_dirs` exposes the live set
for leak tests.
"""

from __future__ import annotations

import atexit
import shutil
import tempfile
import weakref
from collections.abc import Collection, Iterable
from pathlib import Path

import numpy as np

from .._util import check_positive
from ..errors import DatabaseError
from ..itemset import Itemset
from ..obs import api as obs
from ..taxonomy.tree import Taxonomy
from . import bitpack

#: Default rows per segment. At the paper's full scale (|D| = 50,000)
#: this yields ~6 segments of ~1 KiB-per-item blocks; large enough that
#: per-segment Python overhead is negligible, small enough that one
#: block always fits comfortably in memory.
DEFAULT_SEGMENT_ROWS = 8192

#: Seed of every segment's row-chained fingerprint. The chain lets the
#: append path extend a stored fingerprint with only the new rows and
#: arrive at exactly the value a from-scratch pack of the full chunk
#: would compute.
_FP_SEED = 0x5E9


def chain_fingerprint(fingerprint: int, rows: Iterable[Itemset]) -> int:
    """Extend a row-chained segment fingerprint over *rows*."""
    for row in rows:
        fingerprint = hash((fingerprint, row))
    return fingerprint


class Segment:
    """One fixed-capacity row range of a :class:`SegmentedPackedMatrix`.

    Holds everything needed to count against the segment *except* the
    word block itself: the block lives either in the owning matrix's
    resident LRU or on disk at :attr:`path`. Instances are picklable
    (the parallel engine ships them as worker payloads; the worker
    memory-maps :attr:`path` on its side).

    The block on disk is ``(len(nodes), words)`` little-endian
    ``uint64``, *words* being the segment's fixed capacity width
    (``words_for(segment_rows)``) — constant across extensions, so
    filling the segment never reshapes the block. Bits beyond
    :attr:`rows` are zero and popcount-neutral.
    """

    __slots__ = (
        "index", "start", "rows", "words", "nodes", "path", "fingerprint",
    )

    def __init__(
        self,
        index: int,
        start: int,
        rows: int,
        words: int,
        nodes: np.ndarray,
        path: str,
        fingerprint: int,
    ) -> None:
        self.index = index
        self.start = start
        self.rows = rows
        self.words = words
        self.nodes = nodes
        self.path = path
        self.fingerprint = fingerprint

    @property
    def stop(self) -> int:
        return self.start + self.rows

    @property
    def nbytes(self) -> int:
        """Size of the spilled word block."""
        return len(self.nodes) * self.words * 8

    def open_block(self) -> np.ndarray:
        """Memory-map the spilled block read-only."""
        return np.memmap(
            self.path, dtype="<u8", mode="r",
            shape=(len(self.nodes), self.words),
        )

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state):
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)

    def __repr__(self) -> str:
        return (
            f"Segment(index={self.index}, start={self.start}, "
            f"rows={self.rows}, items={len(self.nodes)})"
        )


def count_segment_block(
    segment: Segment,
    block: np.ndarray,
    candidates: Collection[Itemset],
    taxonomy: Taxonomy | None = None,
    batch_words: int | None = None,
    stats=None,
) -> dict[Itemset, int]:
    """Count all candidates within one segment's word block.

    Shared by the serial matrix and the parallel workers (which open
    *block* from their own memmap). A transient
    :class:`~repro.mining.bitpack.PackedMatrix` wraps the block so
    taxonomy candidates get the usual descendant-OR treatment; the
    wrapper's row count is the capacity in bits (``words * 64``) so its
    word width matches the capacity-padded block — the pad bits are zero
    and popcount-neutral.
    """
    matrix = bitpack.PackedMatrix(segment.words * 64, segment.nodes, block)
    if stats is not None:
        # Gauge: the kernel never sees more than one segment block at a
        # time — this is the footprint the resident budget bounds.
        stats.matrix_bytes = max(stats.matrix_bytes, matrix.nbytes)
    return matrix.count(
        candidates, taxonomy=taxonomy, batch_words=batch_words, stats=stats,
    )


#: Matrices with live spill directories; the atexit sweep removes
#: whatever a caller forgot so no temp directory outlives the process —
#: the spill-dir mirror of ``parallel.shm``'s segment leak guard.
_LIVE_MATRICES: "weakref.WeakSet[SegmentedPackedMatrix]" = weakref.WeakSet()


def live_spill_dirs() -> list[str]:
    """Spill directories currently owned by live matrices (leak tests)."""
    return sorted(
        str(matrix._dir) for matrix in _LIVE_MATRICES
        if matrix._dir is not None
    )


def _close_live_matrices() -> None:
    for matrix in list(_LIVE_MATRICES):
        matrix.close()


atexit.register(_close_live_matrices)


class SegmentedPackedMatrix:
    """A packed transaction matrix split into spillable row segments.

    Parameters
    ----------
    segment_rows:
        Rows per segment (default :data:`DEFAULT_SEGMENT_ROWS`). Need
        not divide the database size; the last segment is partial and
        grows in place on append until full.
    max_resident_bytes:
        Budget for concurrently open segment blocks. ``None`` keeps
        every block resident (still spilled, for workers and restarts).
        Must be at least one segment block to be honored exactly: the
        block being counted is always admitted.
    spill_dir:
        Parent directory for the private spill directory (default: the
        system temp dir). The matrix always creates — and owns — a fresh
        subdirectory; :meth:`close` removes it.
    """

    def __init__(
        self,
        segment_rows: int | None = None,
        max_resident_bytes: int | None = None,
        spill_dir: str | None = None,
    ) -> None:
        self.segment_rows = check_positive(
            segment_rows if segment_rows is not None
            else DEFAULT_SEGMENT_ROWS,
            "segment_rows",
        )
        if max_resident_bytes is not None:
            check_positive(max_resident_bytes, "max_resident_bytes")
        self.max_resident_bytes = max_resident_bytes
        self.capacity_words = bitpack.words_for(self.segment_rows)
        self._dir: Path | None = Path(
            tempfile.mkdtemp(prefix="repro-segments-", dir=spill_dir)
        )
        self._finalizer = weakref.finalize(
            self, shutil.rmtree, str(self._dir), True
        )
        self._segments: list[Segment] = []
        # segment index -> (block, nbytes), LRU order. Evicting drops the
        # last reference to the block (plain array or memmap), releasing
        # memory *and* mapped address space.
        self._resident: dict[int, tuple[np.ndarray, int]] = {}
        self._resident_bytes = 0
        self._file_serial = 0
        self._token = None
        self._epoch = None
        self._synced_rows = 0
        _LIVE_MATRICES.add(self)

    # -- construction --------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Itemset],
        segment_rows: int | None = None,
        max_resident_bytes: int | None = None,
        spill_dir: str | None = None,
        stats=None,
    ) -> "SegmentedPackedMatrix":
        """One-shot matrix over materialized rows (no sync source)."""
        matrix = cls(
            segment_rows=segment_rows,
            max_resident_bytes=max_resident_bytes,
            spill_dir=spill_dir,
        )
        try:
            matrix._sync_full(rows, stats)
        except BaseException:
            matrix.close()
            raise
        return matrix

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Drop all blocks and remove the spill directory."""
        self._resident.clear()
        self._resident_bytes = 0
        self._segments = []
        self._synced_rows = 0
        self._token = None
        self._epoch = None
        if self._finalizer.detach() is not None and self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
        self._dir = None
        _LIVE_MATRICES.discard(self)

    @property
    def closed(self) -> bool:
        return self._dir is None

    def __enter__(self) -> "SegmentedPackedMatrix":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection -------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self._synced_rows

    @property
    def segments(self) -> tuple[Segment, ...]:
        return tuple(self._segments)

    @property
    def n_segments(self) -> int:
        return len(self._segments)

    @property
    def spilled_bytes(self) -> int:
        """Total bytes of word blocks persisted under the spill dir."""
        return sum(segment.nbytes for segment in self._segments)

    @property
    def resident_bytes(self) -> int:
        """Bytes of segment blocks currently open."""
        return self._resident_bytes

    @property
    def spill_dir(self) -> Path | None:
        return self._dir

    # -- synchronization -----------------------------------------------

    def sync(self, source, stats=None) -> None:
        """Bring the matrix up to date with *source*, reusing segments.

        Three paths, cheapest first:

        1. *Unchanged* — the source's ``append_epoch()`` (or its
           ``cache_token()``) matches the last sync: nothing to do.
        2. *Append* — same epoch identity, more rows: read only the tail
           (``tail_rows``), extend the last partial segment in place and
           pack whole new segments from the rest. O(append), no pass.
        3. *Resync* — anything else: stream all rows (one physical
           pass), fingerprint each chunk, reuse segments whose
           fingerprints still match and repack the rest.
        """
        if self.closed:
            raise DatabaseError("segmented matrix is closed")
        epoch_fn = getattr(source, "append_epoch", None)
        token_fn = getattr(source, "cache_token", None)
        epoch, n_rows = (None, None) if epoch_fn is None else epoch_fn()
        if (
            self._segments
            and epoch is not None
            and epoch is self._epoch
            and n_rows is not None
        ):
            if n_rows == self._synced_rows:
                if stats is not None:
                    stats.hits += 1
                return
            if n_rows > self._synced_rows:
                self._sync_append(source, n_rows, stats)
                self._token = token_fn() if token_fn is not None else None
                if stats is not None:
                    stats.extensions += 1
                return
        token = token_fn() if token_fn is not None else None
        if self._segments and token is not None and (
            token is self._token or token == self._token
        ):
            if stats is not None:
                stats.hits += 1
            return
        if stats is not None:
            stats.misses += 1
            if self._segments:
                stats.invalidations += 1
        self._sync_full(source, stats)
        self._token = token
        self._epoch = epoch

    def _sync_full(self, source, stats) -> None:
        """Stream all rows; reuse fingerprint-matching segments."""
        rows = (
            source.physical_scan()
            if hasattr(source, "physical_scan")
            else iter(source)
        )
        old = self._segments
        self._segments = []
        with obs.span("segments.sync") as span:
            total = 0
            index = 0
            reused = 0
            for chunk in self._chunks(rows):
                fingerprint = chain_fingerprint(_FP_SEED, chunk)
                previous = old[index] if index < len(old) else None
                if (
                    previous is not None
                    and previous.rows == len(chunk)
                    and previous.fingerprint == fingerprint
                ):
                    self._segments.append(previous)
                    reused += 1
                else:
                    if previous is not None:
                        self._drop_segment(previous)
                    self._pack_segment(index, total, chunk, fingerprint,
                                       stats)
                total += len(chunk)
                index += 1
            for leftover in old[index:]:
                self._drop_segment(leftover)
            self._synced_rows = total
            span.annotate("segments", len(self._segments))
            span.annotate("reused", reused)
        if stats is not None:
            stats.segments_reused += reused
            self._record_gauges(stats)

    def _sync_append(self, source, n_rows: int, stats) -> None:
        """Absorb appended rows: extend the tail, pack new segments."""
        start = self._synced_rows
        tail = list(_tail_rows(source, start))
        if len(tail) != n_rows - start:
            # The source lied about its append; fall back to a resync.
            self._sync_full(source, stats)
            return
        with obs.span("segments.append") as span:
            span.annotate("rows", len(tail))
            untouched = len(self._segments)
            last = self._segments[-1]
            if last.rows < self.segment_rows:
                take = min(self.segment_rows - last.rows, len(tail))
                self._extend_segment(last, tail[:take], stats)
                tail = tail[take:]
                start += take
                untouched -= 1
            index = len(self._segments)
            for chunk in self._chunks(iter(tail)):
                fingerprint = chain_fingerprint(_FP_SEED, chunk)
                self._pack_segment(index, start, chunk, fingerprint, stats)
                start += len(chunk)
                index += 1
            self._synced_rows = n_rows
        if stats is not None:
            stats.segments_reused += untouched
            self._record_gauges(stats)

    def _chunks(self, rows) -> Iterable[list[Itemset]]:
        chunk: list[Itemset] = []
        for row in rows:
            chunk.append(row)
            if len(chunk) == self.segment_rows:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    # -- segment maintenance -------------------------------------------

    def _spill_path(self, index: int) -> Path:
        # A fresh name per (re)pack: files are never rewritten in place,
        # so a parallel worker holding a mapping of the old file keeps
        # reading consistent bits until it drops the map.
        self._file_serial += 1
        return self._dir / f"seg{index:06d}.{self._file_serial}.u64"

    def _pack_segment(
        self, index: int, start: int, chunk: list[Itemset],
        fingerprint: int, stats,
    ) -> Segment:
        with obs.span("segments.pack") as span:
            span.annotate("rows", len(chunk))
            packed = bitpack.PackedMatrix.from_rows(chunk)
            block = np.zeros(
                (len(packed.nodes), self.capacity_words), dtype="<u8"
            )
            block[:, :packed.n_words] = packed.words
        path = self._spill_path(index)
        block.tofile(path)
        segment = Segment(
            index, start, len(chunk), self.capacity_words,
            packed.nodes, str(path), fingerprint,
        )
        if index < len(self._segments):
            self._segments[index] = segment
        else:
            self._segments.append(segment)
        self._admit(segment, block, stats)
        if stats is not None:
            stats.segments_packed += 1
        return segment

    def _extend_segment(
        self, segment: Segment, tail: list[Itemset], stats,
    ) -> None:
        """OR the tail rows into the partial last segment, in place.

        O(tail) bit writes plus one block rewrite — never a repack of
        the segment's existing rows.
        """
        block, _ = self._resident.get(segment.index, (None, 0))
        if block is None:
            block = segment.open_block()
            if stats is not None:
                stats.segments_mmap_reads += 1
        # Pack the tail on its own (one vectorized packbits), then shift
        # the whole word block left by the segment's bit offset and OR
        # it in with a single row scatter — no per-item Python loop.
        packed_tail = bitpack.PackedMatrix.from_rows(tail)
        if len(np.setdiff1d(packed_tail.nodes, segment.nodes)):
            nodes = np.union1d(segment.nodes, packed_tail.nodes)
            grown = np.zeros((len(nodes), segment.words), dtype="<u8")
            grown[np.searchsorted(nodes, segment.nodes)] = block
        else:
            nodes = segment.nodes
            grown = np.array(block, dtype="<u8")
        offset_words, offset_bits = segment.rows >> 6, segment.rows & 63
        new_rows = segment.rows + len(tail)
        tail_words = np.ascontiguousarray(packed_tail.words, dtype="<u8")
        if offset_bits:
            shifted = np.zeros(
                (tail_words.shape[0], tail_words.shape[1] + 1), dtype="<u8"
            )
            shifted[:, :-1] = tail_words << np.uint64(offset_bits)
            shifted[:, 1:] |= tail_words >> np.uint64(64 - offset_bits)
        else:
            shifted = tail_words
        # Columns beyond the segment's fixed capacity are provably zero
        # (every tail bit lands below new_rows <= capacity bits).
        width = min(shifted.shape[1], segment.words - offset_words)
        slots = np.searchsorted(nodes, packed_tail.nodes)
        grown[slots, offset_words:offset_words + width] |= (
            shifted[:, :width]
        )
        old_path = Path(segment.path)
        path = self._spill_path(segment.index)
        grown.tofile(path)
        old_path.unlink(missing_ok=True)
        segment.rows = new_rows
        segment.nodes = nodes
        segment.path = str(path)
        segment.fingerprint = chain_fingerprint(segment.fingerprint, tail)
        self._replace_resident(segment, grown, stats)
        if stats is not None:
            stats.segments_extended += 1

    def _drop_segment(self, segment: Segment) -> None:
        entry = self._resident.pop(segment.index, None)
        if entry is not None:
            self._resident_bytes -= entry[1]
        Path(segment.path).unlink(missing_ok=True)

    # -- residency -----------------------------------------------------

    def _block(self, segment: Segment, stats) -> np.ndarray:
        entry = self._resident.get(segment.index)
        if entry is not None:
            # Refresh LRU position (dicts iterate in insertion order).
            self._resident.pop(segment.index)
            self._resident[segment.index] = entry
            return entry[0]
        self._evict_for(segment.nbytes)
        block = segment.open_block()
        if stats is not None:
            stats.segments_mmap_reads += 1
        self._resident[segment.index] = (block, segment.nbytes)
        self._resident_bytes += segment.nbytes
        self._record_gauges(stats)
        return block

    def _admit(self, segment: Segment, block: np.ndarray, stats) -> None:
        self._replace_resident(segment, block, stats)

    def _replace_resident(
        self, segment: Segment, block: np.ndarray, stats,
    ) -> None:
        entry = self._resident.pop(segment.index, None)
        if entry is not None:
            self._resident_bytes -= entry[1]
        self._evict_for(segment.nbytes)
        self._resident[segment.index] = (block, segment.nbytes)
        self._resident_bytes += segment.nbytes
        self._record_gauges(stats)

    def _evict_for(self, incoming: int) -> None:
        if self.max_resident_bytes is None:
            return
        while (
            self._resident
            and self._resident_bytes + incoming > self.max_resident_bytes
        ):
            index = next(iter(self._resident))
            _, nbytes = self._resident.pop(index)
            self._resident_bytes -= nbytes

    def _record_gauges(self, stats) -> None:
        if stats is None:
            return
        stats.segments_resident_bytes = max(
            stats.segments_resident_bytes, self._resident_bytes
        )
        stats.segments_spilled_bytes = max(
            stats.segments_spilled_bytes, self.spilled_bytes
        )

    # -- counting ------------------------------------------------------

    def count(
        self,
        candidates: Collection[Itemset],
        taxonomy: Taxonomy | None = None,
        batch_words: int | None = None,
        stats=None,
    ) -> dict[Itemset, int]:
        """Sum per-segment kernel counts; bounded resident blocks."""
        totals: dict[Itemset, int] = {
            candidate: 0 for candidate in candidates
        }
        if not totals:
            return totals
        for segment in self._segments:
            block = self._block(segment, stats)
            partial = count_segment_block(
                segment, block, candidates,
                taxonomy=taxonomy, batch_words=batch_words, stats=stats,
            )
            for items, count in partial.items():
                totals[items] += count
        return totals

    def __repr__(self) -> str:
        return (
            f"SegmentedPackedMatrix(rows={self._synced_rows}, "
            f"segments={len(self._segments)}, "
            f"segment_rows={self.segment_rows}, "
            f"resident={self._resident_bytes}, "
            f"spilled={self.spilled_bytes})"
        )


def _tail_rows(source, start: int):
    """The rows of *source* from *start* on, preferring ``tail_rows``.

    A database exposing ``tail_rows`` serves the slice without a pass
    (the in-memory database slices its tuple; the file-backed one seeks
    a byte checkpoint). Foreign sources fall back to one full physical
    pass with the head skipped.
    """
    tail_fn = getattr(source, "tail_rows", None)
    if tail_fn is not None:
        return tail_fn(start)
    from itertools import islice

    rows = (
        source.physical_scan()
        if hasattr(source, "physical_scan")
        else iter(source)
    )
    return list(islice(rows, start, None))
