"""Online rule-serving layer: compiled index, matcher, service, selective.

The mining side of the library produces rules *offline*; this package is
the *online* half of the production story: compile a mined rule set into
a compact inverted index (:mod:`.rule_index`), answer "which rules fire
on this basket?" at high QPS (:mod:`.matcher`, :mod:`.service`), and
mine rules around a single target item on demand instead of
materializing the full rule set (:mod:`.selective`, after Hahsler,
Buchta & Hornik, "Selective Association Rule Generation").

See DESIGN.md §10 for the architecture.
"""

from __future__ import annotations

from .matcher import BasketMatcher, Match, naive_match
from .rule_index import IndexedRule, RuleIndex
from .selective import SelectiveResult, mine_selective
from .service import LRUCache, RuleService, SelectiveContext, request_once

__all__ = [
    "BasketMatcher",
    "IndexedRule",
    "LRUCache",
    "Match",
    "RuleIndex",
    "RuleService",
    "SelectiveContext",
    "SelectiveResult",
    "mine_selective",
    "naive_match",
    "request_once",
]
