"""Delta push targets: how a watcher delivers deltas to a server.

The watcher only knows ``push(delta) -> response dict``; these factories
build the two useful shapes of that callable:

:func:`push_to_server`
    The production path — one ``op: reload_delta`` request over the
    newline-JSON wire protocol to a running ``repro serve`` process.
:func:`push_to_service`
    The in-process path — apply the delta directly to a
    :class:`~repro.serve.service.RuleService` instance, with library
    errors folded into ``{"error": ...}`` exactly like the wire
    dispatcher, so tests and benchmarks exercise the same contract
    without sockets.

Either way the watcher treats an ``{"error": ...}`` response as a
rejected push and raises :class:`~repro.errors.StreamError` without
advancing its own published state.
"""

from __future__ import annotations

from ..errors import ReproError
from ..serve.service import RuleService, request_once
from .delta import RuleIndexDelta


def push_to_server(
    host: str, port: int, timeout: float = 10.0
):
    """A push callable targeting a running rule server over TCP."""

    def _push(delta: RuleIndexDelta) -> dict:
        return request_once(
            host,
            port,
            {"op": "reload_delta", "delta": delta.to_payload()},
            timeout=timeout,
        )

    return _push


def push_to_service(service: RuleService):
    """A push callable applying deltas to an in-process service."""

    def _push(delta: RuleIndexDelta) -> dict:
        try:
            return service.apply_delta(delta)
        except ReproError as exc:
            return {"error": str(exc)}

    return _push
