"""Shard planning: split a transaction database into contiguous row ranges.

The paper's cost model is *passes over the data*; the parallel engine keeps
that model intact by splitting one logical pass into contiguous row ranges
(*shards*) that workers consume independently. A shard is a value object:
the half-open TID range ``[start, stop)`` it covers, the materialized
canonical rows of that range, and cheap derived metadata (row count, item
universe).

Pass accounting
---------------
:func:`plan_shards` reads its source exactly once. When the source is a
scan-counted database (:class:`~repro.data.database.TransactionDatabase` or
:class:`~repro.data.filedb.FileBackedDatabase`) that read goes through
``scan()`` and therefore increments the *parent* database's pass counter by
one — sharding a pass is still one pass. Whatever a worker then does with
its shard (including wrapping the rows in a fresh ``TransactionDatabase``
via :meth:`~repro.data.database.TransactionDatabase.slice`) happens in the
worker's own address space and does **not** increment the parent's
``scans`` counter.

Transport
---------
Shard rows are canonical itemsets (sorted tuples of ints) already, so
pickling a shard for worker transport ships plain tuples — no sets, no
re-canonicalization on either side. The lazily computed item universe is
deliberately dropped from the pickle (see :meth:`Shard.__reduce__`) and
rebuilt on demand in the worker.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .._util import check_positive
from ..errors import ConfigError
from ..itemset import Itemset


class Shard:
    """A contiguous slice of a transaction database, ready for transport.

    Parameters
    ----------
    start, stop:
        The half-open TID range this shard covers in the parent database.
    rows:
        The canonical transactions of that range. Trusted input: rows must
        already be canonical itemsets (sorted, de-duplicated tuples) —
        they are shipped and counted as-is.
    """

    __slots__ = ("start", "stop", "rows", "_items")

    def __init__(
        self, start: int, stop: int, rows: tuple[Itemset, ...]
    ) -> None:
        self.start = start
        self.stop = stop
        self.rows = tuple(rows)
        self._items: frozenset[int] | None = None

    @property
    def row_count(self) -> int:
        """Number of transactions in the shard."""
        return len(self.rows)

    @property
    def items(self) -> frozenset[int]:
        """The shard's item universe (computed lazily, cached)."""
        if self._items is None:
            universe: set[int] = set()
            for row in self.rows:
                universe.update(row)
            self._items = frozenset(universe)
        return self._items

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Shard):
            return NotImplemented
        return (
            self.start == other.start
            and self.stop == other.stop
            and self.rows == other.rows
        )

    def __hash__(self) -> int:
        return hash((self.start, self.stop, self.rows))

    def __reduce__(self):
        # Ship only the range and the raw row tuples; the cached item
        # universe is cheap to rebuild and often unused by workers.
        return (Shard, (self.start, self.stop, self.rows))

    def __repr__(self) -> str:
        return (
            f"Shard(start={self.start}, stop={self.stop}, "
            f"rows={self.row_count})"
        )


def shard_bounds(total: int, parts: int) -> list[int]:
    """The ``parts + 1`` boundary positions splitting *total* rows evenly.

    Uses the same rounding as the Partition miner's phase 1 so shard
    layouts are deterministic and consistent across subsystems.

    >>> shard_bounds(10, 4)
    [0, 2, 5, 8, 10]
    """
    check_positive(parts, "parts")
    return [round(part * total / parts) for part in range(parts + 1)]


def plan_shards(
    source,
    shard_rows: int | None = None,
    n_shards: int | None = None,
) -> list[Shard]:
    """Split *source* into contiguous, non-empty shards.

    Parameters
    ----------
    source:
        A scan-counted database (anything with a ``scan()`` method — one
        parent pass is recorded), or a plain iterable of canonical rows
        (no pass accounting, e.g. rows already materialized by a caller
        that scanned).
    shard_rows:
        Target rows per shard. Takes precedence over *n_shards*; the
        actual shard sizes may differ by one row because ranges are
        rounded to keep them contiguous.
    n_shards:
        Number of shards to produce (clamped to the row count so every
        shard is non-empty). Default 1 when *shard_rows* is also None.

    Returns
    -------
    list[Shard]
        Shards in TID order, jointly covering every row exactly once.
        Empty when *source* yields no rows.
    """
    if shard_rows is not None:
        check_positive(shard_rows, "shard_rows")
    if n_shards is not None:
        check_positive(n_shards, "n_shards")
    rows = _materialize(source)
    total = len(rows)
    if total == 0:
        return []
    if shard_rows is not None:
        parts = -(-total // shard_rows)  # ceil division
    else:
        parts = n_shards if n_shards is not None else 1
    parts = max(1, min(parts, total))
    bounds = shard_bounds(total, parts)
    return [
        Shard(start, stop, rows[start:stop])
        for start, stop in zip(bounds, bounds[1:])
    ]


def _materialize(source) -> tuple[Itemset, ...]:
    scan = getattr(source, "scan", None)
    if callable(scan):
        return tuple(scan())
    if isinstance(source, Sequence):
        return tuple(source)
    if isinstance(source, Iterable):
        return tuple(source)
    raise ConfigError(
        f"cannot shard {type(source).__name__}: expected a database with "
        "scan() or an iterable of rows"
    )
