"""Human-readable derivations of negative rules.

A negative rule is only as convincing as its expectation, so this module
reconstructs, for any mined rule or negative itemset, the full chain the
paper walks through in its examples: which large itemset predicted the
candidate, which taxonomy case was applied, the expected-support formula
with its actual numbers, the deviation against the ``MinSup × MinRI``
threshold, and the RI computation for the chosen antecedent.

The output mirrors the structure of Section 2.1.3's worked example, e.g.::

    negative itemset {Perrier, Bryers}
      derived from large itemset {Bryers, Evian} (case: siblings)
      E[sup] = sup({Bryers, Evian}) * sup(Perrier)/sup(Evian)
             = 0.1200 * 0.0800/0.2000 = 0.0480
      actual support 0.0050; deviation 0.0430
    rule {Perrier} =/=> {Bryers}
      RI = (0.0480 - 0.0050) / sup({Perrier}) = 0.0430 / 0.0800 = 0.537
"""

from __future__ import annotations

from dataclasses import dataclass

from ..itemset import Itemset
from ..mining.itemset_index import LargeItemsetIndex
from ..serialize import header
from ..taxonomy.tree import Taxonomy
from .candidates import CASE_CHILDREN
from .negmining import NegativeItemset
from .rulegen import NegativeRule


@dataclass(frozen=True, slots=True)
class Replacement:
    """One item substitution along a candidate's derivation."""

    new_item: int
    source_item: int
    new_support: float
    source_support: float

    @property
    def ratio(self) -> float:
        return self.new_support / self.source_support


@dataclass(frozen=True, slots=True)
class Derivation:
    """The reconstructed derivation of a negative itemset."""

    items: Itemset
    source: Itemset
    case: str
    base_support: float
    replacements: tuple[Replacement, ...]
    expected_support: float
    actual_support: float

    @property
    def deviation(self) -> float:
        return self.expected_support - self.actual_support

    def as_dict(self) -> dict:
        """The derivation under the shared versioned-payload envelope.

        Machine-readable twin of :func:`format_derivation` — same
        content, same schema conventions as the rule payloads (see
        :mod:`repro.serialize`), so reports and the serving layer emit
        derivations without ad-hoc dict building.
        """
        return {
            **header("derivation"),
            "items": list(self.items),
            "source": list(self.source),
            "case": self.case,
            "base_support": self.base_support,
            "replacements": [
                {
                    "new_item": replacement.new_item,
                    "source_item": replacement.source_item,
                    "new_support": replacement.new_support,
                    "source_support": replacement.source_support,
                }
                for replacement in self.replacements
            ],
            "expected_support": self.expected_support,
            "actual_support": self.actual_support,
            "deviation": self.deviation,
        }


def derive(
    negative: NegativeItemset,
    index: LargeItemsetIndex,
    taxonomy: Taxonomy,
) -> Derivation:
    """Reconstruct the expectation derivation of *negative*.

    Items shared between the negative itemset and its source were kept;
    the remaining items are paired through the taxonomy — by parenthood
    for the children case, by shared parent for the siblings case.
    """
    kept = set(negative.items) & set(negative.source)
    new_items = [item for item in negative.items if item not in kept]
    source_items = [
        item for item in negative.source if item not in kept
    ]
    replacements: list[Replacement] = []
    remaining = list(source_items)
    for new_item in new_items:
        partner = _find_partner(new_item, remaining, taxonomy,
                                negative.case)
        if partner is not None:
            remaining.remove(partner)
            replacements.append(
                Replacement(
                    new_item=new_item,
                    source_item=partner,
                    new_support=index.support((new_item,)),
                    source_support=index.support((partner,)),
                )
            )
    return Derivation(
        items=negative.items,
        source=negative.source,
        case=negative.case,
        base_support=index.support(negative.source),
        replacements=tuple(replacements),
        expected_support=negative.expected_support,
        actual_support=negative.actual_support,
    )


def _find_partner(
    new_item: int,
    candidates: list[int],
    taxonomy: Taxonomy,
    case: str,
) -> int | None:
    parent = taxonomy.parent(new_item)
    for candidate in candidates:
        if case == CASE_CHILDREN:
            if candidate == parent:
                return candidate
        else:  # siblings / substitutes share a parent or a declaration
            if taxonomy.parent(candidate) == parent:
                return candidate
    return candidates[0] if candidates else None


def format_derivation(
    derivation: Derivation, taxonomy: Taxonomy
) -> str:
    """Render a derivation in the style of the paper's examples."""
    name = taxonomy.name_of
    lines = [
        f"negative itemset {taxonomy.format_itemset(derivation.items)}",
        (
            "  derived from large itemset "
            f"{taxonomy.format_itemset(derivation.source)} "
            f"(case: {derivation.case})"
        ),
    ]
    symbol_terms = [f"sup({taxonomy.format_itemset(derivation.source)})"]
    numeric_terms = [f"{derivation.base_support:.4f}"]
    for replacement in derivation.replacements:
        symbol_terms.append(
            f"sup({name(replacement.new_item)})/"
            f"sup({name(replacement.source_item)})"
        )
        numeric_terms.append(
            f"{replacement.new_support:.4f}/"
            f"{replacement.source_support:.4f}"
        )
    lines.append("  E[sup] = " + " * ".join(symbol_terms))
    lines.append(
        "         = "
        + " * ".join(numeric_terms)
        + f" = {derivation.expected_support:.4f}"
    )
    lines.append(
        f"  actual support {derivation.actual_support:.4f}; "
        f"deviation {derivation.deviation:.4f}"
    )
    return "\n".join(lines)


def format_agreement(agreement) -> str:
    """Render a cross-measure agreement section for one rule.

    *agreement* maps measure names to verdict objects with ``admitted``,
    ``score``, ``rank`` and ``out_of`` attributes — the shape
    :meth:`repro.measures.compare.MeasureComparison.agreement_for`
    returns. Kept duck-typed so this module never imports the
    comparison layer.
    """
    lines = ["measure agreement:"]
    width = max((len(name) for name in agreement), default=0)
    for name, verdict in agreement.items():
        if verdict.admitted:
            detail = f"admits (score={verdict.score:.4f}"
            if verdict.rank is not None:
                detail += f", rank {verdict.rank}/{verdict.out_of}"
            detail += ")"
        else:
            detail = "does not admit"
        lines.append(f"  {name.ljust(width)} : {detail}")
    return "\n".join(lines)


def explain_rule(
    rule: NegativeRule,
    negative: NegativeItemset,
    index: LargeItemsetIndex,
    taxonomy: Taxonomy,
    agreement=None,
) -> str:
    """Full textual explanation of a rule: derivation plus RI arithmetic.

    A rule admitted by an alternative measure gets the measure's score
    line instead of the RI arithmetic (whose expectation-based formula
    does not describe it). *agreement* — a mapping as accepted by
    :func:`format_agreement` — appends the cross-measure agreement
    section; ``None`` (default) keeps the historical output
    byte-for-byte.
    """
    derivation = derive(negative, index, taxonomy)
    lines = [format_derivation(derivation, taxonomy)]
    lines.append(
        f"rule {taxonomy.format_itemset(rule.antecedent)} =/=> "
        f"{taxonomy.format_itemset(rule.consequent)}"
    )
    if rule.measure == "ri":
        lines.append(
            f"  RI = ({rule.expected_support:.4f} - "
            f"{rule.actual_support:.4f}) / "
            f"sup({taxonomy.format_itemset(rule.antecedent)}) = "
            f"{rule.expected_support - rule.actual_support:.4f} / "
            f"{rule.antecedent_support:.4f} = {rule.ri:.3f}"
        )
    else:
        lines.append(
            f"  score({rule.measure}) = {rule.ri:.4f} over "
            f"sup(X)={rule.antecedent_support:.4f}, "
            f"sup(Y)={rule.consequent_support:.4f}, "
            f"actual={rule.actual_support:.4f}"
        )
    if agreement is not None:
        lines.append(format_agreement(agreement))
    return "\n".join(lines)


def explain_result_rule(
    rule: NegativeRule,
    negatives: list[NegativeItemset],
    index: LargeItemsetIndex,
    taxonomy: Taxonomy,
    agreement=None,
) -> str:
    """Explain a rule straight from a mining result's negative list."""
    items = rule.items
    for negative in negatives:
        if negative.items == items:
            return explain_rule(
                rule, negative, index, taxonomy, agreement=agreement
            )
    raise KeyError(
        f"rule itemset {items!r} not found among the negative itemsets"
    )
