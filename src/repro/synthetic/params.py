"""Generator parameters (paper Tables 3 and 4).

The parameter names follow Table 3:

====== ===================================================== =============
Symbol Meaning                                               Field
====== ===================================================== =============
|D|    Number of transactions                                num_transactions
|T|    Average size of transactions                          avg_transaction_size
|C|    Average size of maximal potentially large clusters    avg_cluster_size
|I|    Average size of maximal potentially large itemsets    avg_itemset_size
|S|    Average number of itemsets for each cluster           avg_itemsets_per_cluster
|L|    Number of maximal potentially large clusters          num_clusters
N      Number of items (taxonomy leaves)                     num_items
R      Number of roots                                       num_roots
F      Fan-out                                               fanout
====== ===================================================== =============

:data:`SHORT` and :data:`TALL` are the two data sets of Table 4 (fan-out 9
vs 3, everything else shared). The available text of the paper has OCR
damage on two Table 4 entries — |T| and R — for which we adopt the
conventional values of the Srikant–Agrawal generator family this model
derives from (|T| = 10, R = 250); see DESIGN.md "Substitutions".
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .._util import check_positive
from ..errors import GenerationError


@dataclass(frozen=True, slots=True)
class GeneratorParams:
    """All knobs of the synthetic retail-data generator."""

    num_transactions: int = 50_000
    avg_transaction_size: float = 10.0
    avg_cluster_size: float = 5.0
    avg_itemset_size: float = 5.0
    avg_itemsets_per_cluster: float = 3.0
    num_clusters: int = 2_000
    num_items: int = 8_000
    num_roots: int = 250
    fanout: float = 9.0
    corruption_mean: float = 0.5
    corruption_variance: float = 0.1

    def __post_init__(self) -> None:
        check_positive(self.num_transactions, "num_transactions")
        check_positive(self.num_clusters, "num_clusters")
        check_positive(self.num_items, "num_items")
        check_positive(self.num_roots, "num_roots")
        for name in (
            "avg_transaction_size",
            "avg_cluster_size",
            "avg_itemset_size",
            "avg_itemsets_per_cluster",
        ):
            if getattr(self, name) <= 0:
                raise GenerationError(f"{name} must be positive")
        if self.fanout < 1.0:
            raise GenerationError(
                f"fanout must be >= 1, got {self.fanout}"
            )
        if self.num_roots > self.num_items:
            raise GenerationError(
                "num_roots cannot exceed num_items "
                f"({self.num_roots} > {self.num_items})"
            )
        if not 0.0 <= self.corruption_mean <= 1.0:
            raise GenerationError("corruption_mean must be in [0, 1]")
        if self.corruption_variance < 0.0:
            raise GenerationError("corruption_variance must be >= 0")

    def scaled(self, factor: float) -> "GeneratorParams":
        """A proportionally smaller workload for quick runs.

        Scales the extensive quantities — transactions, items, clusters,
        roots — by *factor* while leaving the per-transaction shape
        parameters untouched, so the mined structure stays comparable.
        """
        if not 0.0 < factor <= 1.0:
            raise GenerationError(
                f"scale factor must be in (0, 1], got {factor}"
            )
        return replace(
            self,
            num_transactions=max(1, round(self.num_transactions * factor)),
            num_items=max(10, round(self.num_items * factor)),
            num_clusters=max(1, round(self.num_clusters * factor)),
            num_roots=max(1, round(self.num_roots * factor)),
        )


#: The "Short" data set of Table 4: wide taxonomy (fan-out 9), few levels.
SHORT = GeneratorParams(fanout=9.0)

#: The "Tall" data set of Table 4: narrow taxonomy (fan-out 3), many levels.
TALL = GeneratorParams(fanout=3.0)
