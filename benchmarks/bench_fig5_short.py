"""E1 — Figure 5: execution times on the "Short" data set.

The paper plots negative-phase execution time against minimum support
(2.0 %% down to 0.5 %%) for the Naive and the Better (Improved) algorithm
on the fan-out-9 dataset; the Improved algorithm wins at every support
level and the gap widens as support drops.

Each parametrized benchmark below is one point of the figure; running the
module directly prints the whole series as a table::

    python -m benchmarks.bench_fig5_short
"""

import pytest

from repro.mining.generalized import mine_generalized

from .common import dataset, support_sweep
from .sweep import (
    improved_negative_phase,
    naive_negative_phase,
    print_figure,
    run_sweep,
)

MINSUPS = support_sweep()


@pytest.fixture(scope="module")
def short_dataset():
    return dataset("short")


@pytest.mark.parametrize("minsup", MINSUPS)
def test_fig5_improved(benchmark, short_dataset, minsup):
    index = mine_generalized(
        short_dataset.database, short_dataset.taxonomy, minsup
    )
    point = benchmark.pedantic(
        improved_negative_phase,
        args=(short_dataset, minsup, index),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        candidates=point.candidates,
        negatives=point.negatives,
        rules=point.rules,
        large_itemsets=point.large_itemsets,
    )


@pytest.mark.parametrize("minsup", MINSUPS)
def test_fig5_naive(benchmark, short_dataset, minsup):
    point = benchmark.pedantic(
        naive_negative_phase,
        args=(short_dataset, minsup),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        candidates=point.candidates,
        negatives=point.negatives,
        rules=point.rules,
    )


def main() -> None:
    points = run_sweep(dataset("short"), MINSUPS)
    print_figure(
        points, 'Figure 5: execution times, "Short" data set (fan-out 9)'
    )
    improved = {p.minsup: p.seconds for p in points
                if p.algorithm == "improved"}
    naive = {p.minsup: p.seconds for p in points if p.algorithm == "naive"}
    wins = sum(
        1 for minsup in improved if improved[minsup] <= naive[minsup]
    )
    print(
        f"\nshape check: improved wins at {wins}/{len(improved)} "
        "support levels (paper: all levels)"
    )


if __name__ == "__main__":
    main()
