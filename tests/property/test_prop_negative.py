"""Property-based tests for the negative-mining core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import mine_negative_rules
from repro.core.candidates import generate_negative_candidates
from repro.core.expectation import expected_support
from repro.core.negmining import ImprovedNegativeMiner, NaiveNegativeMiner
from repro.data.database import TransactionDatabase
from repro.mining.itemset_index import LargeItemsetIndex
from repro.taxonomy.builders import taxonomy_from_parents

# A fixed two-level taxonomy: 3 roots, each with 3 leaf children.
TAXONOMY = taxonomy_from_parents(
    {child: (child - 1) // 3 + 100 for child in range(1, 10)},
)
LEAVES = sorted(TAXONOMY.leaves)


@st.composite
def leaf_databases(draw):
    row_count = draw(st.integers(min_value=10, max_value=60))
    rows = [
        draw(
            st.lists(
                st.sampled_from(LEAVES), min_size=1, max_size=5
            )
        )
        for _ in range(row_count)
    ]
    return TransactionDatabase(rows)


@settings(max_examples=25, deadline=None)
@given(leaf_databases(), st.sampled_from([0.1, 0.2]),
       st.sampled_from([0.3, 0.6]))
def test_naive_equals_improved(database, minsup, minri):
    improved = ImprovedNegativeMiner(
        database, TAXONOMY, minsup, minri
    ).mine()
    naive = NaiveNegativeMiner(database, TAXONOMY, minsup, minri).mine()
    assert {n.items for n in naive.negatives} == {
        n.items for n in improved.negatives
    }


@settings(max_examples=25, deadline=None)
@given(leaf_databases(), st.integers(min_value=1, max_value=7))
def test_batching_invariance(database, batch):
    whole = ImprovedNegativeMiner(database, TAXONOMY, 0.1, 0.4).mine()
    batched = ImprovedNegativeMiner(
        database, TAXONOMY, 0.1, 0.4, max_candidates_in_memory=batch
    ).mine()
    assert [n.items for n in whole.negatives] == [
        n.items for n in batched.negatives
    ]


@settings(max_examples=25, deadline=None)
@given(leaf_databases())
def test_rules_respect_all_thresholds(database):
    result = mine_negative_rules(
        database, TAXONOMY, minsup=0.15, minri=0.4
    )
    for rule in result.rules:
        assert rule.antecedent_support >= 0.15
        assert rule.consequent_support >= 0.15
        assert rule.ri >= 0.4
        assert set(rule.antecedent).isdisjoint(rule.consequent)


@settings(max_examples=25, deadline=None)
@given(leaf_databases(), st.sampled_from([0, 1, 2]))
def test_estmerge_backend_invariance(database, seed):
    base = mine_negative_rules(
        database, TAXONOMY, minsup=0.15, minri=0.4, algorithm="cumulate"
    )
    other = mine_negative_rules(
        database, TAXONOMY, minsup=0.15, minri=0.4,
        algorithm="estmerge", seed=seed,
    )
    assert {n.items for n in base.negative_itemsets} == {
        n.items for n in other.negative_itemsets
    }


@st.composite
def random_indexes(draw):
    """Supports for all taxonomy nodes + some large pairs, consistent
    enough for candidate generation (children never out-support parents).
    """
    index = LargeItemsetIndex()
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    for root in (100, 101, 102):
        root_support = rng.uniform(0.3, 0.9)
        index.add((root,), root_support)
        for child in TAXONOMY.children(root):
            index.add((child,), rng.uniform(0.05, root_support / 2))
    pair_count = draw(st.integers(min_value=1, max_value=4))
    nodes = [100, 101, 102] + LEAVES
    for _ in range(pair_count):
        first, second = rng.sample(nodes, 2)
        if first in TAXONOMY.ancestors(second):
            continue
        if second in TAXONOMY.ancestors(first):
            continue
        bound = min(
            index.support((first,)), index.support((second,))
        )
        index.add(
            tuple(sorted((first, second))), rng.uniform(0.01, bound)
        )
    return index


@settings(max_examples=40, deadline=None)
@given(random_indexes(), st.sampled_from([0.05, 0.1]),
       st.sampled_from([0.3, 0.6]))
def test_candidate_generation_invariants(index, minsup, minri):
    candidates = generate_negative_candidates(
        index, TAXONOMY, minsup, minri
    )
    for items, candidate in candidates.items():
        # Never an existing large itemset, always canonical, same size
        # as its source, every 1-subset large, expectation thresholded.
        assert items not in index
        assert items == tuple(sorted(set(items)))
        assert len(items) == len(candidate.source)
        assert all(index.is_large((item,)) for item in items)
        assert candidate.expected_support >= minsup * minri - 1e-12
        # Expectation is reproducible from the recorded source.
        source_set = set(candidate.source)
        replaced = [
            (item, source_item)
            for item, source_item in _match_replacements(
                items, candidate.source
            )
        ]
        ratios = [
            (index.support((new,)), index.support((old,)))
            for new, old in replaced
        ]
        rebuilt = expected_support(index.support(candidate.source), ratios)
        assert candidate.expected_support <= rebuilt + 1e-9 or (
            set(items) & source_set
        )


def _match_replacements(candidate, source):
    """Pair each new item with the source item it replaced.

    Items present in both sets were kept; the rest replaced positionally
    by parent/sibling relation. For the invariant check we only need a
    consistent pairing of the disjoint parts, matched through the
    taxonomy (parent or shared parent).
    """
    kept = set(candidate) & set(source)
    new_items = [item for item in candidate if item not in kept]
    old_items = [item for item in source if item not in kept]
    pairs = []
    used = set()
    for new in new_items:
        parent = TAXONOMY.parent(new)
        for old in old_items:
            if old in used:
                continue
            if old == parent or TAXONOMY.parent(old) == parent:
                pairs.append((new, old))
                used.add(old)
                break
    return pairs
