"""Property-based tests: the parallel engine equals the brute oracle.

Bit-identical counting is the parallel subsystem's core contract: summing
per-shard partial counts must reproduce exactly what a serial pass
produces, for any database, candidate set, taxonomy, shard layout and
worker count. Multiprocess examples are kept fewer (process start-up per
example) while the serial-path property runs at full width.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.session import MiningSession
from repro.itemset import itemset
from repro.mining.partition import find_large_itemsets_partition
from repro.parallel.engine import (
    parallel_count_supports,
    parallel_partition,
)
from repro.data.database import TransactionDatabase
from repro.taxonomy.builders import taxonomy_from_parents

# A fixed two-level taxonomy: 3 roots (100..102), each with 3 leaves.
TAXONOMY = taxonomy_from_parents(
    {child: (child - 1) // 3 + 100 for child in range(1, 10)},
)
NODES = sorted(TAXONOMY.nodes)

transactions_strategy = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=25), min_size=1, max_size=8
    ).map(itemset),
    min_size=1,
    max_size=40,
)
candidates_strategy = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=25), min_size=1, max_size=4
    ).map(itemset),
    min_size=1,
    max_size=25,
).map(lambda cands: sorted(set(cands)))

leaf_transactions_strategy = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=9), min_size=1, max_size=5
    ).map(itemset),
    min_size=1,
    max_size=30,
)
node_candidates_strategy = st.lists(
    st.lists(
        st.sampled_from(NODES), min_size=1, max_size=3
    ).map(itemset),
    min_size=1,
    max_size=12,
).map(lambda cands: sorted(set(cands)))


@settings(max_examples=50, deadline=None)
@given(transactions=transactions_strategy, candidates=candidates_strategy)
def test_serial_path_matches_brute(transactions, candidates):
    expected = MiningSession(transactions, engine="brute").count(candidates)
    session = MiningSession(transactions, engine="parallel", n_jobs=1)
    assert session.count(candidates) == expected


@settings(max_examples=50, deadline=None)
@given(
    transactions=transactions_strategy,
    candidates=candidates_strategy,
    shard_rows=st.integers(min_value=1, max_value=13),
)
def test_shard_layout_never_changes_counts(
    transactions, candidates, shard_rows
):
    """Any shard size, merged in-process, equals one serial pass."""
    expected = MiningSession(transactions, engine="brute").count(candidates)
    counts = parallel_count_supports(
        transactions,
        candidates,
        n_jobs=1,
        shard_rows=shard_rows,
    )
    assert counts == expected


@pytest.mark.parametrize("n_jobs", [2, 4])
@settings(max_examples=8, deadline=None)
@given(transactions=transactions_strategy, candidates=candidates_strategy)
def test_multiprocess_matches_brute(n_jobs, transactions, candidates):
    expected = MiningSession(transactions, engine="brute").count(candidates)
    session = MiningSession(transactions, engine="parallel", n_jobs=n_jobs)
    assert session.count(candidates) == expected
    assert session.parallel_stats.shards >= 1


@settings(max_examples=8, deadline=None)
@given(
    transactions=leaf_transactions_strategy,
    candidates=node_candidates_strategy,
)
def test_multiprocess_generalized_matches_brute(transactions, candidates):
    """Taxonomy extension inside workers equals serial extension."""
    expected = MiningSession(transactions, TAXONOMY, "brute").count(
        candidates, restrict_to_candidate_items=True
    )
    counts = parallel_count_supports(
        transactions,
        candidates,
        taxonomy=TAXONOMY,
        restrict_to_candidate_items=True,
        n_jobs=2,
    )
    assert counts == expected


@settings(max_examples=6, deadline=None)
@given(
    transactions=leaf_transactions_strategy,
    minsup=st.sampled_from([0.1, 0.3]),
)
def test_parallel_partition_matches_serial(transactions, minsup):
    database = TransactionDatabase(transactions)
    reference = find_large_itemsets_partition(
        database, minsup, partitions=3
    )
    parallel = parallel_partition(
        database, minsup, n_jobs=2, partitions=3
    )
    assert sorted(parallel) == sorted(reference)
    for items in reference:
        assert parallel.support(items) == reference.support(items)
