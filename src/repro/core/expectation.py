"""Expected support of candidate negative itemsets (paper Section 2.1.1).

The uniformity assumption — items under the same parent have similar
associations — lets the algorithm predict the support a candidate *would*
have if its items behaved like their relatives in some large itemset. All
three cases in the paper share one algebraic shape: start from the support
of the large itemset and scale by one ratio per replaced position.

Case 1 (all positions replaced by children), from large ``{C, G}``::

    E[sup(D J)] = sup(CG) * (sup(D) / sup(C)) * (sup(J) / sup(G))

Case 2 (some positions replaced by children)::

    E[sup(C J)] = sup(CG) * (sup(J) / sup(G))

Case 3 (positions replaced by siblings; H is a sibling of G)::

    E[sup(C H)] = sup(CG) * (sup(H) / sup(G))

In every case the ratio is ``sup(new item) / sup(item it stands in for)``,
so one function suffices.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import ConfigError


def expected_support(
    base_support: float,
    replacements: Iterable[tuple[float, float]],
) -> float:
    """Scale *base_support* by one ``new/old`` support ratio per replacement.

    Parameters
    ----------
    base_support:
        Support of the large itemset the candidate was derived from.
    replacements:
        ``(new_item_support, replaced_item_support)`` pairs — one per
        replaced position. For a child replacement the replaced item is the
        parent; for a sibling replacement it is the sibling that occurs in
        the large itemset.

    Returns
    -------
    float
        The expected fractional support of the candidate.

    Notes
    -----
    Replaced items are members of large itemsets, so their supports are
    positive by construction; a zero denominator is reported as a
    :class:`~repro.errors.ConfigError` because it means the caller passed
    a support that could never belong to a large itemset.
    """
    if base_support < 0.0:
        raise ConfigError(f"base support cannot be negative: {base_support}")
    value = base_support
    for new_support, old_support in replacements:
        if old_support <= 0.0:
            raise ConfigError(
                "replaced-item support must be positive "
                f"(got {old_support!r})"
            )
        if new_support < 0.0:
            raise ConfigError(
                f"new-item support cannot be negative: {new_support}"
            )
        value *= new_support / old_support
    return value
