"""Unit tests for on-target selective rule generation.

The key property is *soundness*: every rule a selective run emits must
be exact and must also appear in a full offline mining run at the same
thresholds. Completeness around the target follows on these small
datasets because the whole item universe fits in the neighborhood
budget.
"""

import pytest

from repro.core.api import MiningConfig, mine_negative_rules
from repro.core.session import MiningSession
from repro.data.database import TransactionDatabase
from repro.errors import ConfigError, ServingError
from repro.obs.api import obs_session
from repro.obs.registry import MetricsRegistry
from repro.serve import mine_selective
from repro.taxonomy.builders import taxonomy_from_nested


@pytest.fixture
def taxonomy():
    return taxonomy_from_nested(
        {"drinks": {"soda": ["cola", "lemonade"], "water": ["still"]}}
    )


@pytest.fixture
def database(taxonomy):
    cola = taxonomy.id_of("cola")
    lemonade = taxonomy.id_of("lemonade")
    still = taxonomy.id_of("still")
    rows = [[cola, still]] * 40 + [[lemonade]] * 40 + [[cola]] * 20
    return TransactionDatabase(rows)


class TestSoundness:
    def test_rules_match_the_full_run_exactly(self, database, taxonomy):
        full = mine_negative_rules(
            database, taxonomy,
            config=MiningConfig(minsup=0.2, minri=0.3),
        )
        for name in ("cola", "lemonade", "still"):
            target = taxonomy.id_of(name)
            result = mine_selective(
                database, taxonomy, target, minsup=0.2, minri=0.3
            )
            expected = {
                rule for rule in full.rules if target in rule.items
            }
            assert set(result.negative_rules) == expected
            assert all(
                target in rule.items for rule in result.negative_rules
            )

    def test_supports_are_exact(self, database, taxonomy):
        lemonade = taxonomy.id_of("lemonade")
        result = mine_selective(
            database, taxonomy, lemonade, minsup=0.2, minri=0.3
        )
        # lemonade appears in 40/100 transactions.
        assert result.large_itemsets.support((lemonade,)) == 0.4

    def test_positive_rules_mention_the_target(self, database, taxonomy):
        cola = taxonomy.id_of("cola")
        result = mine_selective(
            database, taxonomy, cola, minsup=0.2, minri=0.3,
            minconf=0.5,
        )
        assert result.positive_rules
        for rule in result.positive_rules:
            assert (
                cola in rule.antecedent or cola in rule.consequent
            )


class TestEdges:
    def test_small_target_returns_empty_result(self, taxonomy):
        cola = taxonomy.id_of("cola")
        lemonade = taxonomy.id_of("lemonade")
        rows = [[cola]] * 99 + [[lemonade]]  # lemonade: 1% < minsup
        database = TransactionDatabase(rows)
        result = mine_selective(
            database, taxonomy, lemonade, minsup=0.2, minri=0.3
        )
        assert result.negative_rules == []
        assert result.positive_rules == []
        assert result.neighborhood == ()
        assert result.stats.data_passes == 1  # the singles pass only

    def test_unknown_target_rejected(self, database, taxonomy):
        with pytest.raises(ServingError):
            mine_selective(
                database, taxonomy, 424242, minsup=0.2, minri=0.3
            )

    def test_bad_thresholds_rejected(self, database, taxonomy):
        cola = taxonomy.id_of("cola")
        with pytest.raises(ConfigError):
            mine_selective(database, taxonomy, cola, minsup=0.0,
                           minri=0.3)

    def test_bad_neighborhood_budget_rejected(self, database, taxonomy):
        cola = taxonomy.id_of("cola")
        with pytest.raises(ServingError):
            mine_selective(database, taxonomy, cola, minsup=0.2,
                           minri=0.3, max_neighbors=0)

    def test_category_target_works(self, database, taxonomy):
        soda = taxonomy.id_of("soda")
        result = mine_selective(
            database, taxonomy, soda, minsup=0.2, minri=0.3
        )
        assert all(soda in rule.items for rule in result.negative_rules)


class TestSessionIntegration:
    def test_counters_land_under_serving(self, database, taxonomy):
        lemonade = taxonomy.id_of("lemonade")
        session = MiningSession(database, taxonomy)
        registry = MetricsRegistry()
        with obs_session(registry=registry):
            result = mine_selective(
                database, taxonomy, lemonade, minsup=0.2, minri=0.3,
                session=session,
            )
        assert registry.counter("serving.runs") == 1
        assert registry.counter("serving.data_passes") == (
            result.stats.data_passes
        )
        assert registry.counter("mine.runs") == 0

    def test_session_is_reusable_across_targets(self, database,
                                                taxonomy):
        session = MiningSession(database, taxonomy)
        first = mine_selective(
            database, taxonomy, taxonomy.id_of("lemonade"),
            minsup=0.2, minri=0.3, session=session,
        )
        second = mine_selective(
            database, taxonomy, taxonomy.id_of("still"),
            minsup=0.2, minri=0.3, session=session,
        )
        assert first.negative_rules and second.negative_rules

    def test_works_with_every_registered_serial_engine(self, database,
                                                       taxonomy):
        from repro.mining.engines import registered_engines

        lemonade = taxonomy.id_of("lemonade")
        reference = mine_selective(
            database, taxonomy, lemonade, minsup=0.2, minri=0.3
        )
        for name, cls in registered_engines().items():
            if not cls.capabilities.shardable:
                continue
            session = MiningSession(database, taxonomy, engine=name)
            result = mine_selective(
                database, taxonomy, lemonade, minsup=0.2, minri=0.3,
                session=session,
            )
            assert result.negative_rules == reference.negative_rules, name
