"""E9 — Serial engine matrix: every counting engine on identical passes.

Times the same two counting passes — the size-1 candidates, then the
size-2 candidates derived from the large singles — on the "Tall" dataset
for every serial engine (including the bit-packed ``"numpy"`` kernel and
the packed ``"cached"`` backend), in flat and taxonomy mode at two
MinSups. All engines count the exact same candidate lists and the counts
are asserted bit-identical, so the wall-clock per logical pass is an
apples-to-apples engine comparison rather than a whole-miner sweep.

Folds its report into ``BENCH_counting.json`` under the
``"engine_matrix"`` key — or ``["quick"]["engine_matrix"]`` on
``--quick``, so a smoke run never overwrites the committed full-size
baseline — alongside the vertical-cache runs of ``bench_vertical_cache``.
Exits non-zero when the ``"numpy"`` kernel is not faster than the default
``"bitmap"`` engine — the regression the CI smoke run pins.

Run::

    python -m benchmarks.bench_engine_matrix --quick
"""

from __future__ import annotations

import argparse
import itertools
import os
import sys
import time
from pathlib import Path

def _level_candidates(dataset, minsup: float, taxonomy):
    """The two shared passes: all singles, then pairs of large singles."""
    from repro.core.session import MiningSession

    database = dataset.database
    nodes = set(database.items)
    if taxonomy is not None:
        nodes.update(
            taxonomy.ancestor_closure(
                item for item in nodes if item in taxonomy
            )
        )
    singles = [(node,) for node in sorted(nodes)]
    counts = MiningSession(database, taxonomy).count(singles)
    min_count = minsup * len(database)
    large = [items[0] for items, count in counts.items()
             if count >= min_count]
    pairs = []
    for left, right in itertools.combinations(sorted(large), 2):
        if taxonomy is not None and (
            (left in taxonomy and taxonomy.is_ancestor(right, left))
            or (right in taxonomy and taxonomy.is_ancestor(left, right))
        ):
            continue  # Cumulate prunes lineage pairs; keep parity with it.
        pairs.append((left, right))
    return singles, pairs


def _time_cell(dataset, taxonomy, passes, label: str, options: dict):
    """Run both passes on one engine; returns (counts, measured point)."""
    from repro.core.session import MiningSession
    from repro.mining import vertical

    database = dataset.database
    database.reset_scans()
    vertical.invalidate(database)
    session = MiningSession(database, taxonomy, **options)
    merged: dict = {}
    start = time.perf_counter()
    for candidates in passes:
        merged.update(
            session.count(candidates, restrict_to_candidate_items=True)
        )
    wall = time.perf_counter() - start
    stats = session.cache_stats
    point = {
        "engine": label,
        "wall_s": round(wall, 4),
        "passes": len(passes),
        "wall_per_pass_s": round(wall / len(passes), 5),
        "candidates": sum(len(candidates) for candidates in passes),
        "kernel_batches": stats.kernel_batches,
    }
    return merged, point


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small dataset / single support (the CI smoke configuration)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_counting.json",
        help="JSON report to fold the engine_matrix key into",
    )
    parser.add_argument(
        "--no-check",
        action="store_false",
        dest="check",
        help="report only; do not fail when numpy is slower than bitmap",
    )
    args = parser.parse_args(argv)

    os.environ.setdefault(
        "REPRO_BENCH_SCALE", "0.02" if args.quick else "0.1"
    )
    from benchmarks.common import (
        dataset,
        engine_matrix_configurations,
        fold_report,
        paper_row,
    )

    tall = dataset("tall")
    minsups = [0.10] if args.quick else [0.10, 0.06]
    configurations = engine_matrix_configurations()

    cells = []
    per_pass: dict[str, list[float]] = {}
    for mode in ("flat", "taxonomy"):
        taxonomy = tall.taxonomy if mode == "taxonomy" else None
        for minsup in minsups:
            passes = _level_candidates(tall, minsup, taxonomy)
            reference = None
            for engine, options in configurations:
                counts, point = _time_cell(
                    tall, taxonomy, passes, engine, options
                )
                if reference is None:
                    reference = counts
                else:
                    assert counts == reference, (
                        f"{engine} disagrees in {mode}@{minsup}"
                    )
                point |= {"mode": mode, "minsup": minsup}
                cells.append(point)
                per_pass.setdefault(engine, []).append(
                    point["wall_per_pass_s"]
                )
                paper_row(
                    f"{engine} {mode}@{minsup}",
                    wall_s=point["wall_s"],
                    per_pass_s=point["wall_per_pass_s"],
                    candidates=point["candidates"],
                    kernel_batches=point["kernel_batches"],
                )

    mean_per_pass = {
        engine: round(sum(values) / len(values), 5)
        for engine, values in per_pass.items()
    }
    speedup = round(
        mean_per_pass["bitmap"] / mean_per_pass["numpy"], 2
    )
    report = {
        "dataset": "tall",
        "scale": os.environ["REPRO_BENCH_SCALE"],
        "minsups": minsups,
        "transactions": len(tall.database),
        "cells": cells,
        "mean_wall_per_pass_s": mean_per_pass,
        "numpy_speedup_vs_bitmap_per_pass": speedup,
    }
    fold_report(args.out, "engine_matrix", report, quick=args.quick)

    paper_row("mean per-pass", **mean_per_pass)
    paper_row("numpy vs bitmap", speedup=speedup)
    print(f"wrote engine_matrix into {args.out}")

    if args.check and speedup <= 1.0:
        print(
            "FAIL: numpy kernel is not faster than the bitmap engine",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
