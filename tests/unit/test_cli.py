"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.data.io import (
    load_basket_file,
    load_taxonomy_file,
    save_basket_file,
    save_taxonomy_file,
)
from repro.data.database import TransactionDatabase
from repro.taxonomy.builders import taxonomy_from_nested


@pytest.fixture
def dataset_files(tmp_path):
    """A tiny on-disk dataset with a planted negative association."""
    taxonomy = taxonomy_from_nested(
        {"drinks": {"soda": ["cola", "lemonade"], "water": ["still"]}}
    )
    cola = taxonomy.id_of("cola")
    lemonade = taxonomy.id_of("lemonade")
    still = taxonomy.id_of("still")
    rows = [[cola, still]] * 40 + [[lemonade]] * 40 + [[cola]] * 20
    baskets = tmp_path / "data.basket"
    tax_path = tmp_path / "tax.tsv"
    save_basket_file(TransactionDatabase(rows), baskets)
    save_taxonomy_file(taxonomy, tax_path)
    return str(baskets), str(tax_path)


class TestGenerate:
    def test_writes_both_files(self, tmp_path, capsys):
        baskets = tmp_path / "out.basket"
        taxonomy = tmp_path / "out.tsv"
        code = main(
            [
                "generate",
                "--preset", "short",
                "--scale", "0.01",
                "--transactions", "50",
                "--seed", "3",
                "--baskets", str(baskets),
                "--taxonomy", str(taxonomy),
            ]
        )
        assert code == 0
        assert len(load_basket_file(baskets)) == 50
        assert len(load_taxonomy_file(taxonomy)) > 0
        assert "wrote 50 transactions" in capsys.readouterr().out

    def test_tall_preset(self, tmp_path):
        code = main(
            [
                "generate",
                "--preset", "tall",
                "--scale", "0.01",
                "--transactions", "20",
                "--baskets", str(tmp_path / "b"),
                "--taxonomy", str(tmp_path / "t"),
            ]
        )
        assert code == 0


class TestMine:
    def test_prints_rules(self, dataset_files, capsys):
        baskets, taxonomy = dataset_files
        code = main(
            [
                "mine",
                "--baskets", baskets,
                "--taxonomy", taxonomy,
                "--minsup", "0.2",
                "--minri", "0.3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rules" in out

    def test_naive_miner_flag(self, dataset_files, capsys):
        baskets, taxonomy = dataset_files
        code = main(
            [
                "mine",
                "--baskets", baskets,
                "--taxonomy", taxonomy,
                "--minsup", "0.2",
                "--minri", "0.3",
                "--miner", "naive",
            ]
        )
        assert code == 0

    def test_jobs_flag_matches_serial_output(self, dataset_files, capsys):
        baskets, taxonomy = dataset_files
        base_args = [
            "mine",
            "--baskets", baskets,
            "--taxonomy", taxonomy,
            "--minsup", "0.2",
            "--minri", "0.3",
        ]
        assert main(base_args) == 0
        serial_out = capsys.readouterr().out
        assert main(base_args + ["--jobs", "2", "--shard-rows", "25"]) == 0
        parallel_out = capsys.readouterr().out
        assert "shards" in parallel_out
        # Identical rules; the parallel run only adds the shards line.
        serial_rules = [
            line for line in serial_out.splitlines() if "=>" in line
        ]
        parallel_rules = [
            line for line in parallel_out.splitlines() if "=>" in line
        ]
        assert parallel_rules == serial_rules

    def test_trace_and_metrics_flags(self, dataset_files, tmp_path,
                                     capsys):
        import json

        baskets, taxonomy = dataset_files
        trace = tmp_path / "trace.jsonl"
        code = main(
            [
                "mine",
                "--baskets", baskets,
                "--taxonomy", taxonomy,
                "--minsup", "0.2",
                "--minri", "0.3",
                "--trace", str(trace),
                "--metrics", "summary",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "--- metrics ---" in captured.err
        assert "counting.passes" in captured.err
        lines = trace.read_text().splitlines()
        assert lines
        for line in lines:
            json.loads(line)  # every line is valid JSON

    def test_config_error_exits_2(self, dataset_files, capsys):
        baskets, taxonomy = dataset_files
        code = main(
            [
                "mine",
                "--baskets", baskets,
                "--taxonomy", taxonomy,
                "--minsup", "2.0",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestPositive:
    def test_prints_positive_rules(self, dataset_files, capsys):
        baskets, taxonomy = dataset_files
        code = main(
            [
                "positive",
                "--baskets", baskets,
                "--taxonomy", taxonomy,
                "--minsup", "0.2",
                "--minconf", "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "large itemsets" in out
        assert "=>" in out

    def test_jobs_flag(self, dataset_files, capsys):
        baskets, taxonomy = dataset_files
        code = main(
            [
                "positive",
                "--baskets", baskets,
                "--taxonomy", taxonomy,
                "--minsup", "0.2",
                "--minconf", "0.5",
                "--jobs", "2",
            ]
        )
        assert code == 0
        assert "large itemsets" in capsys.readouterr().out


class TestInspect:
    def test_prints_statistics(self, dataset_files, capsys):
        baskets, taxonomy = dataset_files
        code = main(
            ["inspect", "--baskets", baskets, "--taxonomy", taxonomy]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TransactionDatabase" in out
        assert "Taxonomy" in out
        assert "covered" in out


class TestEngines:
    def test_plain_table_notes_serving(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "bitmap" in out
        assert "repro serve" in out

    def test_markdown_table_notes_serving(self, capsys):
        assert main(["engines", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| engine |" in out
        assert "Serving:" in out
        assert "`parallel:numpy`" in out


class TestCompile:
    def test_writes_loadable_index(self, dataset_files, tmp_path,
                                   capsys):
        from repro.serve import RuleIndex

        baskets, taxonomy = dataset_files
        out_path = tmp_path / "index.json"
        code = main(
            [
                "compile",
                "--baskets", baskets,
                "--taxonomy", taxonomy,
                "--minsup", "0.2",
                "--minri", "0.3",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        assert "compiled" in capsys.readouterr().out
        index = RuleIndex.load(out_path)
        assert index.negative_count > 0
        assert index.taxonomy is not None


class TestServeAndScore:
    @pytest.fixture
    def server(self, dataset_files, tmp_path):
        """A live rule server on an ephemeral port, torn down after."""
        import asyncio
        import threading

        from repro.serve import RuleIndex, RuleService
        from repro.serve.service import start_server

        baskets, taxonomy = dataset_files
        out_path = tmp_path / "index.json"
        assert main(
            [
                "compile",
                "--baskets", baskets,
                "--taxonomy", taxonomy,
                "--minsup", "0.2",
                "--minri", "0.3",
                "--out", str(out_path),
            ]
        ) == 0
        service = RuleService(RuleIndex.load(out_path))
        loop = asyncio.new_event_loop()
        box = {}
        started = threading.Event()

        def run():
            asyncio.set_event_loop(loop)
            server = loop.run_until_complete(
                start_server(service, "127.0.0.1", 0)
            )
            box["port"] = server.sockets[0].getsockname()[1]
            started.set()
            loop.run_forever()
            server.close()
            loop.run_until_complete(server.wait_closed())
            loop.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert started.wait(10), "server did not start"
        yield box["port"]
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)

    def test_score_basket_by_name(self, server, capsys):
        code = main(
            [
                "score",
                "--port", str(server),
                "--basket", "lemonade",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert '"matches"' in out
        assert '"negative"' in out

    def test_score_stats(self, server, capsys):
        code = main(["score", "--port", str(server), "--stats"])
        assert code == 0
        assert '"rules"' in capsys.readouterr().out

    def test_unknown_name_is_an_error_exit(self, server, capsys):
        code = main(
            [
                "score",
                "--port", str(server),
                "--basket", "no-such-item",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().out

    def test_connection_refused_reports_cleanly(self, capsys):
        code = main(
            ["score", "--port", "1", "--basket", "1", "--timeout", "2"]
        )
        assert code == 2
        assert "cannot reach server" in capsys.readouterr().err
