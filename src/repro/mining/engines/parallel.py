"""The ``parallel`` engine: a composable sharding wrapper.

Unlike the serial engines, ``parallel`` is not a counting strategy of
its own — it wraps any shardable inner engine, splits each pass into
contiguous row ranges, counts every shard with the inner engine in a
worker process and sums the partial counts (bit-identical to a serial
count; see :mod:`repro.parallel`). The spec syntax is
``"parallel:<inner>"`` (``"parallel"`` alone wraps the default engine),
so ``--engine parallel:numpy`` runs the bit-packed kernel per shard and
``"parallel:cached"`` ships shard-local vertical indexes.
"""

from __future__ import annotations

from collections.abc import Collection
from dataclasses import replace

from ...errors import ConfigError
from ...itemset import Itemset
from .base import (
    Capabilities,
    CountingEngine,
    EnginePolicy,
    EngineState,
    create_engine,
    register_engine,
)

#: The inner engine used by a bare ``"parallel"`` spec.
DEFAULT_INNER = "bitmap"


@register_engine("parallel")
class ParallelEngine(CountingEngine):
    """Shard the pass across worker processes; sum partial counts.

    ``n_jobs=None`` means one worker per CPU; ``n_jobs=1`` (or a single
    shard) degrades to an in-process serial count with no worker
    transport. Worker failures follow the pool's retry-then-serial
    ladder.
    """

    capabilities = Capabilities(shardable=False)
    wraps = True

    def __init__(
        self,
        inner: CountingEngine | None = None,
        n_jobs: int | None = None,
        shard_rows: int | None = None,
        pool_config=None,
    ) -> None:
        if inner is None:
            inner = create_engine(DEFAULT_INNER)
        if inner.wraps or not inner.capabilities.shardable:
            raise ConfigError(
                f"engine 'parallel' cannot wrap {inner.spec!r}; the "
                f"inner engine must be a shardable serial engine"
            )
        self.inner = inner
        self.n_jobs = n_jobs
        self.shard_rows = shard_rows
        self.pool_config = pool_config

    @classmethod
    def from_policy(
        cls, policy: EnginePolicy, inner=None
    ) -> "ParallelEngine":
        if inner is None:
            inner = DEFAULT_INNER
        if not isinstance(inner, CountingEngine):
            # The inner engine runs one shard in one process: build it
            # from the same policy, minus the parallelism fields.
            inner = create_engine(
                inner, replace(policy, n_jobs=None)
            )
        return cls(
            inner,
            n_jobs=policy.n_jobs,
            shard_rows=policy.shard_rows,
        )

    @property
    def spec(self) -> str:
        return f"parallel:{self.inner.spec}"

    @property
    def wants_cache_stats(self) -> bool:
        return self.inner.wants_cache_stats

    @property
    def wants_parallel_stats(self) -> bool:
        return True

    def count(
        self,
        state: EngineState,
        candidates: Collection[Itemset],
        *,
        restrict_to_candidate_items: bool = False,
        cache_stats=None,
        parallel_stats=None,
    ) -> dict[Itemset, int]:
        # Imported lazily: repro.parallel.engine imports this package.
        from ...parallel.engine import parallel_count_supports

        return parallel_count_supports(
            state.transactions,
            candidates,
            taxonomy=state.taxonomy,
            engine=self.inner,
            restrict_to_candidate_items=restrict_to_candidate_items,
            n_jobs=self.n_jobs,
            shard_rows=self.shard_rows,
            pool_config=self.pool_config,
            stats=parallel_stats,
            cache_stats=cache_stats,
        )
