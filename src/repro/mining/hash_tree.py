"""The classic Apriori hash tree for subset counting.

Section 2.4 of the paper relies on the candidate-counting machinery of
Agrawal & Srikant: candidates of a fixed size *k* are stored in a hash tree
whose interior nodes hash on successive items and whose leaves hold small
candidate buckets. For a transaction *t*, the tree is walked once and every
candidate contained in *t* has its counter incremented — the ``subset(C_k,
t)`` operation of Figure 3.

Structure
---------
* An interior node at depth *d* hashes the next chosen item of the
  transaction into one of ``branching`` buckets.
* A leaf stores up to ``leaf_capacity`` candidates; when it overflows and
  its depth is still below the candidate size, it splits into an interior
  node (candidates are re-inserted one level deeper).
* Matching walks the transaction: at an interior node each remaining
  transaction item is hashed and the corresponding child visited with the
  suffix that follows the item; at a leaf every stored candidate is checked
  for containment in the transaction's remaining suffix.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import ConfigError
from ..itemset import Itemset, is_subset


class _Node:
    __slots__ = ("children", "bucket")

    def __init__(self) -> None:
        # Leaf until it splits: ``children is None`` means leaf.
        self.children: dict[int, _Node] | None = None
        self.bucket: list[Itemset] = []


class HashTree:
    """Hash tree over same-size candidate itemsets, with match counters.

    Parameters
    ----------
    candidates:
        Canonical itemsets, all of the same length ``k >= 1``.
    branching:
        Hash fan-out of interior nodes.
    leaf_capacity:
        Number of candidates a leaf holds before splitting.
    """

    def __init__(
        self,
        candidates: Iterable[Itemset],
        branching: int = 8,
        leaf_capacity: int = 16,
    ) -> None:
        if branching < 2:
            raise ConfigError(f"branching must be >= 2, got {branching}")
        if leaf_capacity < 1:
            raise ConfigError(
                f"leaf_capacity must be >= 1, got {leaf_capacity}"
            )
        self._branching = branching
        self._leaf_capacity = leaf_capacity
        self._root = _Node()
        self._counts: dict[Itemset, int] = {}
        self._size: int | None = None
        # Hash buckets collide, so one transaction can reach the same leaf
        # along several paths; a per-transaction stamp prevents checking
        # (and double-counting) a candidate twice.
        self._stamp = 0
        self._last_checked: dict[Itemset, int] = {}
        for candidate in candidates:
            self._insert(candidate)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _insert(self, candidate: Itemset) -> None:
        if not candidate:
            raise ConfigError("cannot insert the empty itemset")
        if self._size is None:
            self._size = len(candidate)
        elif len(candidate) != self._size:
            raise ConfigError(
                f"all candidates must have size {self._size}, "
                f"got {candidate!r}"
            )
        if candidate in self._counts:
            return
        self._counts[candidate] = 0
        node = self._root
        depth = 0
        while node.children is not None:
            node = node.children[candidate[depth] % self._branching]
            depth += 1
        node.bucket.append(candidate)
        if len(node.bucket) > self._leaf_capacity and depth < self._size:
            self._split(node, depth)

    def _split(self, node: _Node, depth: int) -> None:
        """Turn an overflowing leaf into an interior node."""
        node.children = {
            slot: _Node() for slot in range(self._branching)
        }
        bucket, node.bucket = node.bucket, []
        for candidate in bucket:
            child = node.children[candidate[depth] % self._branching]
            child.bucket.append(candidate)
        # A pathological bucket (all candidates share a prefix hash) may
        # still overflow a child; recurse while depth allows.
        for child in node.children.values():
            if len(child.bucket) > self._leaf_capacity and depth + 1 < (
                self._size or 0
            ):
                self._split(child, depth + 1)

    # ------------------------------------------------------------------
    # Counting
    # ------------------------------------------------------------------
    @property
    def candidate_size(self) -> int:
        """The common length of the stored candidates (0 when empty)."""
        return self._size or 0

    def __len__(self) -> int:
        return len(self._counts)

    def add_transaction(self, transaction: Itemset) -> None:
        """Increment the counter of every candidate contained in the row."""
        if self._size is None or len(transaction) < self._size:
            return
        self._stamp += 1
        self._visit(self._root, transaction, 0, 0)

    def _visit(
        self, node: _Node, transaction: Itemset, start: int, depth: int
    ) -> None:
        if node.children is None:
            for candidate in node.bucket:
                # Path items only matched by hash value, so the candidate
                # must be verified in full; the stamp skips candidates
                # already checked for this transaction.
                if self._last_checked.get(candidate) == self._stamp:
                    continue
                self._last_checked[candidate] = self._stamp
                if is_subset(candidate, transaction):
                    self._counts[candidate] += 1
            return
        assert self._size is not None
        remaining = self._size - depth
        # Leave enough transaction items for the rest of the candidate.
        last_start = len(transaction) - remaining
        for index in range(start, last_start + 1):
            child = node.children[transaction[index] % self._branching]
            self._visit(child, transaction, index + 1, depth + 1)

    def counts(self) -> dict[Itemset, int]:
        """Copy of the per-candidate match counts."""
        return dict(self._counts)

    def count_all(self, transactions: Iterable[Itemset]) -> dict[Itemset, int]:
        """Count every transaction and return the final counters."""
        for row in transactions:
            self.add_transaction(row)
        return self.counts()
