"""repro — negative association rule mining over customer transactions.

A faithful, production-quality reproduction of Savasere, Omiecinski &
Navathe, *Mining for Strong Negative Associations in a Large Database of
Customer Transactions* (ICDE 1998), including every substrate the paper
depends on: generalized association mining over item taxonomies (Basic,
Cumulate, EstMerge), the Partition frequent-itemset miner, positive rule
generation, the paper's synthetic retail-data generator, and the negative
mining pipeline itself (candidate generation from taxonomy neighborhoods,
expected supports, the Naive and Improved algorithms, and negative rule
generation).

Quickstart
----------
>>> from repro import TransactionDatabase, mine_negative_rules
>>> from repro.taxonomy import taxonomy_from_nested
>>> taxonomy = taxonomy_from_nested({
...     "drinks": {"soda": ["Coke", "Pepsi"], "water": ["Evian"]},
... })
>>> coke, pepsi = taxonomy.id_of("Coke"), taxonomy.id_of("Pepsi")
>>> evian = taxonomy.id_of("Evian")
>>> rows = [[coke, evian]] * 40 + [[pepsi]] * 40 + [[coke]] * 20
>>> result = mine_negative_rules(rows, taxonomy, minsup=0.2, minri=0.3)
>>> isinstance(result.rules, list)
True
"""

from .core.api import MiningConfig, NegativeMiningResult, mine_negative_rules
from .core.candidates import NegativeCandidate, generate_negative_candidates
from .core.interest import rule_interest
from .core.negmining import (
    ImprovedNegativeMiner,
    NaiveNegativeMiner,
    NegativeItemset,
)
from .core.rulegen import NegativeRule, generate_negative_rules
from .data.database import TransactionDatabase
from .errors import (
    ConfigError,
    DatabaseError,
    GenerationError,
    ReproError,
    TaxonomyError,
)
from .mining.apriori import find_large_itemsets
from .mining.generalized import mine_generalized
from .mining.itemset_index import LargeItemsetIndex
from .mining.rules import AssociationRule, generate_rules
from .parallel import (
    ParallelStats,
    PoolConfig,
    WorkerPool,
    parallel_count_supports,
    parallel_partition,
)
from .taxonomy.tree import Taxonomy

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # high-level API
    "mine_negative_rules",
    "MiningConfig",
    "NegativeMiningResult",
    # core types
    "NegativeCandidate",
    "NegativeItemset",
    "NegativeRule",
    "generate_negative_candidates",
    "generate_negative_rules",
    "rule_interest",
    "NaiveNegativeMiner",
    "ImprovedNegativeMiner",
    # substrates
    "TransactionDatabase",
    "Taxonomy",
    "LargeItemsetIndex",
    "find_large_itemsets",
    "mine_generalized",
    "AssociationRule",
    "generate_rules",
    # parallel execution
    "ParallelStats",
    "PoolConfig",
    "WorkerPool",
    "parallel_count_supports",
    "parallel_partition",
    # errors
    "ReproError",
    "ConfigError",
    "DatabaseError",
    "TaxonomyError",
    "GenerationError",
]
