"""Process worker pool with per-task timeouts, retries and serial fallback.

:class:`WorkerPool` is the execution substrate of the parallel engine. It
deliberately does **not** reuse :class:`multiprocessing.Pool` /
``concurrent.futures``: both lose track of tasks when a worker dies
abruptly (a killed child can hang a pending ``get()`` forever), and the
whole point of this pool is that a crashed or wedged worker degrades to a
retry and finally to in-process serial execution rather than a hang.

Design: one short-lived process per task *attempt*, at most ``n_jobs``
in flight, results returned over a one-way pipe. On Linux (fork start
method) process creation costs milliseconds, which is negligible against a
counting pass; the scheme buys exact crash detection (pipe EOF), exact
timeout enforcement (``terminate()``), and zero shared state between
attempts.

Failure ladder per task::

    attempt 1 .. 1 + retries   (each failure sleeps backoff * attempt)
    -> serial fallback         (the task runs in the parent process)

The serial fallback re-raises whatever the task raises — a
deterministically failing task therefore surfaces its real exception to
the caller instead of a wrapped pool error.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait

from .._util import check_nonnegative, check_positive
from ..errors import ConfigError
from ..obs import api as _obs


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` request: ``None`` means one per CPU."""
    if n_jobs is None:
        return max(1, os.cpu_count() or 1)
    return check_positive(n_jobs, "n_jobs")


@dataclass(frozen=True, slots=True)
class PoolConfig:
    """Tunables of one :class:`WorkerPool`.

    Attributes
    ----------
    n_jobs:
        Maximum concurrent worker processes. ``1`` disables
        multiprocessing entirely: tasks run serially in the parent.
    timeout:
        Per-attempt wall-clock budget in seconds; ``None`` = unbounded.
        A timed-out worker is terminated and the task retried.
    retries:
        Re-attempts after the first failed attempt, before the serial
        fallback.
    backoff:
        Base sleep between attempts; attempt ``k`` sleeps ``backoff * k``.
    start_method:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); ``None`` = platform default.
    """

    n_jobs: int = 1
    timeout: float | None = None
    retries: int = 1
    backoff: float = 0.05
    start_method: str | None = None

    def __post_init__(self) -> None:
        check_positive(self.n_jobs, "n_jobs")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(
                f"timeout must be positive or None, got {self.timeout!r}"
            )
        check_nonnegative(self.retries, "retries")
        check_nonnegative(self.backoff, "backoff")


@dataclass(slots=True)
class PoolStats:
    """Observable accounting of one pool's lifetime.

    Attributes
    ----------
    tasks:
        Tasks submitted via :meth:`WorkerPool.map`.
    workers_launched:
        Worker processes started (attempts, not tasks).
    retries:
        Failed attempts that were re-queued.
    timeouts:
        Attempts killed for exceeding the per-task timeout.
    crashes:
        Attempts whose worker died without reporting a result.
    errors:
        Attempts whose worker raised an exception.
    serial_tasks:
        Tasks run in the parent because ``n_jobs == 1``.
    fallbacks:
        Tasks run in the parent after exhausting retries (or because
        worker processes could not be created at all).
    """

    tasks: int = 0
    workers_launched: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    errors: int = 0
    serial_tasks: int = 0
    fallbacks: int = 0


def _child(func: Callable, payload, connection) -> None:
    """Worker entry point: run one task, report over the pipe, exit."""
    # A forked child inherits the parent's observability state, including
    # open trace-file handles it must never write to or close; start
    # clean. Tasks that should measure open their own worker-scope
    # collection and ship the registry back in their result.
    _obs.detach()
    try:
        result = func(payload)
    except BaseException as exc:  # noqa: BLE001 — report, parent decides
        try:
            connection.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            connection.close()
        return
    connection.send(("ok", result))
    connection.close()


class _Task:
    __slots__ = ("index", "payload", "attempts", "process", "connection",
                 "deadline")

    def __init__(self, index: int, payload) -> None:
        self.index = index
        self.payload = payload
        self.attempts = 0
        self.process = None
        self.connection = None
        self.deadline: float | None = None


class WorkerPool:
    """Run independent tasks across worker processes; never hang.

    Parameters
    ----------
    config:
        A :class:`PoolConfig`; defaults to serial (``n_jobs=1``).

    Notes
    -----
    Task functions and payloads must be picklable under the chosen start
    method (top-level functions; payloads of plain tuples). Results are
    returned in submission order regardless of completion order, so a
    caller merging partial results gets a deterministic reduction.
    """

    def __init__(self, config: PoolConfig | None = None) -> None:
        self.config = config or PoolConfig()
        self.stats = PoolStats()
        self._context = multiprocessing.get_context(self.config.start_method)

    def map(self, func: Callable, payloads: Iterable) -> list:
        """Apply *func* to every payload; return results in order.

        Failures follow the module-level ladder: retry with backoff, then
        serial fallback in the parent. Exceptions raised by the serial
        fallback (or by any task when ``n_jobs == 1``) propagate.
        """
        items: Sequence = list(payloads)
        results: list = [None] * len(items)
        self.stats.tasks += len(items)
        if not items:
            return results
        if self.config.n_jobs == 1:
            for index, payload in enumerate(items):
                results[index] = func(payload)
                self.stats.serial_tasks += 1
            return results
        self._run_parallel(func, items, results)
        return results

    # ------------------------------------------------------------------
    # Parallel scheduler
    # ------------------------------------------------------------------
    def _run_parallel(
        self, func: Callable, items: Sequence, results: list
    ) -> None:
        pending: deque[_Task] = deque(
            _Task(index, payload) for index, payload in enumerate(items)
        )
        running: dict = {}  # recv connection -> _Task
        try:
            while pending or running:
                while pending and len(running) < self.config.n_jobs:
                    task = pending.popleft()
                    if not self._launch(func, task):
                        # Process creation failed: finish in-parent.
                        results[task.index] = func(task.payload)
                        self.stats.fallbacks += 1
                        continue
                    running[task.connection] = task
                if not running:
                    continue
                for connection in self._wait(running):
                    task = running.pop(connection)
                    self._finish(func, task, pending, results)
                self._reap_timeouts(func, running, pending, results)
        finally:
            for task in running.values():
                self._kill(task)

    def _launch(self, func: Callable, task: _Task) -> bool:
        receiver, sender = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_child, args=(func, task.payload, sender), daemon=True
        )
        try:
            process.start()
        except OSError:
            receiver.close()
            sender.close()
            return False
        sender.close()  # parent's copy — EOF then tracks the child alone
        task.process = process
        task.connection = receiver
        task.attempts += 1
        if self.config.timeout is not None:
            task.deadline = time.monotonic() + self.config.timeout
        self.stats.workers_launched += 1
        return True

    def _wait(self, running: dict) -> list:
        timeout = None
        deadlines = [
            task.deadline
            for task in running.values()
            if task.deadline is not None
        ]
        if deadlines:
            timeout = max(0.0, min(deadlines) - time.monotonic())
        return _connection_wait(list(running), timeout)

    def _finish(
        self, func: Callable, task: _Task, pending: deque, results: list
    ) -> None:
        try:
            status, value = task.connection.recv()
        except (EOFError, OSError):
            status, value = "crashed", None
        task.connection.close()
        task.process.join()
        if status == "ok":
            results[task.index] = value
            return
        if status == "crashed":
            self.stats.crashes += 1
        else:
            self.stats.errors += 1
        self._retry_or_fallback(func, task, pending, results)

    def _reap_timeouts(
        self, func: Callable, running: dict, pending: deque, results: list
    ) -> None:
        now = time.monotonic()
        for connection, task in list(running.items()):
            if task.deadline is not None and now >= task.deadline:
                del running[connection]
                self._kill(task)
                self.stats.timeouts += 1
                self._retry_or_fallback(func, task, pending, results)

    def _retry_or_fallback(
        self, func: Callable, task: _Task, pending: deque, results: list
    ) -> None:
        if task.attempts <= self.config.retries:
            self.stats.retries += 1
            if self.config.backoff:
                time.sleep(self.config.backoff * task.attempts)
            task.process = None
            task.connection = None
            task.deadline = None
            pending.append(task)
            return
        results[task.index] = func(task.payload)
        self.stats.fallbacks += 1

    def _kill(self, task: _Task) -> None:
        process = task.process
        if process is None:
            return
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover — stubborn child
                process.kill()
                process.join()
        else:
            process.join()
        if task.connection is not None:
            task.connection.close()


# ----------------------------------------------------------------------
# Persistent workers (shared-memory mode)
# ----------------------------------------------------------------------

def _persistent_child(setup_func, setup_payload, func, connection) -> None:
    """Long-lived worker loop: set up once, then serve tasks until told.

    Protocol over the duplex pipe (child's view)::

        recv ("task", payload)   -> send ("ok", result) | ("error", msg)
        recv ("setup", payload)  -> send ("ready", seconds) | ("error", msg)
        recv ("stop",) / EOF     -> clean up state, exit

    A *setup* failure is fatal to the worker (it has no valid state to
    serve from): it reports the error and exits, and the parent's
    respawn budget decides what happens next. A *task* failure is not —
    the worker's state is still good, so it reports and keeps serving.
    """
    _obs.detach()
    state = None
    try:
        try:
            start = time.perf_counter()
            state = setup_func(setup_payload)
            connection.send(("ready", time.perf_counter() - start))
        except BaseException as exc:  # noqa: BLE001 — report, then die
            connection.send(("error", f"{type(exc).__name__}: {exc}"))
            return
        while True:
            try:
                message = connection.recv()
            except (EOFError, OSError):
                return
            kind = message[0]
            if kind == "stop":
                return
            if kind == "setup":
                old, state = state, None
                if old is not None and hasattr(old, "close"):
                    old.close()
                try:
                    start = time.perf_counter()
                    state = setup_func(message[1])
                    connection.send(
                        ("ready", time.perf_counter() - start)
                    )
                except BaseException as exc:  # noqa: BLE001
                    connection.send(
                        ("error", f"{type(exc).__name__}: {exc}")
                    )
                    return
                continue
            try:
                result = func(state, message[1])
            except BaseException as exc:  # noqa: BLE001
                connection.send(("error", f"{type(exc).__name__}: {exc}"))
                continue
            connection.send(("ok", result))
    finally:
        if state is not None and hasattr(state, "close"):
            state.close()
        try:
            connection.close()
        except OSError:  # pragma: no cover
            pass


class _PersistentTask:
    __slots__ = ("index", "payload", "attempts")

    def __init__(self, index: int, payload) -> None:
        self.index = index
        self.payload = payload
        self.attempts = 0


class _PersistentWorker:
    __slots__ = ("process", "connection", "task", "expecting", "deadline")

    def __init__(self, process, connection) -> None:
        self.process = process
        self.connection = connection
        self.task: _PersistentTask | None = None
        #: What the parent awaits from this worker: ``"ready"`` after a
        #: spawn or setup send, ``"result"`` after a task send, ``None``
        #: when idle and attached.
        self.expecting: str | None = "ready"
        self.deadline: float | None = None


class PersistentWorkerPool:
    """Long-lived workers sharing per-worker state across many maps.

    The complement of :class:`WorkerPool` for the shared-memory engine:
    instead of one short-lived process per task attempt, ``n_jobs``
    workers run *setup_func(setup_payload)* once (e.g. attach a
    shared-memory segment), then serve ``func(state, payload)`` tasks
    over the same pipes until :meth:`close`. :meth:`reconfigure` points
    every worker at a new setup payload (segment re-publish) without
    restarting processes.

    The failure ladder is the same shape as :class:`WorkerPool`: a
    timed-out attempt is terminated and retried, a crashed worker is
    respawned and the task retried, and a task that exhausts
    ``config.retries`` runs through *fallback* in the parent. Setup
    failures have their own budget — ``config.retries + 1`` consecutive
    failed attachments mark the pool broken, after which every task goes
    straight to the parent fallback instead of spinning up doomed
    workers forever.

    *setup_func* / *func* must be picklable under the chosen start
    method (top-level functions); *fallback* stays in the parent and may
    be any callable of one payload.
    """

    def __init__(
        self,
        config: PoolConfig,
        setup_func: Callable,
        setup_payload,
        func: Callable,
        fallback: Callable,
    ) -> None:
        self.config = config
        self.stats = PoolStats()
        self._setup_func = setup_func
        self._setup_payload = setup_payload
        self._func = func
        self._fallback = fallback
        self._context = multiprocessing.get_context(config.start_method)
        self._workers: list[_PersistentWorker] = []
        self._setup_failures = 0
        self._broken = False
        self._attach_seconds: list[float] = []
        self._closed = False

    # -- public surface ------------------------------------------------

    def map(self, payloads: Iterable) -> list:
        """Run every payload through a worker; results in order.

        Serial when ``n_jobs == 1`` (the parent fallback runs every
        payload — no worker processes, no shared state).
        """
        items: Sequence = list(payloads)
        results: list = [None] * len(items)
        self.stats.tasks += len(items)
        if not items:
            return results
        if self.config.n_jobs == 1 or self._closed:
            for index, payload in enumerate(items):
                results[index] = self._fallback(payload)
                self.stats.serial_tasks += 1
            return results
        self._run(items, results)
        return results

    def reconfigure(self, setup_payload) -> None:
        """Point every worker at a new setup payload (re-publish).

        Live idle workers get a ``setup`` message and re-attach in
        place; workers are never restarted for this. The new payload
        also seeds any worker spawned later. A broken pool un-breaks:
        the new segment may well be attachable.
        """
        self._setup_payload = setup_payload
        self._broken = False
        self._setup_failures = 0
        for worker in list(self._workers):
            try:
                worker.connection.send(("setup", setup_payload))
            except (OSError, ValueError):
                self._discard(worker)
                continue
            worker.expecting = "ready"
            worker.deadline = self._deadline()

    def drain_stats(self) -> PoolStats:
        """Return and reset the accumulated stats (per-pass absorb)."""
        stats, self.stats = self.stats, PoolStats()
        return stats

    def drain_attach_seconds(self) -> list[float]:
        """Return and reset the attach wall times workers reported."""
        seconds, self._attach_seconds = self._attach_seconds, []
        return seconds

    def close(self) -> None:
        """Stop every worker and release their pipes (idempotent)."""
        self._closed = True
        for worker in self._workers:
            try:
                worker.connection.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover — stubborn
                worker.process.kill()
                worker.process.join()
            worker.connection.close()
        self._workers = []

    @property
    def alive_workers(self) -> int:
        """Workers currently running (spawned and not yet discarded)."""
        return sum(
            1 for worker in self._workers if worker.process.is_alive()
        )

    # -- scheduler -----------------------------------------------------

    def _run(self, items: Sequence, results: list) -> None:
        pending: deque[_PersistentTask] = deque(
            _PersistentTask(index, payload)
            for index, payload in enumerate(items)
        )
        while pending or self._in_flight():
            if self._broken:
                while pending:
                    task = pending.popleft()
                    results[task.index] = self._fallback(task.payload)
                    self.stats.fallbacks += 1
            else:
                self._spawn_missing(len(pending))
                self._assign(pending, results)
            expecting = [
                worker
                for worker in self._workers
                if worker.expecting is not None
            ]
            if not expecting:
                stranded = [
                    worker
                    for worker in self._workers
                    if worker.task is not None
                ]
                if stranded:
                    # Backstop: a worker holds a task but fell out of the
                    # wait set (should not happen — see the stale-ready
                    # guard in ``_service``).  Re-arm it rather than spin.
                    for worker in stranded:
                        worker.expecting = "result"
                    continue
                if pending and not self._workers:
                    # Nothing could be spawned at all: finish in-parent.
                    task = pending.popleft()
                    results[task.index] = self._fallback(task.payload)
                    self.stats.fallbacks += 1
                continue
            by_connection = {
                worker.connection: worker for worker in expecting
            }
            timeout = self._wait_timeout(expecting)
            for connection in _connection_wait(
                list(by_connection), timeout
            ):
                self._service(
                    by_connection[connection], pending, results
                )
            self._reap_timeouts(pending, results)

    def _in_flight(self) -> bool:
        return any(worker.task is not None for worker in self._workers)

    def _deadline(self) -> float | None:
        if self.config.timeout is None:
            return None
        return time.monotonic() + self.config.timeout

    def _wait_timeout(self, workers: list) -> float | None:
        deadlines = [
            worker.deadline
            for worker in workers
            if worker.deadline is not None
        ]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - time.monotonic())

    def _spawn_missing(self, pending_count: int) -> None:
        busy = sum(
            1 for worker in self._workers if worker.task is not None
        )
        target = min(self.config.n_jobs, busy + pending_count)
        while len(self._workers) < target:
            parent_end, child_end = self._context.Pipe(duplex=True)
            process = self._context.Process(
                target=_persistent_child,
                args=(
                    self._setup_func,
                    self._setup_payload,
                    self._func,
                    child_end,
                ),
                daemon=True,
            )
            try:
                process.start()
            except OSError:
                parent_end.close()
                child_end.close()
                self._broken = True
                return
            child_end.close()
            self.stats.workers_launched += 1
            worker = _PersistentWorker(process, parent_end)
            worker.deadline = self._deadline()
            self._workers.append(worker)

    def _assign(self, pending: deque, results: list) -> None:
        for worker in list(self._workers):
            if not pending:
                return
            if worker.task is not None or worker.expecting is not None:
                continue
            task = pending.popleft()
            task.attempts += 1
            try:
                worker.connection.send(("task", task.payload))
            except (OSError, ValueError):
                self.stats.crashes += 1
                self._discard(worker)
                self._retry_or_fallback(task, pending, results)
                continue
            worker.task = task
            worker.expecting = "result"
            worker.deadline = self._deadline()

    def _service(
        self, worker: _PersistentWorker, pending: deque, results: list
    ) -> None:
        try:
            message = worker.connection.recv()
        except (EOFError, OSError):
            self._on_death(worker, pending, results)
            return
        kind = message[0]
        if kind == "ready":
            self._setup_failures = 0
            self._attach_seconds.append(message[1])
            if worker.task is None:
                worker.expecting = None
                worker.deadline = None
            # Otherwise this is a stale "ready": a map() can return while
            # a worker's attach reply is still unread (the scheduler only
            # waits for its own tasks), and a later reconfigure() queues a
            # second setup behind it.  Once the worker has been handed a
            # task it still owes a result, so it must stay in the wait
            # set — clearing ``expecting`` here would drop it while its
            # reply sits unread, and the scheduler would spin forever on
            # ``_in_flight()``.
            return
        if kind == "ok":
            task = worker.task
            worker.task = None
            worker.expecting = None
            worker.deadline = None
            results[task.index] = message[1]
            return
        # kind == "error"
        if worker.task is not None:
            self.stats.errors += 1
            task = worker.task
            worker.task = None
            worker.expecting = None
            worker.deadline = None
            self._retry_or_fallback(task, pending, results)
            return
        # Setup failed; the child exits right after reporting.
        self._discard(worker)
        self._note_setup_failure()

    def _on_death(
        self, worker: _PersistentWorker, pending: deque, results: list
    ) -> None:
        task = worker.task
        expecting = worker.expecting
        self._discard(worker)
        if task is not None:
            self.stats.crashes += 1
            self._retry_or_fallback(task, pending, results)
        elif expecting == "ready":
            self._note_setup_failure()

    def _reap_timeouts(self, pending: deque, results: list) -> None:
        now = time.monotonic()
        for worker in list(self._workers):
            if worker.deadline is None or now < worker.deadline:
                continue
            self.stats.timeouts += 1
            task = worker.task
            expecting = worker.expecting
            self._discard(worker)
            if task is not None:
                self._retry_or_fallback(task, pending, results)
            elif expecting == "ready":
                self._note_setup_failure()

    def _retry_or_fallback(
        self, task: _PersistentTask, pending: deque, results: list | None
    ) -> None:
        if task.attempts <= self.config.retries:
            self.stats.retries += 1
            if self.config.backoff:
                time.sleep(self.config.backoff * task.attempts)
            pending.append(task)
            return
        self.stats.fallbacks += 1
        if results is not None:
            results[task.index] = self._fallback(task.payload)

    def _note_setup_failure(self) -> None:
        self._setup_failures += 1
        if self._setup_failures > self.config.retries:
            self._broken = True

    def _discard(self, worker: _PersistentWorker) -> None:
        if worker in self._workers:
            self._workers.remove(worker)
        process = worker.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover — stubborn child
                process.kill()
                process.join()
        else:
            process.join()
        worker.connection.close()
