"""Item taxonomy: the domain knowledge driving negative-rule mining.

The paper assumes "a taxonomy on the items" — a forest whose leaves are the
items that actually appear in transactions and whose internal nodes are
categories (departments, categories, sub-categories...). Candidate negative
itemsets are built from the *immediate children* and *siblings* of the items
of large itemsets, so the :class:`~repro.taxonomy.tree.Taxonomy` class
provides exactly those neighborhood queries, plus ancestor closure for
generalized support counting, plus the small-item pruning of the Improved
algorithm (Section 2.2.2).
"""

from .analysis import (
    GranularityFinding,
    TaxonomyProfile,
    category_balance,
    format_profile,
    granularity_report,
    profile,
)
from .builders import (
    taxonomy_from_edges,
    taxonomy_from_nested,
    taxonomy_from_parents,
)
from .prune import restrict_to_items
from .tree import Taxonomy

__all__ = [
    "Taxonomy",
    "taxonomy_from_edges",
    "taxonomy_from_nested",
    "taxonomy_from_parents",
    "restrict_to_items",
    "TaxonomyProfile",
    "GranularityFinding",
    "profile",
    "format_profile",
    "granularity_report",
    "category_balance",
]
