"""A8 — Ablation: the four frequent-itemset miners of the substrate.

Apriori (level-wise counting), AprioriTid (single data pass),
AprioriHybrid (switch-over) and Partition (two passes) all compute the
same large itemsets; this ablation compares their wall-clock time and
data passes on the leaf-level (non-generalized) workload and verifies
output equality.

Run directly::

    python -m benchmarks.bench_ablation_miners
"""

import time

import pytest

from repro.mining.apriori import find_large_itemsets
from repro.mining.aprioritid import (
    find_large_itemsets_aprioritid,
    find_large_itemsets_hybrid,
)
from repro.mining.partition import find_large_itemsets_partition

from .common import dataset, support_sweep

MINSUP = support_sweep()[0]

MINERS = {
    "apriori": lambda db: find_large_itemsets(db, MINSUP),
    "aprioritid": lambda db: find_large_itemsets_aprioritid(db, MINSUP),
    "hybrid": lambda db: find_large_itemsets_hybrid(db, MINSUP),
    "partition": lambda db: find_large_itemsets_partition(
        db, MINSUP, partitions=4
    ),
}


@pytest.mark.parametrize("name", sorted(MINERS))
def test_frequent_miner(benchmark, name):
    data = dataset("short")
    data.database.reset_scans()

    def mine():
        data.database.reset_scans()
        return MINERS[name](data.database)

    index = benchmark.pedantic(mine, rounds=1, iterations=1)
    benchmark.extra_info.update(
        large_itemsets=len(index),
        passes=data.database.scans,
    )


def main() -> None:
    data = dataset("short")
    print(
        f"=== A8: frequent-itemset miners at MinSup={MINSUP} "
        f"(leaf items, |D|={len(data.database)}) ==="
    )
    results = {}
    for name in ("apriori", "aprioritid", "hybrid", "partition"):
        data.database.reset_scans()
        started = time.perf_counter()
        index = MINERS[name](data.database)
        elapsed = time.perf_counter() - started
        results[name] = index
        print(
            f"  {name:<11} {elapsed:7.3f}s  large={len(index):>5} "
            f"passes={data.database.scans}"
        )
    agree = all(
        results[name] == results["apriori"] for name in results
    )
    print(f"\nall miners agree: {agree} (must be True)")


if __name__ == "__main__":
    main()
