"""Persona-driven grocery demo: plant loyalties, recover them as rules.

Uses the curated grocery world (:mod:`repro.synthetic.grocery`): three
household personas with declared brand loyalties generate shopping trips,
then the miner is asked to find the negative associations those loyalties
imply. Because the ground truth is explicit, you can see exactly which
planted signals the taxonomy-based approach can and cannot express — a
two-brand rivalry inside one category is only visible through
*cross-category* partners, which is precisely the structure of the
paper's Ruffles/Coke/Pepsi example.

Run with::

    python examples/grocery_personas.py
"""

from repro import mine_negative_rules
from repro.measures import score_negative_rule
from repro.synthetic import generate_grocery_dataset


def main() -> None:
    dataset = generate_grocery_dataset(num_transactions=6000, seed=11)
    taxonomy = dataset.taxonomy

    print("personas and their planted loyalties:")
    for persona in dataset.personas:
        loyalties = ", ".join(
            f"{category}->{brand}"
            for category, brand in persona.loyalties.items()
        )
        print(f"  {persona.name:<10} ({persona.weight:.0%})  {loyalties}")

    result = mine_negative_rules(
        dataset.database, taxonomy, minsup=0.05, minri=0.4
    )
    print()
    print(
        f"mined: {result.stats.large_itemsets} large itemsets, "
        f"{result.stats.candidates_generated} candidates, "
        f"{len(result.rules)} rules"
    )

    print()
    print("brand-level rules (the recovered loyalties):")
    total = len(dataset.database)
    brand_rules = [
        rule
        for rule in result.rules
        if all(taxonomy.is_leaf(item) for item in rule.items)
    ]
    for rule in brand_rules[:10]:
        scores = score_negative_rule(rule, total)
        print(
            f"  {rule.format(taxonomy)}  "
            f"[avoids: {scores.negative_confidence:.0%}, "
            f"lift {scores.lift:.2f}]"
        )

    print()
    print("category-level rules (persona structure):")
    category_rules = [
        rule
        for rule in result.rules
        if any(not taxonomy.is_leaf(item) for item in rule.items)
    ]
    for rule in category_rules[:8]:
        print("  " + rule.format(taxonomy))


if __name__ == "__main__":
    main()
