"""Quickstart: mine negative association rules in ~30 lines.

Builds a small grocery taxonomy, synthesizes transactions in which Rich's
granola buyers systematically avoid one yogurt brand, and lets the library
surface that as a strong negative rule.

Run with::

    python examples/quickstart.py
"""

import random

from repro import mine_negative_rules
from repro.taxonomy import taxonomy_from_nested


def main() -> None:
    taxonomy = taxonomy_from_nested(
        {
            "breakfast": {
                "granola": ["CrunchyOats", "HoneyMix"],
                "yogurt": ["AlpineCream", "DailyFresh"],
            },
        }
    )
    crunchy = taxonomy.id_of("CrunchyOats")
    honey = taxonomy.id_of("HoneyMix")
    alpine = taxonomy.id_of("AlpineCream")
    daily = taxonomy.id_of("DailyFresh")

    # Granola and yogurt are bought together — but CrunchyOats buyers
    # almost always choose AlpineCream, never DailyFresh.
    rng = random.Random(7)
    transactions = []
    for _ in range(3000):
        basket = set()
        if rng.random() < 0.5:
            granola = crunchy if rng.random() < 0.5 else honey
            basket.add(granola)
            if rng.random() < 0.7:
                if granola == crunchy:
                    basket.add(alpine if rng.random() < 0.95 else daily)
                else:
                    basket.add(alpine if rng.random() < 0.5 else daily)
        else:
            basket.add(rng.choice([alpine, daily]))
        transactions.append(basket)

    result = mine_negative_rules(
        transactions, taxonomy, minsup=0.05, minri=0.3
    )

    print(f"large itemsets    : {result.stats.large_itemsets}")
    print(f"candidates tested : {result.stats.candidates_generated}")
    print(f"negative itemsets : {result.stats.negative_itemsets}")
    print(f"rules             : {len(result.rules)}")
    print()
    print("strongest negative rules:")
    for rule in result.rules[:5]:
        print("  " + rule.format(taxonomy))


if __name__ == "__main__":
    main()
