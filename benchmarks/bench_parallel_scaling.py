"""P1 — Parallel scaling: sharded counting vs serial, n_jobs in {2, 4}.

Times one generalized counting pass (the pipeline's inner loop) serially
and sharded across worker processes, asserts all variants return
identical counts, and emits a JSON record of the measured wall times.
On a single-core box the parallel variants mostly measure process
start-up + shard transport overhead; on multi-core hardware they show
the speedup. Either way the counts must be bit-identical.

Run directly::

    python -m benchmarks.bench_parallel_scaling
"""

import json
import time

import pytest

from repro.core.candidates import generate_negative_candidates
from repro.core.session import MiningSession
from repro.mining.generalized import mine_generalized
from repro.parallel.engine import ParallelStats, parallel_count_supports

from .common import MINRI, dataset, support_sweep

MINSUP = support_sweep()[0]
JOB_COUNTS = (1, 2, 4)


def _setup(kind="short"):
    data = dataset(kind)
    index = mine_generalized(data.database, data.taxonomy, MINSUP)
    candidates = sorted(
        generate_negative_candidates(index, data.taxonomy, MINSUP, MINRI)
    )
    return data, candidates


def _count(data, candidates, n_jobs, stats=None):
    if n_jobs == 1:
        session = MiningSession(data.database, data.taxonomy)
        return session.count(candidates, restrict_to_candidate_items=True)
    return parallel_count_supports(
        data.database.scan(),
        candidates,
        taxonomy=data.taxonomy,
        restrict_to_candidate_items=True,
        n_jobs=n_jobs,
        stats=stats,
    )


@pytest.mark.parametrize("n_jobs", JOB_COUNTS)
def test_parallel_scaling(benchmark, n_jobs):
    data, candidates = _setup()
    serial = _count(data, candidates, 1)

    counts = benchmark.pedantic(
        lambda: _count(data, candidates, n_jobs), rounds=1, iterations=1
    )
    assert counts == serial
    benchmark.extra_info.update(
        candidates=len(candidates), transactions=len(data.database)
    )


def main() -> None:
    data, candidates = _setup()
    print(
        f"=== P1: parallel counting scaling over {len(candidates)} "
        f"candidates, |D|={len(data.database)} ==="
    )
    record = {
        "bench": "parallel_scaling",
        "minsup": MINSUP,
        "transactions": len(data.database),
        "candidates": len(candidates),
        "runs": [],
    }
    reference = None
    for n_jobs in JOB_COUNTS:
        stats = ParallelStats()
        started = time.perf_counter()
        counts = _count(data, candidates, n_jobs, stats=stats)
        elapsed = time.perf_counter() - started
        agrees = reference is None or counts == reference
        reference = reference or counts
        record["runs"].append(
            {
                "n_jobs": n_jobs,
                "seconds": round(elapsed, 4),
                "shards": stats.shards,
                "workers_launched": stats.workers_launched,
                "agrees": agrees,
            }
        )
        print(
            f"  n_jobs={n_jobs}  {elapsed:8.3f}s  shards={stats.shards}"
            f"  workers={stats.workers_launched}  agrees={agrees}"
        )
    print("\nJSON:")
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
