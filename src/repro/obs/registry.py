"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the single store every instrumented subsystem writes
into — the counting engines, the vertical cache, the bit-packed kernel,
the worker pool, and the miners all record named metrics here instead of
threading ad-hoc counter fields through every call chain (the legacy
``CacheStats``/``ParallelStats`` accumulators are now thin views over a
registry; see :mod:`repro.mining.vertical` and
:mod:`repro.parallel.engine`).

Three metric kinds, all plain data:

counters
    Monotonically growing integers (``incr``). ``set_counter`` exists
    for the adapter classes that historically assigned (e.g.
    ``stats.bytes = max(...)``).
gauges
    Last-written floats (``set_gauge``) with a ``max_gauge`` convenience
    for high-water marks. Merging keeps the maximum — the only gauge
    semantics that aggregates sensibly across worker processes.
histograms
    Fixed-boundary bucket counts plus total count and sum
    (:class:`Histogram`). Span durations land here, one histogram per
    span name.

Registries are **mergeable and picklable**: a parallel worker builds a
fresh registry, records into it, ships it back through the worker pool,
and the driver folds it in with :meth:`MetricsRegistry.merge` — counters
add, gauges max, histograms add bucket-wise. Merging requires identical
histogram boundaries (they are fixed at first observation).
"""

from __future__ import annotations

import json

from ..errors import ConfigError

#: Default histogram boundaries (seconds), tuned for span durations:
#: sub-millisecond cache hits up to multi-minute full-scale passes.
DEFAULT_BOUNDS = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)


class Histogram:
    """Fixed-boundary bucket counts with total count and sum.

    ``bounds`` are the upper edges of the finite buckets; one overflow
    bucket catches everything above the last edge. An observation of
    value ``v`` lands in the first bucket whose edge satisfies
    ``v <= edge``.
    """

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        edges = tuple(float(edge) for edge in bounds)
        if not edges or any(
            later <= earlier for earlier, later in zip(edges, edges[1:])
        ):
            raise ConfigError(
                "histogram bounds must be a non-empty strictly "
                f"increasing sequence, got {bounds!r}"
            )
        self.bounds = edges
        self.buckets = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        slot = len(self.bounds)
        for index, edge in enumerate(self.bounds):
            if value <= edge:
                slot = index
                break
        self.buckets[slot] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold *other* into this histogram (boundaries must match)."""
        if other.bounds != self.bounds:
            raise ConfigError(
                "cannot merge histograms with different boundaries: "
                f"{self.bounds!r} vs {other.bounds!r}"
            )
        for slot, value in enumerate(other.buckets):
            self.buckets[slot] += value
        self.count += other.count
        self.sum += other.sum

    def snapshot(self) -> dict:
        """JSON-able representation."""
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": round(self.sum, 9),
        }

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, sum={self.sum:.6f}, "
            f"buckets={len(self.buckets)})"
        )


class MetricsRegistry:
    """Named counters, gauges and histograms; mergeable across processes.

    Plain dictionaries underneath, so the default pickle round-trips a
    registry unchanged — exactly what the worker pool ships back to the
    driver. All mutating methods are cheap enough for per-pass hot paths
    (one dict operation each); nothing here is per-row.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def incr(self, name: str, value: int = 1) -> None:
        """Add *value* to counter *name* (creating it at zero)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 when never written)."""
        return self._counters.get(name, 0)

    def set_counter(self, name: str, value: int) -> None:
        """Overwrite counter *name* (adapter support; prefer ``incr``)."""
        self._counters[name] = value

    # ------------------------------------------------------------------
    # Gauges
    # ------------------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value*."""
        self._gauges[name] = value

    def max_gauge(self, name: str, value: float) -> None:
        """Raise gauge *name* to *value* if it is a new high-water mark."""
        if value > self._gauges.get(name, float("-inf")):
            self._gauges[name] = value

    def gauge(self, name: str) -> float:
        """Current value of gauge *name* (0.0 when never written)."""
        return self._gauges.get(name, 0.0)

    # ------------------------------------------------------------------
    # Histograms
    # ------------------------------------------------------------------
    def observe(
        self,
        name: str,
        value: float,
        bounds: tuple[float, ...] = DEFAULT_BOUNDS,
    ) -> None:
        """Record *value* into histogram *name*.

        The histogram is created with *bounds* on first observation;
        later observations reuse the existing boundaries (*bounds* is
        ignored then — boundaries are fixed for the registry lifetime).
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(bounds)
        histogram.observe(value)

    def histogram(self, name: str) -> Histogram | None:
        """The histogram *name*, or None when never observed."""
        return self._histograms.get(name)

    # ------------------------------------------------------------------
    # Aggregation / export
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold *other* into this registry; returns self.

        Counters add, gauges keep the maximum, histograms merge
        bucket-wise (boundaries must match). The canonical use is the
        driver absorbing registries shipped back from worker processes.
        """
        for name, value in other._counters.items():
            self.incr(name, value)
        for name, value in other._gauges.items():
            self.max_gauge(name, value)
        for name, histogram in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = self._histograms[name] = Histogram(histogram.bounds)
            mine.merge(histogram)
        return self

    def names(self) -> list[str]:
        """All metric names, sorted (counters, gauges and histograms)."""
        return sorted(
            set(self._counters)
            | set(self._gauges)
            | set(self._histograms)
        )

    def snapshot(self) -> dict:
        """A JSON-able dump of every metric."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": {
                name: round(value, 9)
                for name, value in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def to_json(self) -> str:
        """The snapshot rendered as one JSON document."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def summary(self) -> str:
        """A human-readable report of every metric, sorted by name."""
        lines = []
        if self._counters:
            lines.append("counters:")
            width = max(len(name) for name in self._counters)
            for name, value in sorted(self._counters.items()):
                lines.append(f"  {name:<{width}}  {value}")
        if self._gauges:
            lines.append("gauges:")
            width = max(len(name) for name in self._gauges)
            for name, value in sorted(self._gauges.items()):
                lines.append(f"  {name:<{width}}  {value:g}")
        if self._histograms:
            lines.append("histograms:")
            width = max(len(name) for name in self._histograms)
            for name, histogram in sorted(self._histograms.items()):
                lines.append(
                    f"  {name:<{width}}  count={histogram.count}  "
                    f"sum={histogram.sum:.6f}s  "
                    f"mean={histogram.mean:.6f}s"
                )
        if not lines:
            return "(no metrics recorded)"
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )


def stats_property(metric: str, kind: str = "counter") -> property:
    """A field property for registry-backed stats-view classes.

    The owning class must expose ``registry`` (a
    :class:`MetricsRegistry`) and ``_prefix`` (a metric-name prefix,
    usually empty; ``"worker."`` inside pool workers). Reads and writes
    of the property go straight to the named metric, so legacy
    accumulator idioms (``stats.hits += 1``,
    ``stats.bytes = max(stats.bytes, n)``) keep working while the data
    lives in one mergeable registry. ``kind="gauge"`` backs the field
    with a gauge (merge keeps the maximum — high-water marks); the
    default backs it with a counter (merge adds).
    """
    if kind == "gauge":

        def fget(self) -> int:
            return int(self.registry.gauge(self._prefix + metric))

        def fset(self, value) -> None:
            self.registry.set_gauge(self._prefix + metric, value)

    else:

        def fget(self) -> int:
            return self.registry.counter(self._prefix + metric)

        def fset(self, value) -> None:
            self.registry.set_counter(self._prefix + metric, value)

    return property(fget, fset)
