"""Property-based tests for the interestingness-measure registry.

Two families of invariants:

* **RI bit-identity** — routing the paper's RI through the registry
  (the default ``measure="ri"``) must reproduce the historical
  hard-wired pipeline exactly. The oracle is an inline copy of the
  pre-registry selection/generation logic (threshold precomputed as
  ``minsup * minri``, ``rule_interest`` arithmetic, Figure 4 frontier)
  applied to the same counted candidates; the comparison covers the
  negative itemsets, the rules, and the explain text, on flat and
  taxonomy-bearing data across every registered engine spec.
  ``parallel-shm`` runs against one persistent module-level two-worker
  engine, as in ``test_prop_engines.py``.
* **Determinism** — every registered measure is a pure function of the
  counted run: re-judging the same candidates with the counts dict and
  negative list arbitrarily permuted must reproduce the same negatives
  and rules in the same order.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.explain import explain_result_rule
from repro.core.negmining import (
    ImprovedNegativeMiner,
    NegativeItemset,
    select_negatives,
)
from repro.core.rulegen import NegativeRule, generate_negative_rules
from repro.core.session import MiningSession
from repro.data.database import TransactionDatabase
from repro.measures.registry import create_measure, measure_names
from repro.mining.apriori import apriori_gen
from repro.mining.engines import all_engine_specs
from repro.taxonomy.builders import taxonomy_from_parents

# A fixed two-level taxonomy: 3 roots, each with 3 leaf children.
TAXONOMY = taxonomy_from_parents(
    {child: (child - 1) // 3 + 100 for child in range(1, 10)},
)
LEAVES = sorted(TAXONOMY.leaves)


@st.composite
def leaf_databases(draw):
    row_count = draw(st.integers(min_value=10, max_value=40))
    rows = [
        draw(st.lists(st.sampled_from(LEAVES), min_size=1, max_size=5))
        for _ in range(row_count)
    ]
    return TransactionDatabase(rows)


_SHM_ENGINE = None


def _shm_engine():
    """One persistent two-worker shm engine shared by every example."""
    global _SHM_ENGINE
    if _SHM_ENGINE is None:
        from repro.mining.engines.parallel import ParallelShmEngine
        from repro.parallel.pool import PoolConfig

        _SHM_ENGINE = ParallelShmEngine(
            n_jobs=2,
            pool_config=PoolConfig(n_jobs=2, retries=1, backoff=0.0),
        )
    return _SHM_ENGINE


@pytest.fixture(scope="module", autouse=True)
def _close_shm_engine():
    """Tear the persistent engine down so its segment and workers do
    not outlive this module (later tests assert no live segments)."""
    yield
    global _SHM_ENGINE
    if _SHM_ENGINE is not None:
        _SHM_ENGINE.close()
        _SHM_ENGINE = None


def session_for(spec, transactions, taxonomy=None):
    """A session over *spec*; parallel specs pinned to one in-process job."""
    if spec == "parallel-shm":
        return MiningSession(transactions, taxonomy, _shm_engine())
    n_jobs = 1 if spec.startswith("parallel") else None
    return MiningSession(transactions, taxonomy, spec, n_jobs=n_jobs)


# --- inline oracle: the pre-registry hard-wired RI pipeline ----------


def _oracle_negatives(candidates, counts, total, minsup, minri):
    """The historical selection predicate, threshold precomputed."""
    threshold = minsup * minri
    negatives = []
    for items, count in counts.items():
        candidate = candidates[items]
        actual = count / total
        if candidate.expected_support - actual >= threshold:
            negatives.append(
                NegativeItemset(
                    items=items,
                    expected_support=candidate.expected_support,
                    actual_support=actual,
                    source=candidate.source,
                    case=candidate.case,
                )
            )
    negatives.sort(
        key=lambda negative: (-negative.deviation, negative.items)
    )
    return negatives


def _oracle_evaluate(negative, consequent, index, minri):
    if not index.is_large(consequent):
        return False, None
    antecedent = tuple(
        item for item in negative.items if item not in consequent
    )
    if not index.is_large(antecedent):
        return False, None
    ri = (
        negative.expected_support - negative.actual_support
    ) / index.support(antecedent)
    if ri < minri:
        return False, None
    rule = NegativeRule(
        antecedent=antecedent,
        consequent=consequent,
        ri=ri,
        expected_support=negative.expected_support,
        actual_support=negative.actual_support,
        antecedent_support=index.support(antecedent),
        consequent_support=index.support(consequent),
    )
    return True, rule


def _oracle_rules(negatives, index, minri):
    """The historical Figure 4 frontier with hard-wired RI."""
    rules = []
    for negative in negatives:
        items = negative.items
        size = len(items)
        frontier = []
        for drop in range(size):
            consequent = (items[drop],)
            keep, rule = _oracle_evaluate(
                negative, consequent, index, minri
            )
            if rule is not None:
                rules.append(rule)
            if keep:
                frontier.append(consequent)
        while frontier and len(frontier[0]) + 1 < size:
            next_frontier = []
            for consequent in apriori_gen(frontier):
                keep, rule = _oracle_evaluate(
                    negative, consequent, index, minri
                )
                if rule is not None:
                    rules.append(rule)
                if keep:
                    next_frontier.append(consequent)
            frontier = next_frontier
    rules.sort(
        key=lambda rule: (-rule.ri, rule.antecedent, rule.consequent)
    )
    return rules


def _oracle_ri_line(rule, taxonomy):
    """The historical explain line for the RI arithmetic, verbatim."""
    return (
        f"  RI = ({rule.expected_support:.4f} - "
        f"{rule.actual_support:.4f}) / "
        f"sup({taxonomy.format_itemset(rule.antecedent)}) = "
        f"{rule.expected_support - rule.actual_support:.4f} / "
        f"{rule.antecedent_support:.4f} = {rule.ri:.3f}"
    )


@pytest.mark.parametrize("spec", all_engine_specs())
@settings(max_examples=10, deadline=None)
@given(leaf_databases(), st.sampled_from([0.1, 0.2]),
       st.sampled_from([0.3, 0.5]))
def test_default_ri_bit_identical_to_oracle(spec, database, minsup, minri):
    """measure='ri' (the default) == the pre-registry pipeline, on
    taxonomy-bearing data, for every registered engine spec."""
    session = session_for(spec, database, TAXONOMY)
    output = ImprovedNegativeMiner(
        database, TAXONOMY, minsup, minri, session=session
    ).mine()
    expected_negatives = _oracle_negatives(
        output.candidates, output.counts, output.total_transactions,
        minsup, minri,
    )
    assert output.negatives == expected_negatives

    rules = generate_negative_rules(
        output.negatives, output.large_itemsets, minri
    )
    assert rules == _oracle_rules(
        expected_negatives, output.large_itemsets, minri
    )
    for rule in rules[:3]:
        explanation = explain_result_rule(
            rule, output.negatives, output.large_itemsets, TAXONOMY
        )
        assert _oracle_ri_line(rule, TAXONOMY) in explanation
        assert "measure agreement" not in explanation


@settings(max_examples=10, deadline=None)
@given(leaf_databases(), st.sampled_from([0.1, 0.2]))
def test_default_ri_bit_identical_flat(database, minsup):
    """Same bit-identity on a flat one-level taxonomy (all leaves are
    siblings under a single root, so only Case 3 generates)."""
    flat = taxonomy_from_parents({leaf: 100 for leaf in LEAVES})
    output = ImprovedNegativeMiner(database, flat, minsup, 0.4).mine()
    assert output.negatives == _oracle_negatives(
        output.candidates, output.counts, output.total_transactions,
        minsup, 0.4,
    )
    rules = generate_negative_rules(
        output.negatives, output.large_itemsets, 0.4
    )
    assert rules == _oracle_rules(
        output.negatives, output.large_itemsets, 0.4
    )


@pytest.mark.parametrize("name", measure_names())
@settings(max_examples=10, deadline=None)
@given(leaf_databases(), st.randoms(use_true_random=False))
def test_measure_deterministic_over_shuffled_output(name, database, rng):
    """Every registered measure is order-independent: permuting the
    counts dict and the negative list must not change anything."""
    output = ImprovedNegativeMiner(database, TAXONOMY, 0.1, 0.4).mine()
    measure = create_measure(name)
    index = output.large_itemsets
    negatives = select_negatives(
        output.candidates, output.counts, output.total_transactions,
        0.1, 0.4, measure=measure, index=index,
    )

    shuffled_counts = list(output.counts.items())
    rng.shuffle(shuffled_counts)
    again = select_negatives(
        output.candidates, dict(shuffled_counts),
        output.total_transactions, 0.1, 0.4,
        measure=create_measure(name), index=index,
    )
    assert again == negatives

    rules = generate_negative_rules(
        negatives, index, 0.4, measure=measure, minsup=0.1
    )
    shuffled_negatives = list(negatives)
    rng.shuffle(shuffled_negatives)
    assert generate_negative_rules(
        shuffled_negatives, index, 0.4,
        measure=create_measure(name), minsup=0.1,
    ) == rules
    for rule in rules:
        assert rule.measure == name
