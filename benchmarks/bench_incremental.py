"""E12 — Incremental maintenance: append-then-recount vs invalidation.

Measures what the per-segment fingerprints and the vertical cache's
append path buy: a database that grows by ~1 %% between counting passes.
Two engines, two maintenance modes each:

``mmap-incremental`` / ``cached-incremental``
    The session keeps its state across appends: the segmented matrix
    extends only the partial tail segment (every full segment block is
    reused untouched), the vertical index ORs the tail bits into its
    bitmaps. O(append) work per recount.
``mmap-full`` / ``cached-full``
    The same appends, but the incrementally held state is discarded
    before every recount — the whole-matrix / whole-index invalidation
    that was the only option before segmentation. O(|D|) work per
    recount.

The run asserts the structural claim directly: across the incremental
``mmap`` recounts only the tail segment is ever touched (one extension
per append, zero new packs, ``n_segments - 1`` reuses per sync), and
the incremental recounts are at least ``MIN_SPEEDUP`` x faster than
full invalidation (``--no-check`` reports without failing).

Folds its report into ``BENCH_counting.json`` under ``"incremental"``
(or ``["quick"]["incremental"]`` on ``--quick``); the regression gate
compares the ``wall_recount_s`` figures.

Run::

    python -m benchmarks.bench_incremental --quick
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

#: Required advantage of incremental over full-invalidation recounts.
MIN_SPEEDUP = 5.0

#: Appended batches per run, each ~1 % of |D|.
N_BATCHES = 3


def _workload(database) -> list[tuple]:
    """A counting workload: frequent singletons plus adjacent pairs."""
    counts = database.item_counts()
    frequent = sorted(
        counts, key=lambda item: counts[item], reverse=True
    )[:24]
    candidates = [(item,) for item in frequent]
    candidates += [
        tuple(sorted(pair))
        for pair in zip(frequent, frequent[8:])
        if pair[0] != pair[1]
    ]
    return sorted(set(candidates))


def _run_mode(
    engine: str,
    mode: str,
    base_rows: list,
    batches: list[list],
    candidates: list[tuple],
    segment_rows: int,
) -> dict:
    """Build once, then time ``append -> recount`` over all batches."""
    from repro.core.session import MiningSession
    from repro.data.database import TransactionDatabase
    from repro.mining import vertical

    database = TransactionDatabase.from_canonical_rows(base_rows)
    session = MiningSession(
        database, engine=engine, segment_rows=segment_rows
    )
    built = session.count(candidates)  # untimed initial build
    start = time.perf_counter()
    for batch in batches:
        database.append(batch)
        if mode == "full":
            if engine == "mmap":
                session.engine.close()  # drop matrix: repack everything
            else:
                vertical.invalidate(database)
        counted = session.count(candidates)
    wall = time.perf_counter() - start
    if engine == "mmap":
        session.engine.close()
    stats = session.cache_stats
    return {
        "label": f"{engine}-{mode}",
        "wall_recount_s": round(wall, 5),
        "recounts": len(batches),
        "extensions": stats.extensions,
        "segments_packed": stats.segments_packed,
        "segments_extended": stats.segments_extended,
        "segments_reused": stats.segments_reused,
        "invalidations": stats.invalidations,
        "first_pass_candidates": len(built),
        "final_count_total": sum(counted.values()),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small dataset (the CI smoke configuration)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_counting.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--no-check",
        action="store_false",
        dest="check",
        help="report only; do not fail on tail-repack or speedup "
             "violations",
    )
    args = parser.parse_args(argv)

    os.environ.setdefault(
        "REPRO_BENCH_SCALE", "0.02" if args.quick else "0.1"
    )
    from benchmarks.common import dataset, fold_report, paper_row

    base_rows = list(dataset("short").database)
    # The O(append) vs O(|D|) contrast needs |D| large enough that a
    # full repack dwarfs per-recount fixed costs (and sits above the
    # regression gate's measurement floor); replicate the quick-scale
    # rows up to ~5000 transactions instead of regenerating.
    base_rows = base_rows * max(1, -(-5000 // len(base_rows)))
    n_rows = len(base_rows)
    # Three full segments plus a partial tail with guaranteed room for
    # every appended batch: tail ~0.19|D|, appends ~0.03|D|, capacity
    # ~0.27|D| — the incremental runs never overflow into a new pack.
    segment_rows = n_rows // 4 + n_rows // 50
    batch_size = max(1, n_rows // 100)  # ~1 % per append
    batches = [
        [list(row) for row in base_rows[k * batch_size:(k + 1) * batch_size]]
        for k in range(N_BATCHES)
    ]
    candidates = _workload(dataset("short").database)

    runs = [
        _run_mode(engine, mode, base_rows, batches, candidates,
                  segment_rows)
        for engine in ("mmap", "cached")
        for mode in ("incremental", "full")
    ]
    by_label = {run["label"]: run for run in runs}
    totals = {run["final_count_total"] for run in runs}
    assert len(totals) == 1, f"modes disagree on counts: {by_label}"

    speedups = {
        engine: round(
            by_label[f"{engine}-full"]["wall_recount_s"]
            / by_label[f"{engine}-incremental"]["wall_recount_s"],
            2,
        )
        for engine in ("mmap", "cached")
    }
    report = {
        "benchmark": "incremental",
        "dataset": "short",
        "scale": os.environ["REPRO_BENCH_SCALE"],
        "transactions": n_rows,
        "segment_rows": segment_rows,
        "appended_rows_per_batch": batch_size,
        "batches": N_BATCHES,
        "candidates": len(candidates),
        "runs": runs,
        "wall_recount_s": {
            run["label"]: run["wall_recount_s"] for run in runs
        },
        "speedup_incremental": speedups,
    }
    fold_report(args.out, "incremental", report, quick=args.quick)

    for run in runs:
        paper_row(
            run["label"],
            wall_recount_s=run["wall_recount_s"],
            extensions=run["extensions"],
            seg_packed=run["segments_packed"],
            seg_extended=run["segments_extended"],
            seg_reused=run["segments_reused"],
        )
    paper_row("speedup", **speedups)
    print(f"wrote {args.out}")

    failures = []
    incremental = by_label["mmap-incremental"]
    # Tail-only maintenance: one extension per append, the build's four
    # packs and nothing more, n_segments - 1 reuses per sync.
    if incremental["segments_extended"] != N_BATCHES:
        failures.append(
            f"expected {N_BATCHES} tail extensions, saw "
            f"{incremental['segments_extended']}"
        )
    if incremental["segments_packed"] != 4:
        failures.append(
            "appends repacked beyond the initial build: "
            f"{incremental['segments_packed']} packs"
        )
    if incremental["segments_reused"] != 3 * N_BATCHES:
        failures.append(
            f"expected {3 * N_BATCHES} segment reuses, saw "
            f"{incremental['segments_reused']}"
        )
    for engine, speedup in speedups.items():
        if speedup < MIN_SPEEDUP:
            failures.append(
                f"{engine} incremental speedup {speedup}x below "
                f"{MIN_SPEEDUP}x"
            )
    if args.check and failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
