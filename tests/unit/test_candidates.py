"""Unit tests for negative candidate generation (Cases 1-3, exclusions).

Built around the taxonomy of paper Figure 1 with {C, G} as the large
itemset, exactly as in Section 2.1.1's worked cases.
"""

import pytest

from repro.core.candidates import (
    CASE_CHILDREN,
    CASE_SIBLINGS,
    generate_negative_candidates,
)
from repro.mining.itemset_index import LargeItemsetIndex


@pytest.fixture
def names(figure1_taxonomy):
    return {
        name: figure1_taxonomy.id_of(name)
        for name in "ABCDEFGHIJK"
        if name != "I" or True
    }


@pytest.fixture
def index(names):
    """{C, G} large; all 1-itemsets except I are large."""
    supports = {
        "C": 0.4, "G": 0.4, "D": 0.2, "E": 0.1,
        "J": 0.25, "K": 0.1, "B": 0.3, "H": 0.3,
        "A": 0.8, "F": 0.7,
    }
    index = LargeItemsetIndex()
    for name, support in supports.items():
        index.add((names[name],), support)
    index.add((names["C"], names["G"]), 0.2)
    return index


def ids(names, *labels):
    return tuple(sorted(names[label] for label in labels))


@pytest.fixture
def candidates(index, figure1_taxonomy):
    return generate_negative_candidates(
        index, figure1_taxonomy, minsup=0.05, minri=0.5
    )


class TestCaseEnumeration:
    def test_case1_children_of_both_items(self, candidates, names):
        assert ids(names, "D", "J") in candidates
        assert ids(names, "D", "K") in candidates
        assert ids(names, "E", "J") in candidates

    def test_case1_expected_support(self, candidates, names):
        candidate = candidates[ids(names, "D", "J")]
        # sup(CG) * sup(D)/sup(C) * sup(J)/sup(G)
        assert candidate.expected_support == pytest.approx(
            0.2 * (0.2 / 0.4) * (0.25 / 0.4)
        )
        assert candidate.case == CASE_CHILDREN
        assert candidate.source == ids(names, "C", "G")

    def test_case2_single_child(self, candidates, names):
        assert ids(names, "C", "J") in candidates
        assert ids(names, "C", "K") in candidates
        assert ids(names, "D", "G") in candidates
        assert ids(names, "E", "G") in candidates

    def test_case2_expected_support(self, candidates, names):
        candidate = candidates[ids(names, "C", "J")]
        assert candidate.expected_support == pytest.approx(
            0.2 * (0.25 / 0.4)
        )

    def test_case3_siblings(self, candidates, names):
        assert ids(names, "B", "G") in candidates
        assert ids(names, "C", "H") in candidates

    def test_case3_expected_support(self, candidates, names):
        candidate = candidates[ids(names, "C", "H")]
        assert candidate.expected_support == pytest.approx(
            0.2 * (0.3 / 0.4)
        )
        assert candidate.case == CASE_SIBLINGS


class TestExclusions:
    def test_all_sibling_candidate_excluded(self, candidates, names):
        # Exclusion 1: {B, H} replaces *every* item by a sibling.
        assert ids(names, "B", "H") not in candidates

    def test_small_items_never_appear(self, candidates, names):
        # I is not a large 1-itemset.
        small = names["I"]
        assert all(small not in items for items in candidates)

    def test_low_expectation_excluded(self, candidates, names):
        # {E, K}: 0.2 * 0.25 * 0.25 = 0.0125 < MinSup*MinRI = 0.025.
        assert ids(names, "E", "K") not in candidates

    def test_threshold_boundary_inclusive(self, candidates, names):
        # {D, K}: exactly 0.025 — admitted (matches the paper's own
        # boundary example where E = MinSup*MinRI appears in Table 2).
        assert ids(names, "D", "K") in candidates

    def test_existing_large_itemset_not_a_candidate(
        self, index, figure1_taxonomy, names
    ):
        index.add(ids(names, "C", "J"), 0.3)  # now large
        regenerated = generate_negative_candidates(
            index, figure1_taxonomy, minsup=0.05, minri=0.5
        )
        assert ids(names, "C", "J") not in regenerated

    def test_no_candidate_contains_ancestor_pair(
        self, candidates, figure1_taxonomy
    ):
        for items in candidates:
            for item in items:
                ancestors = set(figure1_taxonomy.ancestors(item))
                assert not ancestors.intersection(items)

    def test_sources_of_size_one_ignored(self, index, figure1_taxonomy):
        only_singles = LargeItemsetIndex(
            {items: support for items, support in index.items()
             if len(items) == 1}
        )
        assert (
            generate_negative_candidates(
                only_singles, figure1_taxonomy, 0.05, 0.5
            )
            == {}
        )


class TestDeduplication:
    def test_max_expected_support_wins(self, index, figure1_taxonomy, names):
        # {A, F} large generates {C, H} via Case 1 with a *smaller*
        # expectation than {C, G} does via Case 3 — the larger must win
        # (Section 2.1.1: "the largest value ... is chosen").
        index.add(ids(names, "A", "F"), 0.5)
        candidates = generate_negative_candidates(
            index, figure1_taxonomy, minsup=0.05, minri=0.5
        )
        candidate = candidates[ids(names, "C", "H")]
        case1_value = 0.5 * (0.4 / 0.8) * (0.3 / 0.7)
        case3_value = 0.2 * (0.3 / 0.4)
        assert case1_value < case3_value
        assert candidate.expected_support == pytest.approx(case3_value)
        assert candidate.source == ids(names, "C", "G")


class TestSiblingReplacementCap:
    def test_cap_one_keeps_single_sibling_candidates(
        self, index, figure1_taxonomy, names
    ):
        capped = generate_negative_candidates(
            index, figure1_taxonomy, 0.05, 0.5,
            max_sibling_replacements=1,
        )
        assert ids(names, "C", "H") in capped
        assert ids(names, "B", "G") in capped

    def test_cap_never_affects_children_cases(
        self, index, figure1_taxonomy, names
    ):
        capped = generate_negative_candidates(
            index, figure1_taxonomy, 0.05, 0.5,
            max_sibling_replacements=1,
        )
        assert ids(names, "D", "J") in capped  # Case 1, both children

    def test_cap_is_subset_of_unlimited(self, index, figure1_taxonomy):
        unlimited = generate_negative_candidates(
            index, figure1_taxonomy, 0.05, 0.5
        )
        capped = generate_negative_candidates(
            index, figure1_taxonomy, 0.05, 0.5,
            max_sibling_replacements=1,
        )
        assert set(capped) <= set(unlimited)

    def test_cap_limits_multi_sibling_candidates(self, figure1_taxonomy):
        # Large 3-itemset {C, G, H}: with no cap, replacing both C and G
        # by siblings (B, and H/I) is allowed while keeping H; with cap 1
        # those two-sibling candidates vanish.
        taxonomy = figure1_taxonomy
        names = {name: taxonomy.id_of(name) for name in "ABCDEFGHIJK"}
        index = LargeItemsetIndex()
        for name, support in (
            ("B", 0.5), ("C", 0.5), ("G", 0.5), ("H", 0.5), ("I", 0.5),
        ):
            index.add((names[name],), support)
        triple = tuple(sorted((names["C"], names["G"], names["H"])))
        index.add(triple, 0.4)
        unlimited = generate_negative_candidates(
            index, taxonomy, 0.05, 0.5
        )
        capped = generate_negative_candidates(
            index, taxonomy, 0.05, 0.5, max_sibling_replacements=1
        )
        two_swaps = tuple(
            sorted((names["B"], names["I"], names["H"]))
        )
        assert two_swaps in unlimited
        assert two_swaps not in capped


class TestSourceFiltering:
    def test_explicit_sources(self, index, figure1_taxonomy, names):
        candidates = generate_negative_candidates(
            index,
            figure1_taxonomy,
            0.05,
            0.5,
            sources=[ids(names, "C", "G")],
        )
        assert candidates  # the usual candidates from {C, G}

    def test_max_size_skips_large_sources(
        self, index, figure1_taxonomy, names
    ):
        candidates = generate_negative_candidates(
            index, figure1_taxonomy, 0.05, 0.5, max_size=1
        )
        assert candidates == {}

    def test_degenerate_source_skipped(self, index, figure1_taxonomy, names):
        # A source containing an item and its ancestor predicts nothing.
        index.add(ids(names, "C", "D"), 0.2)
        candidates = generate_negative_candidates(
            index,
            figure1_taxonomy,
            0.05,
            0.5,
            sources=[ids(names, "C", "D")],
        )
        assert candidates == {}
