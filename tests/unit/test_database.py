"""Unit tests for the transaction database substrate."""

import pytest

from repro.data.database import TransactionDatabase
from repro.errors import DatabaseError


class TestConstruction:
    def test_canonicalizes_rows(self):
        database = TransactionDatabase([[3, 1, 1, 2]])
        assert database.transaction(0) == (1, 2, 3)

    def test_rejects_empty_transaction(self):
        with pytest.raises(DatabaseError):
            TransactionDatabase([[1], []])

    def test_rejects_empty_database(self):
        with pytest.raises(DatabaseError):
            TransactionDatabase([])

    def test_len(self):
        assert len(TransactionDatabase([[1], [2], [3]])) == 3

    def test_accepts_sets_and_tuples(self):
        database = TransactionDatabase([{2, 1}, (4, 3)])
        assert database.transaction(1) == (3, 4)


class TestScanAccounting:
    def test_scan_counts_passes(self):
        database = TransactionDatabase([[1], [2]])
        assert database.scans == 0
        list(database.scan())
        list(database.scan())
        assert database.scans == 2

    def test_plain_iteration_is_free(self):
        database = TransactionDatabase([[1], [2]])
        list(database)
        assert database.scans == 0

    def test_reset(self):
        database = TransactionDatabase([[1]])
        list(database.scan())
        database.reset_scans()
        assert database.scans == 0

    def test_scan_yields_all_rows(self):
        database = TransactionDatabase([[1, 2], [3]])
        assert list(database.scan()) == [(1, 2), (3,)]


class TestSlice:
    @pytest.fixture
    def database(self):
        return TransactionDatabase([[1, 2], [2, 3], [3, 4], [4, 5]])

    def test_shares_row_tuples(self, database):
        view = database.slice(1, 3)
        assert len(view) == 2
        assert view.transaction(0) is database.transaction(1)
        assert view.transaction(1) is database.transaction(2)

    def test_pass_counter_is_independent(self, database):
        list(database.scan())
        view = database.slice(0, 2)
        assert view.scans == 0
        list(view.scan())
        list(view.scan())
        assert view.scans == 2
        assert database.scans == 1  # worker-local scans stay local

    def test_full_slice_equals_database_rows(self, database):
        view = database.slice(0, len(database))
        assert list(view) == list(database)

    def test_empty_slice_rejected(self, database):
        with pytest.raises(DatabaseError):
            database.slice(2, 2)

    def test_from_canonical_rows_trusts_input(self):
        rows = ((2, 5), (1, 3, 4))
        database = TransactionDatabase.from_canonical_rows(rows)
        assert list(database) == [(2, 5), (1, 3, 4)]
        assert database.transaction(0) is rows[0]
        assert database.scans == 0

    def test_from_canonical_rows_rejects_empty(self):
        with pytest.raises(DatabaseError):
            TransactionDatabase.from_canonical_rows(())


class TestStatistics:
    @pytest.fixture
    def database(self):
        return TransactionDatabase([[1, 2], [2, 3], [2]])

    def test_items(self, database):
        assert database.items == {1, 2, 3}

    def test_item_counts(self, database):
        assert database.item_counts() == {1: 1, 2: 3, 3: 1}

    def test_item_counts_not_a_pass(self, database):
        database.item_counts()
        assert database.scans == 0

    def test_average_length(self, database):
        assert database.average_length() == pytest.approx(5 / 3)

    def test_absolute_and_fraction(self, database):
        assert database.absolute(0.5) == pytest.approx(1.5)
        assert database.fraction(3) == pytest.approx(1.0)

    def test_tid_lookup(self, database):
        assert database.transaction(1) == (2, 3)

    def test_unknown_tid_raises(self, database):
        with pytest.raises(DatabaseError):
            database.transaction(99)

    def test_repr(self, database):
        assert "transactions=3" in repr(database)


class TestAppend:
    def test_append_extends_rows_canonicalized(self):
        database = TransactionDatabase([[1, 2]])
        assert database.append([[3, 1, 1], {5, 4}]) == 2
        assert len(database) == 3
        assert database.transaction(1) == (1, 3)
        assert database.transaction(2) == (4, 5)

    def test_append_empty_batch_is_a_noop(self):
        database = TransactionDatabase([[1]])
        epoch, rows = database.append_epoch()
        assert database.append([]) == 0
        assert database.append_epoch() == (epoch, rows)

    def test_append_rejects_empty_transaction(self):
        database = TransactionDatabase([[1]])
        # The index in the message is absolute: row 1 exists, the empty
        # batch entry would become transaction 2.
        with pytest.raises(DatabaseError, match="transaction 2 is empty"):
            database.append([[2], []])
        assert len(database) == 1  # nothing was applied

    def test_append_preserves_epoch_and_grows_rows(self):
        database = TransactionDatabase([[1], [2]])
        epoch, rows = database.append_epoch()
        database.append([[3]])
        after, grown = database.append_epoch()
        assert after is epoch
        assert (rows, grown) == (2, 3)

    def test_append_maintains_item_counts(self):
        database = TransactionDatabase([[1, 2], [2]])
        assert database.item_counts() == {1: 1, 2: 2}
        database.append([[1, 3]])
        assert database.item_counts() == {1: 2, 2: 2, 3: 1}

    def test_tail_rows_returns_suffix_without_a_pass(self):
        database = TransactionDatabase([[1], [2], [3]])
        database.append([[4], [5]])
        assert database.tail_rows(3) == ((4,), (5,))
        assert database.tail_rows(5) == ()
        assert database.scans == 0
        with pytest.raises(DatabaseError, match="outside"):
            database.tail_rows(6)

    def test_out_of_band_rewrite_gets_a_fresh_epoch(self):
        database = TransactionDatabase([[1], [2]])
        epoch, _ = database.append_epoch()
        database._transactions = ((7,), (8,), (9,))
        after, rows = database.append_epoch()
        assert after is not epoch
        assert rows == 3
        # The new epoch is stable until the next rewrite.
        assert database.append_epoch() == (after, 3)
