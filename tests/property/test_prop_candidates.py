"""Property-based test: bound-pruned candidate generation vs exhaustive.

The branch-and-bound enumeration inside
:func:`repro.core.candidates.generate_negative_candidates` must produce
exactly the same candidates (and expectations) as a naive exhaustive
cross-product — the bound only skips candidates that the
``MinSup × MinRI`` threshold rejects anyway.
"""

import random
from itertools import combinations, product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import generate_negative_candidates
from repro.itemset import replace_positions
from repro.mining.generalized import contains_item_and_ancestor
from repro.mining.itemset_index import LargeItemsetIndex
from repro.taxonomy.builders import taxonomy_from_parents

# Three roots with three children each; one grandchild layer under the
# first child to exercise deeper ancestor checks.
TAXONOMY = taxonomy_from_parents(
    {
        1: 100, 2: 100, 3: 100,
        4: 101, 5: 101, 6: 101,
        7: 102, 8: 102, 9: 102,
        10: 1, 11: 1,
    }
)


def exhaustive(index, taxonomy, minsup, minri):
    """Reference implementation: full cross-product, no pruning."""
    threshold = minsup * minri
    out = {}
    sources = [
        items
        for size in index.sizes
        if size >= 2
        for items in sorted(index.of_size(size))
    ]
    for source in sources:
        if any(item not in taxonomy for item in source):
            continue
        if contains_item_and_ancestor(source, taxonomy):
            continue
        base = index.support(source)
        size = len(source)
        for case, relatives_of, proper_only in (
            ("children", taxonomy.children, False),
            ("siblings", taxonomy.siblings, True),
        ):
            max_positions = size - 1 if proper_only else size
            for count in range(1, max_positions + 1):
                for positions in combinations(range(size), count):
                    pools = [
                        [
                            relative
                            for relative in relatives_of(source[p])
                            if index.is_large((relative,))
                        ]
                        for p in positions
                    ]
                    if any(not pool for pool in pools):
                        continue
                    for assignment in product(*pools):
                        candidate = replace_positions(
                            source, positions, assignment
                        )
                        if candidate is None or candidate in index:
                            continue
                        if contains_item_and_ancestor(
                            candidate, taxonomy
                        ):
                            continue
                        expectation = base
                        for p, new in zip(positions, assignment):
                            expectation *= index.support(
                                (new,)
                            ) / index.support((source[p],))
                        if expectation < threshold:
                            continue
                        best = out.get(candidate)
                        if best is None or expectation > best:
                            out[candidate] = expectation
    return out


@st.composite
def indexes(draw):
    seed = draw(st.integers(min_value=0, max_value=100_000))
    rng = random.Random(seed)
    index = LargeItemsetIndex()
    for root in (100, 101, 102):
        root_support = rng.uniform(0.4, 0.9)
        index.add((root,), root_support)
        for child in TAXONOMY.children(root):
            if rng.random() < 0.8:
                index.add((child,), rng.uniform(0.05, root_support))
    for grandchild in (10, 11):
        if index.is_large((1,)) and rng.random() < 0.7:
            index.add(
                (grandchild,), rng.uniform(0.02, index.support((1,)))
            )
    nodes = [items[0] for items in index.of_size(1)]
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        first, second = rng.sample(nodes, 2) if len(nodes) >= 2 else (
            nodes[0], nodes[0]
        )
        if first == second:
            continue
        pair = tuple(sorted((first, second)))
        if contains_item_and_ancestor(pair, TAXONOMY):
            continue
        bound = min(index.support((first,)), index.support((second,)))
        index.add(pair, rng.uniform(0.01, bound))
    return index


@settings(max_examples=80, deadline=None)
@given(indexes(), st.sampled_from([0.02, 0.05, 0.1]),
       st.sampled_from([0.3, 0.5, 0.8]))
def test_pruned_generation_equals_exhaustive(index, minsup, minri):
    optimized = generate_negative_candidates(
        index, TAXONOMY, minsup, minri
    )
    reference = exhaustive(index, TAXONOMY, minsup, minri)
    assert set(optimized) == set(reference)
    for items, candidate in optimized.items():
        assert abs(candidate.expected_support - reference[items]) < 1e-9
