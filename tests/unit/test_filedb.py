"""Unit tests for the disk-backed streaming database."""

import pytest

from repro.core.api import mine_negative_rules
from repro.data.database import TransactionDatabase
from repro.data.filedb import FileBackedDatabase
from repro.data.io import save_basket_file
from repro.errors import DatabaseError
from repro.mining.apriori import find_large_itemsets
from repro.taxonomy.builders import taxonomy_from_nested


@pytest.fixture
def basket_path(tmp_path):
    database = TransactionDatabase(
        [[1, 2, 3], [1, 2], [2, 3], [4], [1, 2, 3, 4]]
    )
    path = tmp_path / "data.basket"
    save_basket_file(database, path)
    return path


class TestFileBackedDatabase:
    def test_rows_match_file(self, basket_path):
        database = FileBackedDatabase(basket_path)
        assert list(database) == [
            (1, 2, 3), (1, 2), (2, 3), (4,), (1, 2, 3, 4)
        ]

    def test_len_and_stats(self, basket_path):
        database = FileBackedDatabase(basket_path)
        assert len(database) == 5
        assert database.items == {1, 2, 3, 4}
        assert database.average_length() == pytest.approx(12 / 5)

    def test_scan_counting(self, basket_path):
        database = FileBackedDatabase(basket_path)
        assert database.scans == 0  # validation read not counted
        list(database.scan())
        list(database.scan())
        assert database.scans == 2
        database.reset_scans()
        assert database.scans == 0

    def test_each_scan_rereads_the_file(self, basket_path):
        database = FileBackedDatabase(basket_path)
        first = list(database.scan())
        # Mutate the file between passes: the next scan must see it.
        with open(basket_path, "a", encoding="utf-8") as handle:
            handle.write("7 8\n")
        second = list(database.scan())
        assert len(second) == len(first) + 1

    def test_absolute_and_fraction(self, basket_path):
        database = FileBackedDatabase(basket_path)
        assert database.absolute(0.4) == pytest.approx(2.0)
        assert database.fraction(2) == pytest.approx(0.4)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DatabaseError, match="cannot open"):
            FileBackedDatabase(tmp_path / "nope.basket")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.basket"
        path.write_text("# nothing\n")
        with pytest.raises(DatabaseError, match="no transactions"):
            FileBackedDatabase(path)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.basket"
        path.write_text("1 2\nx\n")
        with pytest.raises(DatabaseError, match="malformed"):
            FileBackedDatabase(path)

    def test_repr(self, basket_path):
        assert "transactions=5" in repr(FileBackedDatabase(basket_path))


class TestMinersOnFileBackedData:
    def test_apriori_matches_in_memory(self, basket_path):
        in_memory = TransactionDatabase(
            [[1, 2, 3], [1, 2], [2, 3], [4], [1, 2, 3, 4]]
        )
        from_disk = FileBackedDatabase(basket_path)
        assert find_large_itemsets(from_disk, 0.4) == find_large_itemsets(
            in_memory, 0.4
        )

    def test_full_pipeline_streams_from_disk(self, tmp_path):
        taxonomy = taxonomy_from_nested(
            {"drinks": {"soda": ["cola", "lemonade"], "water": ["still"]}}
        )
        cola = taxonomy.id_of("cola")
        lemonade = taxonomy.id_of("lemonade")
        still = taxonomy.id_of("still")
        rows = [[cola, still]] * 40 + [[lemonade]] * 40 + [[cola]] * 20
        path = tmp_path / "pipe.basket"
        save_basket_file(TransactionDatabase(rows), path)

        from_disk = FileBackedDatabase(path)
        result = mine_negative_rules(
            from_disk, taxonomy, minsup=0.2, minri=0.3
        )
        reference = mine_negative_rules(
            TransactionDatabase(rows), taxonomy, minsup=0.2, minri=0.3
        )
        assert {
            (rule.antecedent, rule.consequent) for rule in result.rules
        } == {
            (rule.antecedent, rule.consequent) for rule in reference.rules
        }
        assert from_disk.scans == result.stats.data_passes


class TestAppendParity:
    """The file-backed mutation API mirrors the in-memory database's."""

    def append_both(self, basket_path, batch):
        in_memory = TransactionDatabase(
            [[1, 2, 3], [1, 2], [2, 3], [4], [1, 2, 3, 4]]
        )
        on_disk = FileBackedDatabase(basket_path)
        assert in_memory.append(batch) == on_disk.append(batch)
        return in_memory, on_disk

    def test_append_extends_file_and_statistics(self, basket_path):
        in_memory, on_disk = self.append_both(
            basket_path, [[9, 7], {5, 6}]
        )
        assert list(on_disk) == list(in_memory)
        assert len(on_disk) == len(in_memory)
        assert on_disk.items == in_memory.items
        assert on_disk.average_length() == pytest.approx(
            in_memory.average_length()
        )

    def test_append_without_trailing_newline(self, basket_path):
        with open(basket_path, "rb+") as handle:
            handle.seek(-1, 2)
            handle.truncate()  # strip the final newline
        database = FileBackedDatabase(basket_path)
        database.append([[8, 9]])
        assert list(database)[-2:] == [(1, 2, 3, 4), (8, 9)]

    def test_append_empty_batch_is_a_noop(self, basket_path):
        database = FileBackedDatabase(basket_path)
        token = database.cache_token()
        assert database.append([]) == 0
        assert database.cache_token() == token

    def test_append_rejects_empty_transaction(self, basket_path):
        database = FileBackedDatabase(basket_path)
        with pytest.raises(DatabaseError, match="empty"):
            database.append([[1], []])
        assert len(database) == 5  # file untouched

    def test_append_preserves_epoch(self, basket_path):
        database = FileBackedDatabase(basket_path)
        epoch, rows = database.append_epoch()
        database.append([[6]])
        after, grown = database.append_epoch()
        assert after is epoch
        assert (rows, grown) == (5, 6)

    def test_tail_rows_seeks_checkpoint_without_a_pass(self, basket_path):
        database = FileBackedDatabase(basket_path)
        database.append([[6], [7, 8]])
        assert database.tail_rows(5) == [(6,), (7, 8)]
        assert database.tail_rows(6) == [(7, 8)]
        assert database.tail_rows(0) == list(database)
        assert database.scans == 0
        with pytest.raises(DatabaseError, match="outside"):
            database.tail_rows(99)

    def test_item_counts_parity_and_incremental_maintenance(
        self, basket_path
    ):
        in_memory, on_disk = self.append_both(basket_path, [[1, 9]])
        assert on_disk.item_counts() == in_memory.item_counts()
        # Counting again after another append stays in sync.
        in_memory.append([[9]])
        on_disk.append([[9]])
        assert on_disk.item_counts() == in_memory.item_counts()
        assert on_disk.scans == 0

    def test_external_rewrite_gets_fresh_epoch_and_stats(self, basket_path):
        database = FileBackedDatabase(basket_path)
        epoch, _ = database.append_epoch()
        with open(basket_path, "w", encoding="utf-8") as handle:
            handle.write("7 8\n9\n")
        after, rows = database.append_epoch()
        assert after is not epoch
        assert rows == 2
        assert database.items == {7, 8, 9}
        assert database.tail_rows(1) == [(9,)]
        # Stable until the next rewrite.
        assert database.append_epoch() == (after, 2)


class TestIncrementalEnginesOnDisk:
    def test_mmap_recount_after_append_reads_only_the_tail(
        self, basket_path
    ):
        from repro.core.session import MiningSession

        pytest.importorskip("numpy")
        database = FileBackedDatabase(basket_path)
        session = MiningSession(database, engine="mmap", segment_rows=2)
        candidates = [(1,), (2, 3), (1, 2, 3, 4), (9,)]
        session.count(candidates)
        build_scans = database.scans
        database.append([[1, 9], [9]])
        counted = session.count(candidates)
        # The appended suffix was served by tail_rows: no physical pass.
        assert database.scans == build_scans
        reference = MiningSession(list(database), engine="brute").count(
            candidates
        )
        assert counted == reference
        assert session.cache_stats.extensions == 1

    def test_cached_engine_extends_over_filedb(self, basket_path):
        database = FileBackedDatabase(basket_path)
        from repro.core.session import MiningSession

        session = MiningSession(database, engine="cached")
        candidates = [(1,), (2,), (4,)]
        session.count(candidates)
        build_scans = database.scans
        database.append([[1, 4]])
        counted = session.count(candidates)
        assert database.scans == build_scans
        assert counted == {(1,): 4, (2,): 4, (4,): 3}
        assert session.cache_stats.extensions == 1
        assert session.cache_stats.invalidations == 0
