"""End-to-end disk workflow: generate → save → stream-mine → explain.

Mirrors how the library is used against data that does not fit in memory:
the basket file is written once, then every mining pass streams it from
disk (:class:`repro.data.FileBackedDatabase`), which makes the pass-count
difference between the paper's Naive and Improved schedules a real IO
difference.

Run with::

    python examples/disk_workflow.py [workdir]
"""

import sys
import tempfile
import time
from pathlib import Path

from repro.core.negmining import ImprovedNegativeMiner, NaiveNegativeMiner
from repro.data import FileBackedDatabase, save_basket_file, save_taxonomy_file
from repro.data.io import load_taxonomy_file
from repro.synthetic import SHORT, generate_dataset

MINSUP = 0.08
MINRI = 0.5


def main() -> None:
    workdir = (
        Path(sys.argv[1]) if len(sys.argv) > 1
        else Path(tempfile.mkdtemp(prefix="repro-disk-"))
    )
    workdir.mkdir(parents=True, exist_ok=True)
    baskets = workdir / "market.basket"
    taxonomy_file = workdir / "market.tax"

    print(f"writing dataset under {workdir}")
    dataset = generate_dataset(SHORT.scaled(0.02), seed=5)
    save_basket_file(dataset.database, baskets)
    save_taxonomy_file(dataset.taxonomy, taxonomy_file)
    print(
        f"  {baskets.name}: {baskets.stat().st_size / 1024:.0f} KiB, "
        f"{len(dataset.database)} transactions"
    )

    database = FileBackedDatabase(baskets)
    taxonomy = load_taxonomy_file(taxonomy_file)

    print()
    print(f"mining from disk at MinSup={MINSUP:.0%}, MinRI={MINRI}")
    for label, miner_class in (
        ("improved", ImprovedNegativeMiner),
        ("naive", NaiveNegativeMiner),
    ):
        database.reset_scans()
        started = time.perf_counter()
        output = miner_class(database, taxonomy, MINSUP, MINRI).mine()
        elapsed = time.perf_counter() - started
        io_bytes = database.scans * baskets.stat().st_size
        print(
            f"  {label:<9} time={elapsed:6.2f}s "
            f"passes={output.stats.data_passes:3d} "
            f"file-reads={io_bytes / 1024:6.0f} KiB "
            f"negatives={output.stats.negative_itemsets}"
        )

    print()
    print(
        "the Improved algorithm reads the file n+1 times, the Naive one "
        "~2n times — the paper's motivation, measured on real files."
    )


if __name__ == "__main__":
    main()
