"""Cross-measure evaluation of one mining run.

One run's raw material — the counted candidates, the large itemsets,
|D| — is measure-independent; only the *judging* differs between the
registered interestingness measures. :func:`compare_measures` therefore
re-runs selection and rule generation for every registered measure over
a single :class:`~repro.core.negmining.MinerOutput` (or
:class:`~repro.core.api.NegativeMiningResult`) without touching the
database again, and the resulting :class:`MeasureComparison` answers
the scenario-diversity questions: which measures agree on a rule
(:meth:`~MeasureComparison.agreement_for`, feeding the explain path's
agreement section), and how similar the admitted rule sets are overall
(:meth:`~MeasureComparison.jaccard` /
:meth:`~MeasureComparison.overlap_matrix`, feeding the E14 benchmark).

This module depends on :mod:`repro.core` and must therefore never be
imported from ``repro.measures.__init__`` (the registry is imported by
the miners mid-initialization); import it explicitly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.negmining import select_negatives
from ..core.rulegen import NegativeRule, generate_negative_rules
from ..errors import ConfigError
from .registry import create_measure, measure_names

#: The (antecedent, consequent) identity under which rule sets are
#: intersected — scores differ between measures by construction, so
#: agreement is about *which splits* are admitted, not their values.
RulePair = tuple[tuple[int, ...], tuple[int, ...]]


@dataclass(slots=True)
class MeasureVerdict:
    """One measure's judgment of one rule split."""

    measure: str
    admitted: bool
    score: float | None = None
    rank: int | None = None
    out_of: int | None = None


@dataclass(slots=True)
class MeasureEvaluation:
    """One measure's full re-judgment of a mining run."""

    measure: str
    negatives: list
    rules: list[NegativeRule]
    wall_s: float

    def rule_pairs(self) -> set[RulePair]:
        """The admitted splits as an identity set."""
        return {
            (rule.antecedent, rule.consequent) for rule in self.rules
        }


@dataclass(slots=True)
class MeasureComparison:
    """Every registered measure's view of one mining run."""

    minsup: float
    minri: float
    total_transactions: int
    evaluations: dict[str, MeasureEvaluation] = field(
        default_factory=dict
    )

    def jaccard(self, first: str, second: str) -> float:
        """Jaccard similarity of two measures' admitted rule sets.

        1.0 for two empty sets — no rules is perfect agreement.
        """
        a = self.evaluations[first].rule_pairs()
        b = self.evaluations[second].rule_pairs()
        union = a | b
        if not union:
            return 1.0
        return len(a & b) / len(union)

    def overlap_matrix(self) -> dict[str, dict[str, float]]:
        """Pairwise Jaccard similarities, keyed both ways."""
        names = list(self.evaluations)
        return {
            first: {
                second: self.jaccard(first, second) for second in names
            }
            for first in names
        }

    def agreement_for(
        self, rule: NegativeRule
    ) -> dict[str, MeasureVerdict]:
        """Each measure's verdict on *rule*'s split, with rank.

        Ranks are 1-based positions in the measure's own descending
        score order (the order ``generate_negative_rules`` returns).
        """
        pair = (rule.antecedent, rule.consequent)
        verdicts: dict[str, MeasureVerdict] = {}
        for name, evaluation in self.evaluations.items():
            verdict = MeasureVerdict(measure=name, admitted=False)
            for position, candidate in enumerate(evaluation.rules, 1):
                if (candidate.antecedent, candidate.consequent) == pair:
                    verdict = MeasureVerdict(
                        measure=name,
                        admitted=True,
                        score=candidate.ri,
                        rank=position,
                        out_of=len(evaluation.rules),
                    )
                    break
            verdicts[name] = verdict
        return verdicts

    def summary(self) -> str:
        """A compact text report: per-measure counts plus the matrix."""
        lines = []
        for name, evaluation in self.evaluations.items():
            lines.append(
                f"{name}: {len(evaluation.negatives)} negative sets, "
                f"{len(evaluation.rules)} rules "
                f"({evaluation.wall_s * 1e3:.1f} ms)"
            )
        names = list(self.evaluations)
        for i, first in enumerate(names):
            for second in names[i + 1:]:
                lines.append(
                    f"jaccard({first}, {second}) = "
                    f"{self.jaccard(first, second):.3f}"
                )
        return "\n".join(lines)


def compare_measures(
    output,
    minsup: float,
    minri: float,
    measures: tuple[str, ...] | None = None,
    prune_small_antecedents: bool = True,
) -> MeasureComparison:
    """Judge one mining run under every registered measure.

    Parameters
    ----------
    output:
        Anything carrying ``candidates``, ``counts``,
        ``large_itemsets`` and ``total_transactions`` — a
        :class:`~repro.core.negmining.MinerOutput` or a
        :class:`~repro.core.api.NegativeMiningResult`.
    minsup, minri:
        The thresholds the run was mined at (measures interpret them
        per their own semantics).
    measures:
        Measure names to evaluate; ``None`` means every registered one.
    prune_small_antecedents:
        Figure 4's small-antecedent pruning, passed through to rule
        generation.

    Notes
    -----
    The default measure's evaluation reproduces the run's own output
    exactly when the run was mined with it: selection and generation
    are deterministic over the recorded counts.
    """
    counts = output.counts
    if not counts and output.candidates:
        raise ConfigError(
            "mining output carries no candidate counts; re-mine with "
            "this version (MinerOutput.counts) before comparing measures"
        )
    total = output.total_transactions
    if total < 1:
        raise ConfigError(
            "mining output records no transaction total; re-mine with "
            "this version before comparing measures"
        )
    comparison = MeasureComparison(
        minsup=minsup, minri=minri, total_transactions=total
    )
    for name in measures if measures is not None else measure_names():
        measure = create_measure(name)
        start = time.perf_counter()
        negatives = select_negatives(
            output.candidates,
            counts,
            total,
            minsup,
            minri,
            measure=measure,
            index=output.large_itemsets,
        )
        rules = generate_negative_rules(
            negatives,
            output.large_itemsets,
            minri,
            prune_small_antecedents=prune_small_antecedents,
            measure=measure,
            minsup=minsup,
        )
        wall_s = time.perf_counter() - start
        comparison.evaluations[name] = MeasureEvaluation(
            measure=name,
            negatives=negatives,
            rules=rules,
            wall_s=wall_s,
        )
    return comparison
