"""Apriori frequent-itemset mining (Agrawal & Srikant, VLDB 1994).

Two public pieces:

* :func:`apriori_gen` — the candidate join + prune step. It is reused
  verbatim by the negative rule generator (paper Figure 4 calls
  ``apriori-gen`` to grow consequents).
* :func:`find_large_itemsets` — the level-wise miner: one pass of the data
  per candidate size, counting through a pluggable engine.

Supports are returned as fractions of |D| inside a
:class:`~repro.mining.itemset_index.LargeItemsetIndex`.
"""

from __future__ import annotations

from collections.abc import Collection

from .._util import check_fraction
from ..data.database import TransactionDatabase
from ..itemset import Itemset
from .itemset_index import LargeItemsetIndex


def _default_session(database):
    """A serial default-engine session over *database*.

    Imported lazily: :mod:`repro.core.session` sits above the mining
    package in the import graph.
    """
    from ..core.session import MiningSession

    return MiningSession(database)


def apriori_gen(large_prev: Collection[Itemset]) -> list[Itemset]:
    """Generate size-``k`` candidates from the size-``k-1`` large itemsets.

    The join step merges two itemsets sharing their first ``k-2`` items;
    the prune step discards any candidate with a ``k-1`` subset outside
    *large_prev* (downward closure).

    >>> apriori_gen([(1, 2), (1, 3), (2, 3)])
    [(1, 2, 3)]
    >>> apriori_gen([(1, 2), (1, 3)])  # (2, 3) missing -> pruned
    []
    """
    prev = set(large_prev)
    if not prev:
        return []
    size = len(next(iter(prev)))
    ordered = sorted(prev)
    candidates: list[Itemset] = []
    for i, first in enumerate(ordered):
        prefix = first[:-1]
        for second in ordered[i + 1:]:
            if second[:-1] != prefix:
                break  # sorted order: no further itemset shares the prefix
            joined = first + (second[-1],)
            if _all_subsets_large(joined, prev, size):
                candidates.append(joined)
    return candidates


def _all_subsets_large(
    candidate: Itemset, prev: set[Itemset], size: int
) -> bool:
    """Prune step: every size-``k-1`` subset must be large."""
    # The two subsets dropping the last two positions are the join parents
    # and are large by construction; check the remaining ones.
    for drop in range(size - 1):
        subset = candidate[:drop] + candidate[drop + 1:]
        if subset not in prev:
            return False
    return True


def find_large_itemsets(
    database: TransactionDatabase,
    minsup: float,
    session=None,
    max_size: int | None = None,
) -> LargeItemsetIndex:
    """Mine all large itemsets of *database* at fractional support *minsup*.

    Parameters
    ----------
    database:
        Transactions over plain items (no taxonomy semantics; see
        :func:`repro.mining.generalized.mine_generalized` for that).
    minsup:
        Fractional minimum support in ``(0, 1]``.
    session:
        The :class:`~repro.core.session.MiningSession` to count through
        (engine, cache and parallel policy); ``None`` uses a serial
        default-engine session.
    max_size:
        Optional cap on itemset size (``None`` mines to exhaustion).

    Returns
    -------
    LargeItemsetIndex
        Every large itemset with its fractional support.
    """
    check_fraction(minsup, "minsup")
    if session is None:
        session = _default_session(database)
    total = len(database)
    min_count = minsup * total

    index = LargeItemsetIndex()
    item_counts = session.count(
        [(item,) for item in database.items],
        transactions=database,
        taxonomy=None,
    )
    current: list[Itemset] = []
    for single, count in item_counts.items():
        if count >= min_count:
            index.add(single, count / total)
            current.append(single)

    size = 2
    while current and (max_size is None or size <= max_size):
        candidates = apriori_gen(current)
        if not candidates:
            break
        counts = session.count(
            candidates, transactions=database, taxonomy=None
        )
        current = []
        for candidate, count in counts.items():
            if count >= min_count:
                index.add(candidate, count / total)
                current.append(candidate)
        size += 1
    return index
