"""A4 — Ablation: analytic candidate estimate vs measured counts.

Section 2.1.2 estimates candidates per size-k large itemset as
``sum C(k,i) f^i + k(f-1)``. The estimate ignores all pruning (small
items, lineage conflicts, expectation threshold, dedup), so it is an
upper-bound-flavored approximation; this bench reports the measured
ratio so the formula's fidelity is visible.

Run directly::

    python -m benchmarks.bench_ablation_estimate
"""

from collections import Counter

import pytest

from repro.core.candidates import generate_negative_candidates
from repro.core.estimate import (
    estimate_candidates_per_itemset,
    estimate_total_candidates,
)
from repro.mining.generalized import mine_generalized

from .common import MINRI, dataset, support_sweep

MINSUP = support_sweep()[0]


@pytest.mark.parametrize("kind", ["short", "tall"])
def test_estimate_vs_actual(benchmark, kind):
    data = dataset(kind)
    index = mine_generalized(data.database, data.taxonomy, MINSUP)
    sizes = {size: len(index.of_size(size)) for size in index.sizes}

    def generate():
        return generate_negative_candidates(
            index, data.taxonomy, MINSUP, MINRI
        )

    candidates = benchmark.pedantic(generate, rounds=1, iterations=1)
    estimated = estimate_total_candidates(sizes, data.taxonomy.fanout())
    benchmark.extra_info.update(
        measured=len(candidates),
        estimated=round(estimated),
        fanout=round(data.taxonomy.fanout(), 2),
    )


def main() -> None:
    print("=== A4: Section 2.1.2 estimate vs measured candidates ===")
    for kind in ("short", "tall"):
        data = dataset(kind)
        index = mine_generalized(data.database, data.taxonomy, MINSUP)
        fanout = data.taxonomy.fanout()
        candidates = generate_negative_candidates(
            index, data.taxonomy, MINSUP, MINRI
        )
        measured_sizes = Counter(len(items) for items in candidates)
        print(f"\n{kind}: fan-out={fanout:.2f}")
        print(f"{'size':>6} {'#large':>8} {'estimate':>10} {'measured':>10}")
        for size in sorted(size for size in index.sizes if size >= 2):
            count = len(index.of_size(size))
            estimate = count * estimate_candidates_per_itemset(
                size, fanout
            )
            print(
                f"{size:>6} {count:>8} {estimate:>10.0f} "
                f"{measured_sizes.get(size, 0):>10}"
            )
    print(
        "\nthe estimate ignores pruning and dedup, so measured counts "
        "sit below it; both grow with fan-out (the paper's claim)."
    )


if __name__ == "__main__":
    main()
