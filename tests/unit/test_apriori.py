"""Unit tests for apriori-gen and the level-wise miner."""

import pytest

from repro.core.session import MiningSession
from repro.data.database import TransactionDatabase
from repro.errors import ConfigError
from repro.mining.apriori import apriori_gen, find_large_itemsets


class TestAprioriGen:
    def test_classic_join(self):
        assert apriori_gen([(1, 2), (1, 3), (2, 3)]) == [(1, 2, 3)]

    def test_prune_removes_unsupported_subset(self):
        # (2, 3) missing -> (1, 2, 3) must be pruned.
        assert apriori_gen([(1, 2), (1, 3)]) == []

    def test_from_singletons(self):
        assert apriori_gen([(1,), (2,), (3,)]) == [(1, 2), (1, 3), (2, 3)]

    def test_empty_input(self):
        assert apriori_gen([]) == []

    def test_agrawal_srikant_paper_example(self):
        # L3 = {123, 124, 134, 135, 234}; C4 = {1234} (1345 pruned).
        large = [(1, 2, 3), (1, 2, 4), (1, 3, 4), (1, 3, 5), (2, 3, 4)]
        assert apriori_gen(large) == [(1, 2, 3, 4)]

    def test_candidates_are_canonical_and_unique(self):
        candidates = apriori_gen([(1, 2), (1, 3), (1, 4), (2, 3), (2, 4),
                                  (3, 4)])
        assert len(candidates) == len(set(candidates))
        assert all(
            list(candidate) == sorted(candidate) for candidate in candidates
        )


class TestFindLargeItemsets:
    def test_known_small_example(self):
        database = TransactionDatabase(
            [[1, 2, 3], [1, 2], [1, 3], [2, 3], [1, 2, 3]]
        )
        index = find_large_itemsets(database, 0.6)
        assert index.support((1,)) == pytest.approx(0.8)
        assert index.support((1, 2)) == pytest.approx(0.6)
        assert index.support((2, 3)) == pytest.approx(0.6)
        assert (1, 2, 3) not in index  # support 0.4 < 0.6

    def test_all_items_small(self):
        database = TransactionDatabase([[i] for i in range(10)])
        index = find_large_itemsets(database, 0.5)
        assert len(index) == 0

    def test_max_size_caps_mining(self, small_database):
        capped = find_large_itemsets(small_database, 0.2, max_size=1)
        assert capped.max_size == 1

    def test_min_support_boundary_is_inclusive(self):
        database = TransactionDatabase([[1], [1], [2], [3]])
        index = find_large_itemsets(database, 0.5)
        assert (1,) in index  # exactly 0.5

    def test_downward_closure(self, random_database):
        index = find_large_itemsets(random_database, 0.1)
        for items, _support in index.items():
            if len(items) < 2:
                continue
            for drop in range(len(items)):
                subset = items[:drop] + items[drop + 1:]
                assert subset in index

    def test_supports_decrease_with_size(self, random_database):
        index = find_large_itemsets(random_database, 0.1)
        for items, support in index.items():
            for drop in range(len(items)):
                subset = items[:drop] + items[drop + 1:]
                if subset:
                    assert index.support(subset) >= support - 1e-12

    @pytest.mark.parametrize("engine", ["bitmap", "hashtree", "index", "brute"])
    def test_engines_equivalent(self, small_database, engine):
        baseline = find_large_itemsets(
            small_database, 0.2, MiningSession(small_database, engine="brute")
        )
        small_database.reset_scans()
        other = find_large_itemsets(
            small_database, 0.2, MiningSession(small_database, engine=engine)
        )
        assert other == baseline

    def test_pass_count_is_levels(self, small_database):
        # One pass per level; possibly one extra pass that finds nothing.
        index = find_large_itemsets(small_database, 0.2)
        assert index.max_size <= small_database.scans <= index.max_size + 1

    @pytest.mark.parametrize("minsup", [0.0, -0.5, 1.5])
    def test_invalid_minsup_rejected(self, small_database, minsup):
        with pytest.raises(ConfigError):
            find_large_itemsets(small_database, minsup)
