"""P1 — Parallel scaling: process-per-task vs shared-memory workers.

Times one generalized counting pass (the pipeline's inner loop) on three
configurations — the serial ``numpy`` kernel, the process-per-task
``parallel:numpy`` wrapper, and the zero-copy ``parallel-shm`` engine —
at n_jobs in {1, 2, 4}, splitting **setup** (first pass: matrix pack,
segment publish, worker spawn + attach) from **steady state** (the
minimum per-pass wall over the following passes, which is what a long
mining run actually pays). All variants must return bit-identical
counts.

The built-in check pins the point of the shared-memory engine: at equal
``n_jobs`` its steady-state pass must be at least ``SHM_MIN_SPEEDUP``
times faster than the process-per-task wrapper, whose per-pass cost is
dominated by re-spawning workers and re-pickling row slices. On hosts
with >= 4 CPUs a second check asserts near-linear scaling of the shm
steady state from 1 to 4 jobs; single-core CI boxes skip it (there is
nothing to scale onto).

Folds its report into ``BENCH_counting.json`` under the
``"parallel_scaling"`` key — or ``["quick"]["parallel_scaling"]`` on
``--quick`` — where ``benchmarks.check_regression`` gates the
steady-state profile alongside the engine matrix and serving layers.

Run::

    python -m benchmarks.bench_parallel_scaling --quick
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

import pytest

#: Steady-state speedup the shm engine must show over process-per-task
#: parallel counting at the same n_jobs (same passes, same counts).
SHM_MIN_SPEEDUP = 2.0

#: Shm steady-state speedup required from 1 -> 4 jobs on >=4-CPU hosts.
LINEAR_MIN_SPEEDUP = 2.0

JOB_COUNTS = (1, 2, 4)


def _setup(kind="short"):
    from repro.core.candidates import generate_negative_candidates
    from repro.mining.generalized import mine_generalized

    from .common import MINRI, dataset, support_sweep

    minsup = support_sweep()[0]
    data = dataset(kind)
    index = mine_generalized(data.database, data.taxonomy, minsup)
    candidates = sorted(
        generate_negative_candidates(index, data.taxonomy, minsup, MINRI)
    )
    return data, candidates, minsup


def _variants() -> list[tuple[str, str, int]]:
    """(label, engine spec, n_jobs) cells, serial baseline first."""
    cells = [("numpy", "numpy", 1)]
    for n_jobs in JOB_COUNTS:
        if n_jobs > 1:
            cells.append(
                (f"parallel:numpy@{n_jobs}", "parallel:numpy", n_jobs)
            )
    for n_jobs in JOB_COUNTS:
        cells.append((f"parallel-shm@{n_jobs}", "parallel-shm", n_jobs))
    return cells


def _time_variant(data, candidates, spec: str, n_jobs: int, passes: int):
    """Setup wall + min steady-state pass wall for one configuration."""
    from repro.core.session import MiningSession

    session = MiningSession(
        data.database, data.taxonomy, engine=spec, n_jobs=n_jobs
    )
    try:
        start = time.perf_counter()
        counts = session.count(
            candidates, restrict_to_candidate_items=True
        )
        setup_s = time.perf_counter() - start
        steady = []
        for _ in range(passes):
            start = time.perf_counter()
            repeat = session.count(
                candidates, restrict_to_candidate_items=True
            )
            steady.append(time.perf_counter() - start)
            assert repeat == counts, f"{spec}@{n_jobs} pass disagreement"
        stats = session.parallel_stats
        point = {
            "setup_s": round(setup_s, 4),
            "steady_wall_per_pass_s": round(min(steady), 5),
            "workers_launched": stats.workers_launched,
            "shm_publishes": stats.shm_publishes,
            "shm_batches": stats.shm_batches,
        }
        return counts, point
    finally:
        if hasattr(session.engine, "close"):
            session.engine.close()


def run(passes: int = 3, kind: str = "short") -> dict:
    """Measure every variant; returns the report (with agreement flags)."""
    from .common import paper_row

    data, candidates, minsup = _setup(kind)
    report = {
        "dataset": kind,
        "scale": os.environ.get("REPRO_BENCH_SCALE", "0.02"),
        "minsup": minsup,
        "transactions": len(data.database),
        "candidates": len(candidates),
        "passes": passes,
        "cpu_count": os.cpu_count(),
        "variants": [],
        "steady_wall_per_pass_s": {},
    }
    reference = None
    for label, spec, n_jobs in _variants():
        counts, point = _time_variant(
            data, candidates, spec, n_jobs, passes
        )
        agrees = reference is None or counts == reference
        reference = reference if reference is not None else counts
        point |= {"variant": label, "engine": spec, "n_jobs": n_jobs,
                  "agrees": agrees}
        report["variants"].append(point)
        report["steady_wall_per_pass_s"][label] = (
            point["steady_wall_per_pass_s"]
        )
        paper_row(
            label,
            setup_s=point["setup_s"],
            steady_per_pass_s=point["steady_wall_per_pass_s"],
            workers=point["workers_launched"],
            agrees=agrees,
        )
    steady = report["steady_wall_per_pass_s"]
    report["shm_speedup_vs_process_per_task"] = round(
        steady["parallel:numpy@2"] / steady["parallel-shm@2"], 2
    )
    return report


def check(report: dict) -> list[str]:
    """The built-in assertions; returns failure messages (empty = pass)."""
    failures = []
    for point in report["variants"]:
        if not point["agrees"]:
            failures.append(
                f"{point['variant']} disagrees with the serial counts"
            )
    steady = report["steady_wall_per_pass_s"]
    for n_jobs in (2, 4):
        speedup = (
            steady[f"parallel:numpy@{n_jobs}"]
            / steady[f"parallel-shm@{n_jobs}"]
        )
        if speedup < SHM_MIN_SPEEDUP:
            failures.append(
                f"parallel-shm@{n_jobs} steady state is only "
                f"{speedup:.2f}x faster than parallel:numpy@{n_jobs} "
                f"(need >= {SHM_MIN_SPEEDUP}x)"
            )
    if (report["cpu_count"] or 1) >= 4:
        scaling = steady["parallel-shm@1"] / steady["parallel-shm@4"]
        if scaling < LINEAR_MIN_SPEEDUP:
            failures.append(
                f"parallel-shm scales only {scaling:.2f}x from 1 to 4 "
                f"jobs on a {report['cpu_count']}-CPU host "
                f"(need >= {LINEAR_MIN_SPEEDUP}x)"
            )
    return failures


@pytest.mark.parametrize("label,spec,n_jobs", _variants())
def test_parallel_scaling(benchmark, label, spec, n_jobs):
    data, candidates, _minsup = _setup()
    from repro.core.session import MiningSession

    serial = MiningSession(data.database, data.taxonomy).count(
        candidates, restrict_to_candidate_items=True
    )
    session = MiningSession(
        data.database, data.taxonomy, engine=spec, n_jobs=n_jobs
    )
    try:
        session.count(candidates, restrict_to_candidate_items=True)
        counts = benchmark.pedantic(
            lambda: session.count(
                candidates, restrict_to_candidate_items=True
            ),
            rounds=1,
            iterations=1,
        )
    finally:
        if hasattr(session.engine, "close"):
            session.engine.close()
    assert counts == serial
    benchmark.extra_info.update(
        candidates=len(candidates), transactions=len(data.database)
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small dataset (the CI smoke configuration)",
    )
    parser.add_argument(
        "--passes",
        type=int,
        default=3,
        help="steady-state passes per variant; the minimum is reported "
             "(default %(default)s)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_counting.json",
        help="JSON report to fold the parallel_scaling key into",
    )
    parser.add_argument(
        "--no-check",
        action="store_false",
        dest="check",
        help="report only; do not fail the built-in speedup assertions",
    )
    args = parser.parse_args(argv)

    os.environ.setdefault(
        "REPRO_BENCH_SCALE", "0.02" if args.quick else "0.1"
    )
    from benchmarks.common import fold_report, paper_row

    print("=== P1: parallel counting, setup vs steady state ===")
    report = run(passes=args.passes)
    fold_report(args.out, "parallel_scaling", report, quick=args.quick)
    paper_row(
        "shm vs process-per-task",
        speedup=report["shm_speedup_vs_process_per_task"],
    )
    print(f"wrote parallel_scaling into {args.out}")

    if args.check:
        failures = check(report)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
