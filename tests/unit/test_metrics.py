"""Unit tests for classical interestingness measures."""

import math

import pytest

from repro.errors import ConfigError
from repro.measures.metrics import (
    chi_square,
    confidence,
    conviction,
    leverage,
    lift,
    negative_confidence,
)


class TestConfidence:
    def test_value(self):
        assert confidence(0.4, 0.3) == pytest.approx(0.75)

    def test_negative_confidence_complements(self):
        assert negative_confidence(0.4, 0.3) == pytest.approx(0.25)

    def test_zero_antecedent_rejected(self):
        with pytest.raises(ConfigError):
            confidence(0.0, 0.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            confidence(1.2, 0.3)


class TestLift:
    def test_independence_is_one(self):
        assert lift(0.5, 0.4, 0.2) == pytest.approx(1.0)

    def test_positive_association_above_one(self):
        assert lift(0.5, 0.4, 0.3) > 1.0

    def test_negative_association_below_one(self):
        assert lift(0.5, 0.4, 0.05) < 1.0

    def test_zero_side_rejected(self):
        with pytest.raises(ConfigError):
            lift(0.0, 0.4, 0.0)

    def test_impossible_joint_rejected(self):
        with pytest.raises(ConfigError):
            lift(0.3, 0.4, 0.35)


class TestLeverage:
    def test_independence_is_zero(self):
        assert leverage(0.5, 0.4, 0.2) == pytest.approx(0.0)

    def test_sign_tracks_association(self):
        assert leverage(0.5, 0.4, 0.3) > 0.0
        assert leverage(0.5, 0.4, 0.1) < 0.0

    def test_bounded_by_quarter(self):
        assert abs(leverage(0.5, 0.5, 0.5)) <= 0.25 + 1e-12


class TestConviction:
    def test_independence_is_one(self):
        assert conviction(0.5, 0.4, 0.2) == pytest.approx(1.0)

    def test_perfect_implication_is_infinite(self):
        assert conviction(0.3, 0.5, 0.3) == math.inf

    def test_negative_association_below_one(self):
        assert conviction(0.5, 0.4, 0.05) < 1.0

    def test_zero_antecedent_rejected(self):
        with pytest.raises(ConfigError):
            conviction(0.0, 0.4, 0.0)

    def test_impossible_joint_clamped(self):
        """A joint above a marginal (float drift in callers) is clamped
        to the feasible region instead of raising: sup_xy=0.5 against
        sup_y=0.3 behaves as the perfectly-correlated 0.3."""
        assert conviction(0.5, 0.3, 0.5) == pytest.approx(1.75)
        assert conviction(0.5, 0.3, 0.5) == conviction(0.5, 0.3, 0.3)

    def test_clamp_can_reach_the_infinite_sentinel(self):
        # Clamped to sup_x: X ⊆ Y exactly, the documented inf sentinel.
        assert conviction(0.3, 0.5, 0.4) == math.inf


class TestChiSquare:
    def test_independence_is_zero(self):
        assert chi_square(0.5, 0.4, 0.2, 1000) == pytest.approx(0.0)

    def test_perfect_correlation_is_n(self):
        # X == Y on every transaction: statistic equals |D|.
        assert chi_square(0.5, 0.5, 0.5, 200) == pytest.approx(200.0)

    def test_scale_linearity(self):
        small = chi_square(0.5, 0.4, 0.3, 100)
        large = chi_square(0.5, 0.4, 0.3, 1000)
        assert large == pytest.approx(10 * small)

    def test_degenerate_marginal_returns_zero(self):
        assert chi_square(1.0, 0.4, 0.4, 100) == 0.0

    def test_bad_transaction_count_rejected(self):
        with pytest.raises(ConfigError):
            chi_square(0.5, 0.4, 0.2, 0)

    def test_impossible_joint_clamped(self):
        assert chi_square(0.3, 0.4, 0.35, 100) == pytest.approx(
            chi_square(0.3, 0.4, 0.3, 100)
        )

    def test_symmetry(self):
        assert chi_square(0.5, 0.3, 0.2, 500) == pytest.approx(
            chi_square(0.3, 0.5, 0.2, 500)
        )
