"""Unit tests for the large-itemset hash table."""

import pytest

from repro.errors import ConfigError
from repro.mining.itemset_index import LargeItemsetIndex


class TestMutation:
    def test_add_canonicalizes(self):
        index = LargeItemsetIndex()
        index.add([3, 1], 0.5)
        assert (1, 3) in index

    def test_add_overwrites_support(self):
        index = LargeItemsetIndex()
        index.add((1,), 0.5)
        index.add((1,), 0.7)
        assert index.support((1,)) == 0.7
        assert len(index) == 1

    def test_empty_itemset_rejected(self):
        with pytest.raises(ConfigError):
            LargeItemsetIndex().add((), 0.5)

    @pytest.mark.parametrize("support", [-0.1, 1.1])
    def test_bad_support_rejected(self, support):
        with pytest.raises(ConfigError):
            LargeItemsetIndex().add((1,), support)

    def test_init_from_mapping(self):
        index = LargeItemsetIndex({(1,): 0.5, (1, 2): 0.3})
        assert len(index) == 2

    def test_merge(self):
        first = LargeItemsetIndex({(1,): 0.5})
        second = LargeItemsetIndex({(2,): 0.4, (1,): 0.6})
        first.merge(second)
        assert first.support((1,)) == 0.6
        assert first.support((2,)) == 0.4


class TestLookup:
    @pytest.fixture
    def index(self):
        return LargeItemsetIndex(
            {(1,): 0.9, (2,): 0.8, (1, 2): 0.7, (1, 2, 3): 0.2}
        )

    def test_is_large(self, index):
        assert index.is_large((1, 2))
        assert not index.is_large((2, 3))

    def test_support_raises_on_missing(self, index):
        with pytest.raises(KeyError):
            index.support((9,))

    def test_support_or_none(self, index):
        assert index.support_or_none((1,)) == 0.9
        assert index.support_or_none((9,)) is None

    def test_of_size(self, index):
        assert index.of_size(1) == {(1,), (2,)}
        assert index.of_size(2) == {(1, 2)}
        assert index.of_size(5) == frozenset()

    def test_sizes_and_max_size(self, index):
        assert index.sizes == (1, 2, 3)
        assert index.max_size == 3

    def test_empty_index(self):
        empty = LargeItemsetIndex()
        assert empty.max_size == 0
        assert empty.sizes == ()
        assert len(empty) == 0

    def test_items_deterministic_order(self, index):
        keys = [items for items, _ in index.items()]
        assert keys == sorted(keys)

    def test_iter(self, index):
        assert list(index) == sorted(
            [(1,), (2,), (1, 2), (1, 2, 3)]
        )

    def test_equality(self, index):
        clone = LargeItemsetIndex(dict(index.items()))
        assert clone == index
        clone.add((9,), 0.1)
        assert clone != index

    def test_equality_other_type(self, index):
        assert index != "not an index"

    def test_repr(self, index):
        assert "total=4" in repr(index)


class TestPersistence:
    @pytest.fixture
    def index(self):
        return LargeItemsetIndex(
            {(1,): 0.9, (2,): 0.8, (1, 2): 0.7, (1, 2, 3): 0.2}
        )

    def test_json_round_trip(self, index):
        clone = LargeItemsetIndex.from_json(index.to_json())
        assert clone == index
        assert len(clone) == len(index)  # __len__ parity
        assert clone.support((1, 2, 3)) == 0.2

    def test_empty_round_trip(self):
        clone = LargeItemsetIndex.from_json(LargeItemsetIndex().to_json())
        assert len(clone) == 0

    def test_payload_is_versioned(self, index):
        payload = index.to_payload()
        assert payload["schema"] == 1
        assert payload["kind"] == "itemset-index"

    def test_wrong_kind_rejected(self, index):
        payload = index.to_payload()
        payload["kind"] = "rule-index"
        with pytest.raises(ConfigError):
            LargeItemsetIndex.from_payload(payload)

    def test_unknown_schema_rejected(self, index):
        payload = index.to_payload()
        payload["schema"] = 999
        with pytest.raises(ConfigError):
            LargeItemsetIndex.from_payload(payload)

    def test_payload_order_is_deterministic(self, index):
        first = index.to_json()
        second = LargeItemsetIndex(dict(reversed(list(index.items()))))
        assert first == second.to_json()
