"""Unit tests for positive rule generation (ap-genrules)."""

import pytest

from repro.errors import ConfigError
from repro.mining.itemset_index import LargeItemsetIndex
from repro.mining.rules import AssociationRule, generate_rules


@pytest.fixture
def index():
    """Supports engineered so {1,2} => confident, {2} => {1} is not."""
    return LargeItemsetIndex(
        {
            (1,): 0.4,
            (2,): 0.8,
            (3,): 0.5,
            (1, 2): 0.35,
            (2, 3): 0.4,
            (1, 3): 0.3,
            (1, 2, 3): 0.25,
        }
    )


class TestGenerateRules:
    def test_confidences_correct(self, index):
        rules = {
            (rule.antecedent, rule.consequent): rule
            for rule in generate_rules(index, 0.01)
        }
        rule = rules[((1,), (2,))]
        assert rule.confidence == pytest.approx(0.35 / 0.4)
        assert rule.support == pytest.approx(0.35)

    def test_minconf_filters(self, index):
        rules = generate_rules(index, 0.8)
        pairs = {(rule.antecedent, rule.consequent) for rule in rules}
        assert ((1,), (2,)) in pairs      # 0.875
        assert ((2,), (1,)) not in pairs  # 0.4375

    def test_multi_item_consequents_generated(self, index):
        rules = generate_rules(index, 0.5)
        pairs = {(rule.antecedent, rule.consequent) for rule in rules}
        # {1} => {2, 3}: 0.25 / 0.4 = 0.625.
        assert ((1,), (2, 3)) in pairs

    def test_consequent_pruning_is_sound(self, index):
        # Exhaustive check: every qualifying rule is present.
        rules = generate_rules(index, 0.3)
        pairs = {(rule.antecedent, rule.consequent) for rule in rules}
        for items, support in index.items():
            if len(items) < 2:
                continue
            for drop_mask in range(1, 2 ** len(items) - 1):
                consequent = tuple(
                    item
                    for position, item in enumerate(items)
                    if drop_mask & (1 << position)
                )
                antecedent = tuple(
                    item for item in items if item not in consequent
                )
                confidence = support / index.support(antecedent)
                if confidence >= 0.3:
                    assert (antecedent, consequent) in pairs
                else:
                    assert (antecedent, consequent) not in pairs

    def test_sorted_by_confidence(self, index):
        rules = generate_rules(index, 0.01)
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_empty_index_no_rules(self):
        assert generate_rules(LargeItemsetIndex(), 0.5) == []

    def test_singletons_only_no_rules(self):
        index = LargeItemsetIndex({(1,): 0.5, (2,): 0.5})
        assert generate_rules(index, 0.1) == []

    @pytest.mark.parametrize("minconf", [0.0, 1.5])
    def test_bad_minconf_rejected(self, index, minconf):
        with pytest.raises(ConfigError):
            generate_rules(index, minconf)


class TestAssociationRule:
    def test_format_plain(self):
        rule = AssociationRule((1,), (2,), 0.4, 0.8)
        assert rule.format() == "{1} => {2} (sup=0.4000, conf=0.8000)"

    def test_format_with_names(self):
        rule = AssociationRule((1,), (2,), 0.4, 0.8)
        names = {1: "bread", 2: "milk"}
        text = rule.format(lambda item: names[item])
        assert text.startswith("{bread} => {milk}")
