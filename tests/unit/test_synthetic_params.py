"""Unit tests for the generator parameter presets (paper Tables 3-4)."""

import pytest

from repro.errors import GenerationError
from repro.synthetic.params import SHORT, TALL, GeneratorParams


class TestPresets:
    def test_table4_shared_values(self):
        for preset in (SHORT, TALL):
            assert preset.num_transactions == 50_000
            assert preset.avg_cluster_size == 5.0
            assert preset.avg_itemset_size == 5.0
            assert preset.avg_itemsets_per_cluster == 3.0
            assert preset.num_clusters == 2_000
            assert preset.num_items == 8_000

    def test_fanouts_differ(self):
        assert SHORT.fanout == 9.0
        assert TALL.fanout == 3.0

    def test_corruption_defaults(self):
        assert SHORT.corruption_mean == 0.5
        assert SHORT.corruption_variance == 0.1


class TestScaling:
    def test_scaled_extensive_quantities(self):
        scaled = SHORT.scaled(0.1)
        assert scaled.num_transactions == 5_000
        assert scaled.num_items == 800
        assert scaled.num_clusters == 200
        assert scaled.num_roots == 25

    def test_scaled_keeps_shape_parameters(self):
        scaled = TALL.scaled(0.1)
        assert scaled.fanout == TALL.fanout
        assert scaled.avg_transaction_size == TALL.avg_transaction_size
        assert scaled.avg_itemset_size == TALL.avg_itemset_size

    def test_scaled_floors(self):
        tiny = SHORT.scaled(0.0001)
        assert tiny.num_transactions >= 1
        assert tiny.num_items >= 10
        assert tiny.num_roots >= 1

    @pytest.mark.parametrize("factor", [0.0, -0.5, 1.1])
    def test_bad_factor_rejected(self, factor):
        with pytest.raises(GenerationError):
            SHORT.scaled(factor)


class TestValidation:
    def test_nonpositive_average_rejected(self):
        with pytest.raises(GenerationError):
            GeneratorParams(avg_transaction_size=0)

    def test_fanout_below_one_rejected(self):
        with pytest.raises(GenerationError):
            GeneratorParams(fanout=0.5)

    def test_roots_beyond_items_rejected(self):
        with pytest.raises(GenerationError):
            GeneratorParams(num_items=10, num_roots=20)

    def test_bad_corruption_mean_rejected(self):
        with pytest.raises(GenerationError):
            GeneratorParams(corruption_mean=1.5)

    def test_negative_variance_rejected(self):
        with pytest.raises(GenerationError):
            GeneratorParams(corruption_variance=-0.1)
