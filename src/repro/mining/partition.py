"""The Partition algorithm (Savasere, Omiecinski & Navathe, VLDB 1995).

Reference [11] of the paper — the authors' own two-pass frequent-itemset
miner, included here as an alternative substrate and ablation baseline.

Phase 1 splits the database into ``n`` partitions sized to fit in memory
and mines each partition *locally* with vertical tid-lists (an itemset's
tid-list is the intersection of its generators' tid-lists, so local support
counting needs no further data passes). Any itemset that is globally large
must be locally large in at least one partition, so the union of local
large itemsets is a superset of the answer.

Phase 2 counts that union against the whole database once and keeps the
itemsets meeting global minimum support. Exactly two passes are made over
the data, independent of the longest itemset.
"""

from __future__ import annotations

from .._util import check_fraction, check_positive
from ..data.database import TransactionDatabase
from ..itemset import Itemset
from .apriori import _default_session, apriori_gen
from .itemset_index import LargeItemsetIndex

TidList = tuple[int, ...]


def _local_large(
    rows: list[Itemset], minsup: float, max_size: int | None
) -> set[Itemset]:
    """Mine one partition bottom-up with tid-list intersections."""
    min_count = minsup * len(rows)
    tidlists: dict[Itemset, list[int]] = {}
    for tid, row in enumerate(rows):
        for item in row:
            tidlists.setdefault((item,), []).append(tid)

    local: set[Itemset] = set()
    current: dict[Itemset, list[int]] = {
        single: tids
        for single, tids in tidlists.items()
        if len(tids) >= min_count
    }
    local.update(current)

    size = 2
    while current and (max_size is None or size <= max_size):
        candidates = apriori_gen(list(current))
        following: dict[Itemset, list[int]] = {}
        for candidate in candidates:
            # Intersect the tid-lists of the two generating subsets; both
            # are guaranteed locally large and therefore present.
            left = current[candidate[:-1]]
            right = current[candidate[:-2] + candidate[-1:]]
            shared = _intersect(left, right)
            if len(shared) >= min_count:
                following[candidate] = shared
        local.update(following)
        current = following
        size += 1
    return local


def _intersect(left: list[int], right: list[int]) -> list[int]:
    """Intersect two ascending tid-lists with a linear merge."""
    out: list[int] = []
    i = j = 0
    len_left, len_right = len(left), len(right)
    while i < len_left and j < len_right:
        a, b = left[i], right[j]
        if a < b:
            i += 1
        elif b < a:
            j += 1
        else:
            out.append(a)
            i += 1
            j += 1
    return out


def mine_local_partition(
    rows: list[Itemset], minsup: float, max_size: int | None = None
) -> set[Itemset]:
    """Mine the locally large itemsets of one in-memory partition.

    This is phase 1 of Partition for a single partition, exposed so the
    parallel driver (:func:`repro.parallel.engine.parallel_partition`)
    can run one partition per worker process. *minsup* is applied against
    ``len(rows)``, i.e. locally.
    """
    check_fraction(minsup, "minsup")
    return _local_large(list(rows), minsup, max_size)


def find_large_itemsets_partition(
    database: TransactionDatabase,
    minsup: float,
    partitions: int = 4,
    session=None,
    max_size: int | None = None,
) -> LargeItemsetIndex:
    """Mine large itemsets with the two-pass Partition algorithm.

    Parameters
    ----------
    database:
        Transactions over plain items. For generalized mining, extend the
        database first with
        :func:`repro.mining.generalized.extend_database`.
    minsup:
        Fractional minimum support in ``(0, 1]``.
    partitions:
        Number of partitions; clamped to |D| so each partition is
        non-empty.
    session:
        :class:`~repro.core.session.MiningSession` used for the global
        (phase 2) counting pass; ``None`` uses a serial default-engine
        session.
    max_size:
        Optional cap on itemset size.

    Returns
    -------
    LargeItemsetIndex
        Identical content to :func:`repro.mining.apriori.find_large_itemsets`
        (property-tested equivalence).
    """
    check_fraction(minsup, "minsup")
    check_positive(partitions, "partitions")
    if session is None:
        session = _default_session(database)
    total = len(database)
    parts = min(partitions, total)

    # Phase 1: one pass, mining each partition as its rows stream in.
    global_candidates: set[Itemset] = set()
    bounds = [round(part * total / parts) for part in range(parts + 1)]
    rows_iter = database.scan()
    buffer: list[Itemset] = []
    boundary_index = 1
    for position, row in enumerate(rows_iter, start=1):
        buffer.append(row)
        if position == bounds[boundary_index]:
            global_candidates.update(_local_large(buffer, minsup, max_size))
            buffer = []
            boundary_index += 1
    if buffer:  # defensive: rounding never leaves a tail, but be safe
        global_candidates.update(_local_large(buffer, minsup, max_size))

    # Phase 2: one pass counting the merged candidate set globally.
    index = LargeItemsetIndex()
    if not global_candidates:
        return index
    min_count = minsup * total
    counts = session.count(
        sorted(global_candidates), transactions=database, taxonomy=None
    )
    for candidate, count in counts.items():
        if count >= min_count:
            index.add(candidate, count / total)
    return index
