"""A3 — Ablation: taxonomy pruning of small 1-itemsets.

The Improved algorithm's first optimization deletes small items from the
taxonomy before candidate generation; candidate *output* is unchanged
(replacements are always filtered to large items) but generation iterates
far fewer children/sibling combinations. This ablation times candidate
generation with and without pruning and verifies output equality.

Run directly::

    python -m benchmarks.bench_ablation_pruning
"""

import time

import pytest

from repro.core.candidates import generate_negative_candidates
from repro.mining.generalized import mine_generalized
from repro.taxonomy.prune import restrict_to_items

from .common import MINRI, dataset, support_sweep

MINSUP = support_sweep()[0]


def _setup():
    data = dataset("short")
    index = mine_generalized(data.database, data.taxonomy, MINSUP)
    large_singles = [items[0] for items in index.of_size(1)]
    pruned = restrict_to_items(data.taxonomy, large_singles)
    return data, index, pruned


@pytest.mark.parametrize("variant", ["pruned", "full"])
def test_candidate_generation(benchmark, variant):
    data, index, pruned = _setup()
    taxonomy = pruned if variant == "pruned" else data.taxonomy

    def generate():
        return generate_negative_candidates(
            index, taxonomy, MINSUP, MINRI
        )

    candidates = benchmark.pedantic(generate, rounds=1, iterations=1)
    benchmark.extra_info.update(
        candidates=len(candidates),
        taxonomy_nodes=len(taxonomy),
    )


def main() -> None:
    data, index, pruned = _setup()
    print(
        f"=== A3: taxonomy pruning, {len(data.taxonomy)} -> "
        f"{len(pruned)} nodes ==="
    )
    outputs = {}
    for label, taxonomy in (("full", data.taxonomy), ("pruned", pruned)):
        started = time.perf_counter()
        outputs[label] = generate_negative_candidates(
            index, taxonomy, MINSUP, MINRI
        )
        elapsed = time.perf_counter() - started
        print(
            f"  {label:<7} {elapsed:8.3f}s  "
            f"candidates={len(outputs[label])}"
        )
    same = set(outputs["full"]) == set(outputs["pruned"])
    print(f"\nidentical candidate sets: {same} (must be True)")


if __name__ == "__main__":
    main()
