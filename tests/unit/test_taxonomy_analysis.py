"""Unit tests for taxonomy diagnostics."""

import pytest

from repro.errors import TaxonomyError
from repro.taxonomy.analysis import (
    category_balance,
    format_profile,
    granularity_report,
    profile,
)
from repro.taxonomy.builders import taxonomy_from_parents


@pytest.fixture
def taxonomy():
    """root 0 -> (1, 2); 2 -> leaves 3..6; isolated 99."""
    return taxonomy_from_parents(
        {1: 0, 2: 0, 3: 2, 4: 2, 5: 2, 6: 2}, extra_roots=[99]
    )


class TestProfile:
    def test_counts(self, taxonomy):
        result = profile(taxonomy)
        assert result.nodes == 8
        assert result.leaves == 6  # 1, 3, 4, 5, 6, 99
        assert result.categories == 2
        assert result.roots == 2
        assert result.height == 2

    def test_fanout_statistics(self, taxonomy):
        result = profile(taxonomy)
        assert result.average_fanout == pytest.approx(3.0)  # (2 + 4) / 2
        assert result.max_fanout == 4
        assert result.fanout_histogram == {2: 1, 4: 1}

    def test_depth_histogram(self, taxonomy):
        result = profile(taxonomy)
        assert result.depth_histogram == {0: 2, 1: 2, 2: 4}

    def test_format(self, taxonomy):
        text = format_profile(profile(taxonomy))
        assert "avg_fanout=3.00" in text
        assert "depth histogram" in text


class TestGranularityReport:
    def test_flags_coarse_categories(self, taxonomy):
        findings = granularity_report(taxonomy, coarse_fanout=3)
        assert [finding.category for finding in findings] == [2]
        assert findings[0].fanout == 4
        assert findings[0].expected_child_share == pytest.approx(0.25)

    def test_fine_taxonomy_is_clean(self, taxonomy):
        assert granularity_report(taxonomy, coarse_fanout=10) == []

    def test_sorted_worst_first(self):
        wide = taxonomy_from_parents(
            {child: 0 for child in range(1, 6)}
            | {child: 10 for child in range(11, 14)}
        )
        findings = granularity_report(wide, coarse_fanout=2)
        fanouts = [finding.fanout for finding in findings]
        assert fanouts == sorted(fanouts, reverse=True)

    def test_invalid_threshold(self, taxonomy):
        with pytest.raises(TaxonomyError):
            granularity_report(taxonomy, coarse_fanout=1)


class TestCategoryBalance:
    def test_uniform_is_one(self, taxonomy):
        counts = {3: 10, 4: 10, 5: 10, 6: 10}
        assert category_balance(taxonomy, counts, 2) == pytest.approx(1.0)

    def test_skewed_is_low(self, taxonomy):
        counts = {3: 1000, 4: 1, 5: 1, 6: 1}
        assert category_balance(taxonomy, counts, 2) < 0.2

    def test_single_dominant_child_approaches_zero(self, taxonomy):
        counts = {3: 1000, 4: 0, 5: 0, 6: 0}
        assert category_balance(taxonomy, counts, 2) == pytest.approx(0.0)

    def test_counts_aggregate_through_subcategories(self, taxonomy):
        # Category 0's children are 1 (leaf) and 2 (category); 2's weight
        # is the sum of its leaves.
        counts = {1: 40, 3: 10, 4: 10, 5: 10, 6: 10}
        assert category_balance(taxonomy, counts, 0) == pytest.approx(1.0)

    def test_no_data_is_vacuously_balanced(self, taxonomy):
        assert category_balance(taxonomy, {}, 2) == 1.0

    def test_leaf_rejected(self, taxonomy):
        with pytest.raises(TaxonomyError):
            category_balance(taxonomy, {}, 3)
