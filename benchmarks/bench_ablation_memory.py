"""A5 — Ablation: memory-bounded candidate batching (Section 2.5).

When the candidate set exceeds memory, the Improved algorithm counts it in
batches, paying one extra pass per batch. This bench sweeps the memory
budget and reports time and pass counts; results must not change.

Run directly::

    python -m benchmarks.bench_ablation_memory
"""

import time

import pytest

from repro.core.negmining import ImprovedNegativeMiner

from .common import MINRI, dataset, support_sweep

MINSUP = support_sweep()[0]
BUDGETS = [None, 2000, 500, 100]


def _mine(budget):
    data = dataset("short")
    data.database.reset_scans()
    output = ImprovedNegativeMiner(
        data.database,
        data.taxonomy,
        MINSUP,
        MINRI,
        max_candidates_in_memory=budget,
    ).mine()
    return output


@pytest.mark.parametrize("budget", BUDGETS)
def test_memory_budget(benchmark, budget):
    output = benchmark.pedantic(
        _mine, args=(budget,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        batches=output.stats.counting_batches,
        passes=output.stats.data_passes,
        negatives=output.stats.negative_itemsets,
    )


def main() -> None:
    print(f"=== A5: memory budgets at MinSup={MINSUP} ===")
    print(f"{'budget':>8} {'time(s)':>9} {'batches':>8} {'passes':>7} "
          f"{'negatives':>10}")
    reference = None
    for budget in BUDGETS:
        started = time.perf_counter()
        output = _mine(budget)
        elapsed = time.perf_counter() - started
        label = "all" if budget is None else str(budget)
        print(
            f"{label:>8} {elapsed:>9.3f} "
            f"{output.stats.counting_batches:>8} "
            f"{output.stats.data_passes:>7} "
            f"{output.stats.negative_itemsets:>10}"
        )
        found = [negative.items for negative in output.negatives]
        if reference is None:
            reference = found
        assert found == reference, "batching must not change results"
    print("\nresults identical across budgets; extra passes are the cost.")


if __name__ == "__main__":
    main()
