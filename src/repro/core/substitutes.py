"""Substitute-item knowledge (paper Section 4.1, future work).

The paper's candidate generation trusts the taxonomy to group substitute
items ("one of the implicit assumptions ... is that the items belonging to
the same category are 'substitute' items") and names richer substitute
knowledge as the main future-work direction: "For instance, a knowledge of
substitute items. How to incorporate other types of information to improve
the quality of rules needs to be explored further."

This module implements that extension. A :class:`SubstituteGroups` object
declares sets of mutually substitutable items that need *not* share a
taxonomy parent (store-brand vs name-brand colas in different aisles,
butter vs margarine, ...). During candidate generation each group member
acts exactly like a taxonomy *sibling* of the other members: for a large
itemset containing item ``r``, replacing ``r`` with substitute ``r'``
yields a candidate with expected support

    E[sup] = sup(large itemset) * sup(r') / sup(r)

— the paper's Case-3 formula with the sibling relation generalized. The
candidates integrate with the ordinary pipeline via
:func:`generate_substitute_candidates`, and the results can be merged with
taxonomy-derived candidates (max-expectation dedup, as in Section 2.1.1).
"""

from __future__ import annotations

from collections.abc import Iterable

from .._util import check_fraction
from ..errors import ConfigError
from ..itemset import Itemset, replace_positions
from ..mining.itemset_index import LargeItemsetIndex
from .candidates import NegativeCandidate
from .expectation import expected_support
from .interest import deviation_threshold

CASE_SUBSTITUTES = "substitutes"


class SubstituteGroups:
    """Groups of mutually substitutable items.

    Parameters
    ----------
    groups:
        Iterables of item ids; each group declares all its members as
        pairwise substitutes. An item may belong to several groups; its
        substitute set is the union of its groups minus itself.

    Examples
    --------
    >>> groups = SubstituteGroups([[1, 2, 3], [3, 9]])
    >>> groups.substitutes_of(3)
    (1, 2, 9)
    >>> groups.substitutes_of(42)
    ()
    """

    __slots__ = ("_partners",)

    def __init__(self, groups: Iterable[Iterable[int]]) -> None:
        partners: dict[int, set[int]] = {}
        for group in groups:
            members = sorted(set(group))
            if len(members) < 2:
                raise ConfigError(
                    "substitute groups need at least 2 items, got "
                    f"{members!r}"
                )
            for member in members:
                partners.setdefault(member, set()).update(
                    other for other in members if other != member
                )
        self._partners: dict[int, tuple[int, ...]] = {
            member: tuple(sorted(others))
            for member, others in partners.items()
        }

    def substitutes_of(self, item: int) -> tuple[int, ...]:
        """All declared substitutes of *item* (empty if none)."""
        return self._partners.get(item, ())

    @property
    def items(self) -> frozenset[int]:
        """Items mentioned in any group."""
        return frozenset(self._partners)

    def __len__(self) -> int:
        return len(self._partners)

    def __repr__(self) -> str:
        return f"SubstituteGroups(items={len(self._partners)})"


def generate_substitute_candidates(
    index: LargeItemsetIndex,
    substitutes: SubstituteGroups,
    minsup: float,
    minri: float,
    max_replacements: int = 1,
) -> dict[Itemset, NegativeCandidate]:
    """Generate negative candidates by substitute replacement.

    For every large itemset and every way of replacing up to
    *max_replacements* of its items with declared substitutes (keeping at
    least one original item, mirroring the all-siblings exclusion), a
    candidate is emitted when:

    * every item of the candidate is a large 1-itemset,
    * the candidate is not itself a large itemset,
    * its expected support reaches ``minsup * minri``.

    Returns the same ``{itemset: NegativeCandidate}`` shape as
    :func:`repro.core.candidates.generate_negative_candidates`; merge the
    two with :func:`merge_candidate_sets`.
    """
    check_fraction(minsup, "minsup")
    threshold = deviation_threshold(minsup, minri)
    if max_replacements < 1:
        raise ConfigError(
            f"max_replacements must be >= 1, got {max_replacements}"
        )
    out: dict[Itemset, NegativeCandidate] = {}
    for size in index.sizes:
        if size < 2:
            continue
        for source in sorted(index.of_size(size)):
            _expand_source(
                source, index, substitutes, threshold, max_replacements,
                out,
            )
    return out


def _expand_source(
    source: Itemset,
    index: LargeItemsetIndex,
    substitutes: SubstituteGroups,
    threshold: float,
    max_replacements: int,
    out: dict[Itemset, NegativeCandidate],
) -> None:
    from itertools import combinations, product

    size = len(source)
    limit = min(max_replacements, size - 1)
    base = index.support(source)
    for count in range(1, limit + 1):
        for positions in combinations(range(size), count):
            pools = []
            for position in positions:
                partners = [
                    partner
                    for partner in substitutes.substitutes_of(
                        source[position]
                    )
                    if index.is_large((partner,))
                ]
                pools.append(partners)
            if any(not pool for pool in pools):
                continue
            for assignment in product(*pools):
                candidate = replace_positions(
                    source, positions, assignment
                )
                if candidate is None or candidate in index:
                    continue
                ratios = [
                    (
                        index.support((new,)),
                        index.support((source[position],)),
                    )
                    for position, new in zip(positions, assignment)
                ]
                expectation = expected_support(base, ratios)
                if expectation < threshold:
                    continue
                existing = out.get(candidate)
                if (
                    existing is None
                    or expectation > existing.expected_support
                ):
                    out[candidate] = NegativeCandidate(
                        items=candidate,
                        expected_support=expectation,
                        source=source,
                        case=CASE_SUBSTITUTES,
                    )


def merge_candidate_sets(
    *candidate_sets: dict[Itemset, NegativeCandidate],
) -> dict[Itemset, NegativeCandidate]:
    """Merge candidate dictionaries, keeping the maximum expectation.

    Implements the Section 2.1.1 rule ("the largest value of the expected
    support is chosen") across generation mechanisms — taxonomy cases and
    substitute knowledge.
    """
    merged: dict[Itemset, NegativeCandidate] = {}
    for candidates in candidate_sets:
        for items, candidate in candidates.items():
            existing = merged.get(items)
            if (
                existing is None
                or candidate.expected_support > existing.expected_support
            ):
                merged[items] = candidate
    return merged
