"""Unit tests for the Naive and Improved negative-itemset miners."""

import pytest

from repro.core.negmining import (
    ImprovedNegativeMiner,
    MiningStats,
    NaiveNegativeMiner,
    NegativeItemset,
)
from repro.core.session import MiningSession
from repro.data.database import TransactionDatabase
from repro.errors import ConfigError
from repro.taxonomy.builders import taxonomy_from_nested


@pytest.fixture
def taxonomy():
    return taxonomy_from_nested(
        {
            "drinks": {
                "soda": ["cola", "lemonade"],
                "water": ["still", "sparkling"],
            },
            "snacks": {"chips": ["salted", "paprika"]},
        }
    )


@pytest.fixture
def database(taxonomy):
    """cola pairs with salted chips; lemonade never does."""
    cola = taxonomy.id_of("cola")
    lemonade = taxonomy.id_of("lemonade")
    salted = taxonomy.id_of("salted")
    still = taxonomy.id_of("still")
    rows = (
        [[cola, salted]] * 30
        + [[cola, still]] * 10
        + [[lemonade, still]] * 25
        + [[lemonade]] * 5
        + [[salted]] * 20
        + [[still]] * 10
    )
    return TransactionDatabase(rows)


class TestImprovedMiner:
    def test_finds_planted_negative(self, database, taxonomy):
        output = ImprovedNegativeMiner(
            database, taxonomy, minsup=0.1, minri=0.3
        ).mine()
        lemonade = taxonomy.id_of("lemonade")
        salted = taxonomy.id_of("salted")
        found = {negative.items for negative in output.negatives}
        assert tuple(sorted((lemonade, salted))) in found

    def test_negatives_meet_deviation_threshold(self, database, taxonomy):
        output = ImprovedNegativeMiner(
            database, taxonomy, minsup=0.1, minri=0.3
        ).mine()
        for negative in output.negatives:
            assert negative.deviation >= 0.1 * 0.3 - 1e-12

    def test_negatives_sorted_by_deviation(self, database, taxonomy):
        output = ImprovedNegativeMiner(
            database, taxonomy, minsup=0.1, minri=0.3
        ).mine()
        deviations = [negative.deviation for negative in output.negatives]
        assert deviations == sorted(deviations, reverse=True)

    def test_pass_budget_is_levels_plus_one(self, database, taxonomy):
        output = ImprovedNegativeMiner(
            database, taxonomy, minsup=0.1, minri=0.3
        ).mine()
        levels = output.large_itemsets.max_size
        # n or n+1 positive passes (a last empty level may be probed)
        # plus exactly one negative counting pass.
        assert levels + 1 <= output.stats.data_passes <= levels + 2
        assert output.stats.counting_batches == 1

    def test_batched_counting_equivalent(self, database, taxonomy):
        whole = ImprovedNegativeMiner(
            database, taxonomy, minsup=0.1, minri=0.3
        ).mine()
        database.reset_scans()
        batched = ImprovedNegativeMiner(
            database,
            taxonomy,
            minsup=0.1,
            minri=0.3,
            max_candidates_in_memory=2,
        ).mine()
        assert [n.items for n in batched.negatives] == [
            n.items for n in whole.negatives
        ]
        assert batched.stats.counting_batches > 1
        assert batched.stats.data_passes > whole.stats.data_passes

    def test_pruning_toggle_does_not_change_output(self, database, taxonomy):
        pruned = ImprovedNegativeMiner(
            database, taxonomy, 0.1, 0.3, prune_taxonomy=True
        ).mine()
        unpruned = ImprovedNegativeMiner(
            database, taxonomy, 0.1, 0.3, prune_taxonomy=False
        ).mine()
        assert {n.items for n in pruned.negatives} == {
            n.items for n in unpruned.negatives
        }

    def test_stats_candidate_accounting(self, database, taxonomy):
        output = ImprovedNegativeMiner(
            database, taxonomy, 0.1, 0.3
        ).mine()
        assert output.stats.candidates_generated == len(output.candidates)
        assert output.stats.negative_itemsets == len(output.negatives)
        assert sum(output.stats.candidates_by_size.values()) == len(
            output.candidates
        )

    def test_invalid_thresholds_rejected(self, database, taxonomy):
        with pytest.raises(ConfigError):
            ImprovedNegativeMiner(database, taxonomy, 0.0, 0.5)
        with pytest.raises(ConfigError):
            ImprovedNegativeMiner(database, taxonomy, 0.1, 2.0)
        with pytest.raises(ConfigError):
            ImprovedNegativeMiner(
                database, taxonomy, 0.1, 0.5, max_candidates_in_memory=0
            )


class TestNaiveMiner:
    def test_matches_improved_output(self, database, taxonomy):
        improved = ImprovedNegativeMiner(
            database, taxonomy, 0.1, 0.3
        ).mine()
        database.reset_scans()
        naive = NaiveNegativeMiner(database, taxonomy, 0.1, 0.3).mine()
        assert {n.items for n in naive.negatives} == {
            n.items for n in improved.negatives
        }
        assert dict(naive.large_itemsets.items()) == dict(
            improved.large_itemsets.items()
        )

    def test_makes_more_passes_than_improved(self, database, taxonomy):
        improved = ImprovedNegativeMiner(
            database, taxonomy, 0.1, 0.3
        ).mine()
        database.reset_scans()
        naive = NaiveNegativeMiner(database, taxonomy, 0.1, 0.3).mine()
        levels = naive.large_itemsets.max_size
        # With only 2 levels the schedules tie; Naive can never be cheaper.
        assert naive.stats.data_passes >= improved.stats.data_passes
        # Roughly 2 per level: n level passes + (n-1) candidate passes.
        assert naive.stats.data_passes >= 2 * levels - 1

    def test_expected_supports_match_improved(self, database, taxonomy):
        improved = ImprovedNegativeMiner(
            database, taxonomy, 0.1, 0.3
        ).mine()
        naive = NaiveNegativeMiner(database, taxonomy, 0.1, 0.3).mine()
        improved_map = {
            n.items: n.expected_support for n in improved.negatives
        }
        for negative in naive.negatives:
            assert negative.expected_support == pytest.approx(
                improved_map[negative.items]
            )


class TestFigure3Literal:
    def test_literal_predicate_differs(self, taxonomy):
        # An itemset with low absolute support but low expectation too:
        # the literal predicate admits it, the deviation predicate does
        # not necessarily — build a case where the two disagree.
        cola = taxonomy.id_of("cola")
        lemonade = taxonomy.id_of("lemonade")
        salted = taxonomy.id_of("salted")
        paprika = taxonomy.id_of("paprika")
        rows = (
            [[cola, salted]] * 45
            + [[lemonade, paprika]] * 45
            + [[cola, paprika]] * 5
            + [[lemonade, salted]] * 5
        )
        database = TransactionDatabase(rows)
        deviation = ImprovedNegativeMiner(
            database, taxonomy, 0.2, 0.5, figure3_literal=False
        ).mine()
        database.reset_scans()
        literal = ImprovedNegativeMiner(
            database, taxonomy, 0.2, 0.5, figure3_literal=True
        ).mine()
        literal_items = {n.items for n in literal.negatives}
        for negative in literal.negatives:
            assert negative.actual_support < 0.2 * 0.5
        # Both find the planted anti-pairs.
        assert (min(cola, paprika), max(cola, paprika)) in literal_items
        assert deviation.negatives  # deviation predicate finds some too


class TestNegativeItemsetType:
    def test_deviation_property(self):
        negative = NegativeItemset(
            items=(1, 2),
            expected_support=0.3,
            actual_support=0.1,
            source=(5, 6),
            case="children",
        )
        assert negative.deviation == pytest.approx(0.2)


class TestMiningStatsSummary:
    def test_reports_cache_hit_rate_and_pass_ratio(self):
        stats = MiningStats(
            data_passes=4,
            physical_passes=1,
            cache_hits=3,
            cache_misses=1,
            cache_bytes=1024,
        )
        assert stats.cache_hit_rate == pytest.approx(0.75)
        text = stats.summary()
        assert "data passes     : 4" in text
        assert "physical passes : 1" in text
        assert "physical/logical: 0.25" in text
        assert "3/4 hits (75%)" in text
        assert "1024 bytes" in text

    def test_omits_cache_line_when_cache_unused(self):
        text = MiningStats(data_passes=3, physical_passes=3).summary()
        assert "hits" not in text
        assert "physical/logical: 1.00" in text

    def test_zero_passes_no_ratio_line(self):
        text = MiningStats().summary()
        assert "physical/logical" not in text
        assert MiningStats().cache_hit_rate == 0.0


class TestCachedEngineMiners:
    def test_improved_cached_matches_bitmap(self, database, taxonomy):
        expected = ImprovedNegativeMiner(
            database, taxonomy, 0.15, 0.4
        ).mine()
        database.reset_scans()
        cached = ImprovedNegativeMiner(
            database, taxonomy, 0.15, 0.4,
            session=MiningSession(database, taxonomy, "cached"),
        ).mine()
        assert cached.negatives == expected.negatives
        assert dict(cached.large_itemsets.items()) == dict(
            expected.large_itemsets.items()
        )
        # Same logical pass schedule, fewer physical reads.
        assert cached.stats.data_passes == expected.stats.data_passes
        assert cached.stats.physical_passes < cached.stats.data_passes
        assert cached.stats.cache_hits > 0

    def test_naive_cached_matches_bitmap(self, database, taxonomy):
        expected = NaiveNegativeMiner(database, taxonomy, 0.15, 0.4).mine()
        database.reset_scans()
        cached = NaiveNegativeMiner(
            database, taxonomy, 0.15, 0.4,
            session=MiningSession(database, taxonomy, "cached"),
        ).mine()
        assert cached.negatives == expected.negatives
        assert cached.stats.data_passes == expected.stats.data_passes
        assert cached.stats.physical_passes < cached.stats.data_passes

    def test_use_cache_false_rebuilds_every_pass(self, database, taxonomy):
        run = ImprovedNegativeMiner(
            database, taxonomy, 0.15, 0.4,
            session=MiningSession(
                database, taxonomy, "cached", use_cache=False
            ),
        ).mine()
        assert run.stats.cache_hits == 0
        assert run.stats.cache_misses == run.stats.data_passes
