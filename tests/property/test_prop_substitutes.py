"""Property-based tests for substitute-knowledge candidate generation."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.substitutes import (
    SubstituteGroups,
    generate_substitute_candidates,
    merge_candidate_sets,
)
from repro.mining.itemset_index import LargeItemsetIndex

ITEMS = list(range(1, 13))


@st.composite
def scenarios(draw):
    seed = draw(st.integers(min_value=0, max_value=100_000))
    rng = random.Random(seed)
    index = LargeItemsetIndex()
    large_items = [
        item for item in ITEMS if rng.random() < 0.7
    ] or [ITEMS[0]]
    for item in large_items:
        index.add((item,), rng.uniform(0.05, 0.8))
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        if len(large_items) < 2:
            break
        first, second = rng.sample(large_items, 2)
        pair = tuple(sorted((first, second)))
        bound = min(index.support((first,)), index.support((second,)))
        index.add(pair, rng.uniform(0.01, bound))
    group_count = draw(st.integers(min_value=1, max_value=3))
    groups = []
    for _ in range(group_count):
        size = rng.randint(2, 4)
        groups.append(rng.sample(ITEMS, size))
    return index, SubstituteGroups(groups)


@settings(max_examples=80, deadline=None)
@given(scenarios(), st.sampled_from([0.02, 0.05]),
       st.sampled_from([0.3, 0.6]))
def test_candidate_invariants(scenario, minsup, minri):
    index, substitutes = scenario
    candidates = generate_substitute_candidates(
        index, substitutes, minsup, minri
    )
    for items, candidate in candidates.items():
        # Not an existing large itemset; canonical; source size kept.
        assert items not in index
        assert items == tuple(sorted(set(items)))
        assert len(items) == len(candidate.source)
        assert candidate.case == "substitutes"
        # Every member is a large 1-itemset.
        assert all(index.is_large((item,)) for item in items)
        # Expectation threshold respected.
        assert candidate.expected_support >= minsup * minri - 1e-12
        # Exactly one item was replaced (max_replacements default 1) and
        # the new item is a declared substitute of the replaced one.
        replaced_new = set(items) - set(candidate.source)
        replaced_old = set(candidate.source) - set(items)
        assert len(replaced_new) == 1 and len(replaced_old) == 1
        new_item = next(iter(replaced_new))
        old_item = next(iter(replaced_old))
        assert new_item in substitutes.substitutes_of(old_item)
        # Expectation reproducible from the recorded source.
        rebuilt = index.support(candidate.source) * (
            index.support((new_item,)) / index.support((old_item,))
        )
        assert abs(candidate.expected_support - rebuilt) < 1e-9


@settings(max_examples=80, deadline=None)
@given(scenarios(), st.sampled_from([0.02, 0.05]))
def test_merge_keeps_max_expectation(scenario, minsup):
    index, substitutes = scenario
    first = generate_substitute_candidates(
        index, substitutes, minsup, 0.3
    )
    second = generate_substitute_candidates(
        index, substitutes, minsup, 0.6
    )
    merged = merge_candidate_sets(first, second)
    assert set(merged) == set(first) | set(second)
    for items, candidate in merged.items():
        expectations = [
            source[items].expected_support
            for source in (first, second)
            if items in source
        ]
        assert candidate.expected_support == max(expectations)


@settings(max_examples=40, deadline=None)
@given(scenarios(), st.integers(min_value=1, max_value=3))
def test_replacement_cap_monotone(scenario, cap):
    """Raising max_replacements can only add candidates."""
    index, substitutes = scenario
    smaller = generate_substitute_candidates(
        index, substitutes, 0.02, 0.3, max_replacements=cap
    )
    larger = generate_substitute_candidates(
        index, substitutes, 0.02, 0.3, max_replacements=cap + 1
    )
    assert set(smaller) <= set(larger)


def test_oracle_equivalence_small():
    """Exhaustive check on one fixed scenario."""
    index = LargeItemsetIndex(
        {
            (1,): 0.5, (2,): 0.4, (3,): 0.3, (4,): 0.6,
            (1, 4): 0.3, (2, 3): 0.2,
        }
    )
    substitutes = SubstituteGroups([[1, 2], [3, 4]])
    candidates = generate_substitute_candidates(
        index, substitutes, 0.05, 0.5
    )
    expected = {}
    for source in ((1, 4), (2, 3)):
        base = index.support(source)
        for position, item in enumerate(source):
            for partner in substitutes.substitutes_of(item):
                new_items = list(source)
                new_items[position] = partner
                candidate = tuple(sorted(set(new_items)))
                if len(candidate) != 2 or candidate in index:
                    continue
                value = base * (
                    index.support((partner,)) / index.support((item,))
                )
                if value >= 0.025:
                    expected[candidate] = max(
                        expected.get(candidate, 0.0), value
                    )
    assert {
        items: candidate.expected_support
        for items, candidate in candidates.items()
    } == dict(
        (items, value) for items, value in expected.items()
    )
