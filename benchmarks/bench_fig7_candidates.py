"""E3 — Figure 7: negative candidates per itemset size, fan-out 9 vs 3.

The paper normalizes the number of generated negative candidates by the
number of generalized large itemsets and plots it against itemset size for
both data sets, confirming that candidates increase with fan-out and that
the per-itemset count is largest for small sizes.

Run directly for the table::

    python -m benchmarks.bench_fig7_candidates
"""

from collections import Counter

import pytest

from repro.core.candidates import generate_negative_candidates
from repro.mining.generalized import mine_generalized

from .common import MINRI, dataset, support_sweep

MINSUP = support_sweep()[0]


def candidate_profile(kind: str):
    """Candidates and large itemsets per size for one dataset."""
    data = dataset(kind)
    index = mine_generalized(data.database, data.taxonomy, MINSUP)
    candidates = generate_negative_candidates(
        index, data.taxonomy, MINSUP, MINRI
    )
    candidate_sizes = Counter(len(items) for items in candidates)
    large_sizes = Counter(
        {size: len(index.of_size(size)) for size in index.sizes}
    )
    return data, index, candidates, candidate_sizes, large_sizes


@pytest.mark.parametrize("kind", ["short", "tall"])
def test_fig7_candidate_generation(benchmark, kind):
    data = dataset(kind)
    index = mine_generalized(data.database, data.taxonomy, MINSUP)

    def generate():
        return generate_negative_candidates(
            index, data.taxonomy, MINSUP, MINRI
        )

    candidates = benchmark.pedantic(generate, rounds=1, iterations=1)
    sizes = Counter(len(items) for items in candidates)
    benchmark.extra_info.update(
        total_candidates=len(candidates),
        by_size={size: sizes[size] for size in sorted(sizes)},
        fanout=data.taxonomy.fanout(),
    )


def main() -> None:
    print(
        "=== Figure 7: negative candidates (normalized by #large "
        f"itemsets) at MinSup={MINSUP} ==="
    )
    profiles = {}
    for kind in ("short", "tall"):
        data, index, candidates, candidate_sizes, large_sizes = (
            candidate_profile(kind)
        )
        profiles[kind] = (data, candidate_sizes, large_sizes)
        print(
            f"\n{kind}: fan-out={data.taxonomy.fanout():.1f}, "
            f"large itemsets={len(index)}, candidates={len(candidates)}"
        )
        print(f"{'size':>6} {'#large':>8} {'#cands':>8} {'normalized':>11}")
        for size in sorted(set(candidate_sizes) | set(large_sizes)):
            large = large_sizes.get(size, 0)
            cands = candidate_sizes.get(size, 0)
            normalized = cands / large if large else float("nan")
            print(f"{size:>6} {large:>8} {cands:>8} {normalized:>11.2f}")

    short_norm = _normalized_at_two(profiles["short"])
    tall_norm = _normalized_at_two(profiles["tall"])
    print(
        "\nshape check: normalized candidates at size 2 — "
        f"short(f=9)={short_norm:.2f} vs tall(f=3)={tall_norm:.2f} "
        "(paper: grows with fan-out)"
    )


def _normalized_at_two(profile):
    _data, candidate_sizes, large_sizes = profile
    large = large_sizes.get(2, 0)
    return candidate_sizes.get(2, 0) / large if large else 0.0


if __name__ == "__main__":
    main()
