"""The compiled rule index: mined rules behind antecedent postings.

A :class:`RuleIndex` freezes a mined rule set — strong negative rules
(:class:`~repro.core.rulegen.NegativeRule`) and positive rules
(:class:`~repro.mining.rules.AssociationRule`) — into the form the
online scorer needs:

* every rule gets a stable integer *slot* in a deterministic global
  order (negatives by descending RI first, then positives by descending
  confidence), so match results are reproducible and cache keys cheap;
* an inverted index maps each antecedent item to the sorted slots of
  the rules whose antecedent contains it (the serving-side sibling of
  the large-itemset hash table of paper §2.4 — built for subset probes
  instead of exact lookups);
* the taxonomy rides along, because basket items must fire rules on
  their ancestors, and so (optionally) does the large-itemset index,
  for support lookups and on-target selective generation at serve time.

The whole index serializes to one JSON document
(:meth:`RuleIndex.save` / :meth:`RuleIndex.load`, schema-versioned via
:mod:`repro.serialize`), so a rule set is mined once and served forever.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path

from ..core.rulegen import NegativeRule
from ..errors import ConfigError, VersionSkewError
from ..itemset import Itemset
from ..mining.itemset_index import LargeItemsetIndex
from ..mining.rules import AssociationRule
from ..serialize import check_payload, header
from ..taxonomy.tree import Taxonomy

#: Rule kinds as stored in :class:`IndexedRule` and payloads.
KIND_NEGATIVE = "negative"
KIND_POSITIVE = "positive"

_EMPTY: tuple[int, ...] = ()

#: Identity of a compiled rule across index versions: what a delta's
#: ``removed`` list names, and what links an old slot to its new slot
#: after :meth:`RuleIndex.apply_delta`. Two rules with the same key are
#: the *same* rule (possibly with updated strength statistics).
RuleKey = tuple[str, Itemset, Itemset]


def rule_key(rule: NegativeRule | AssociationRule) -> RuleKey:
    """The cross-version identity ``(kind, antecedent, consequent)``."""
    kind = KIND_NEGATIVE if isinstance(rule, NegativeRule) else KIND_POSITIVE
    return (kind, rule.antecedent, rule.consequent)


@dataclass(frozen=True, slots=True)
class IndexedRule:
    """One compiled rule: its slot, kind, and the original rule object."""

    slot: int
    kind: str
    rule: NegativeRule | AssociationRule

    @property
    def antecedent(self) -> Itemset:
        return self.rule.antecedent

    @property
    def consequent(self) -> Itemset:
        return self.rule.consequent


def _negative_order(rule: NegativeRule):
    return (-rule.ri, rule.antecedent, rule.consequent)


def _positive_order(rule: AssociationRule):
    return (-rule.confidence, -rule.support, rule.antecedent,
            rule.consequent)


class RuleIndex:
    """Compiled positive + negative rules keyed by antecedent items.

    Parameters
    ----------
    negative_rules, positive_rules:
        The mined rule set. Order does not matter — rules are re-sorted
        into the canonical slot order at compile time.
    taxonomy:
        The taxonomy baskets are scored under (items fire rules on
        their ancestors). ``None`` compiles a flat index.
    large_itemsets:
        Optional large-itemset index to carry along (support lookups,
        serve-time diagnostics). Persisted with the rules.
    version:
        Monotonically increasing index version. A fresh compile starts a
        lineage (``repro compile`` writes version 1); every applied
        :meth:`apply_delta` bumps it by at least one. Deltas carry the
        version they were diffed against, so applying one to the wrong
        base fails with :class:`~repro.errors.VersionSkewError` instead
        of silently mis-applying.
    """

    __slots__ = ("_rules", "_postings", "_taxonomy", "_itemsets",
                 "_negative_count", "_version")

    def __init__(
        self,
        negative_rules: Iterable[NegativeRule] = (),
        positive_rules: Iterable[AssociationRule] = (),
        taxonomy: Taxonomy | None = None,
        large_itemsets: LargeItemsetIndex | None = None,
        version: int = 0,
    ) -> None:
        if not isinstance(version, int) or isinstance(version, bool) \
                or version < 0:
            raise ConfigError(
                f"index version must be a non-negative integer, "
                f"got {version!r}"
            )
        negatives = sorted(negative_rules, key=_negative_order)
        positives = sorted(positive_rules, key=_positive_order)
        compiled: list[IndexedRule] = []
        for rule in negatives:
            compiled.append(IndexedRule(len(compiled), KIND_NEGATIVE, rule))
        for rule in positives:
            compiled.append(IndexedRule(len(compiled), KIND_POSITIVE, rule))
        postings: dict[int, list[int]] = {}
        for entry in compiled:
            if not entry.antecedent:
                raise ConfigError(
                    "cannot index a rule with an empty antecedent"
                )
            for item in entry.antecedent:
                postings.setdefault(item, []).append(entry.slot)
        self._rules: tuple[IndexedRule, ...] = tuple(compiled)
        # Slots were appended in increasing order, so each posting list
        # is already sorted.
        self._postings: dict[int, tuple[int, ...]] = {
            item: tuple(slots) for item, slots in postings.items()
        }
        self._taxonomy = taxonomy
        self._itemsets = large_itemsets
        self._negative_count = len(negatives)
        self._version = version

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def rules(self) -> tuple[IndexedRule, ...]:
        """All compiled rules in slot order (negatives first)."""
        return self._rules

    def rule(self, slot: int) -> IndexedRule:
        """The compiled rule at *slot*."""
        return self._rules[slot]

    def postings(self, item: int) -> tuple[int, ...]:
        """Slots of the rules whose antecedent contains *item*."""
        return self._postings.get(item, _EMPTY)

    @property
    def taxonomy(self) -> Taxonomy | None:
        return self._taxonomy

    @property
    def large_itemsets(self) -> LargeItemsetIndex | None:
        return self._itemsets

    @property
    def version(self) -> int:
        """The index's position in its delta lineage (0 = unversioned)."""
        return self._version

    @property
    def negative_count(self) -> int:
        return self._negative_count

    @property
    def positive_count(self) -> int:
        return len(self._rules) - self._negative_count

    def __len__(self) -> int:
        return len(self._rules)

    def __repr__(self) -> str:
        return (
            f"RuleIndex(version={self._version}, "
            f"negative={self.negative_count}, "
            f"positive={self.positive_count}, "
            f"items={len(self._postings)}, "
            f"taxonomy={'yes' if self._taxonomy is not None else 'no'})"
        )

    # ------------------------------------------------------------------
    # Delta application
    # ------------------------------------------------------------------
    def slots_by_key(self) -> dict[RuleKey, int]:
        """Map each rule's cross-version identity to its current slot."""
        return {
            rule_key(entry.rule): entry.slot for entry in self._rules
        }

    def apply_delta(self, delta) -> "RuleIndex":
        """A new index with *delta* applied; bit-identical to recompiling.

        *delta* is a :class:`repro.stream.delta.RuleIndexDelta` (duck-
        typed: anything with the same attributes works). The result is
        byte-for-byte the index a fresh compile of the post-delta rule
        set would produce — the property the streaming watcher's delta
        pushes rely on, and what ``tests/property/test_prop_delta.py``
        pins.

        Raises
        ------
        VersionSkewError
            When the delta was diffed against a different index version,
            when it does not advance the version, or when its rule edits
            do not apply cleanly (a removed/changed rule that is not in
            the index, an added rule that already is) — all symptoms of
            applying a delta to the wrong base.
        """
        if delta.from_version != self._version:
            raise VersionSkewError(
                f"delta applies to index version {delta.from_version}, "
                f"but the installed index is version {self._version}"
            )
        if delta.to_version <= self._version:
            raise VersionSkewError(
                f"delta target version {delta.to_version} does not "
                f"advance the installed version {self._version}"
            )
        present = {rule_key(entry.rule) for entry in self._rules}
        drop = set(delta.removed)
        drop.update(rule_key(rule) for rule in delta.changed)
        missing = drop - present
        if missing:
            raise VersionSkewError(
                f"delta removes/updates {len(missing)} rule(s) not in "
                f"the installed index (first: {sorted(missing)[0]!r})"
            )
        colliding = [
            key for key in map(rule_key, delta.added) if key in present
        ]
        if colliding:
            raise VersionSkewError(
                f"delta adds {len(colliding)} rule(s) already in the "
                f"installed index (first: {colliding[0]!r})"
            )
        negatives: list[NegativeRule] = []
        positives: list[AssociationRule] = []
        for entry in self._rules:
            if rule_key(entry.rule) in drop:
                continue
            if entry.kind == KIND_NEGATIVE:
                negatives.append(entry.rule)
            else:
                positives.append(entry.rule)
        for rule in (*delta.added, *delta.changed):
            if isinstance(rule, NegativeRule):
                negatives.append(rule)
            else:
                positives.append(rule)
        return RuleIndex(
            negative_rules=negatives,
            positive_rules=positives,
            taxonomy=(
                delta.taxonomy if delta.taxonomy_changed else self._taxonomy
            ),
            large_itemsets=(
                delta.large_itemsets
                if delta.itemsets_changed
                else self._itemsets
            ),
            version=delta.to_version,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """A JSON-able dict of the whole index (rules + taxonomy)."""
        payload: dict = {
            **header("rule-index"),
            "index_version": self._version,
            "rules": [entry.rule.as_dict() for entry in self._rules],
        }
        if self._taxonomy is not None:
            payload["taxonomy"] = _taxonomy_payload(self._taxonomy)
        if self._itemsets is not None:
            payload["large_itemsets"] = self._itemsets.to_payload()
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "RuleIndex":
        """Rebuild an index from :meth:`to_payload` output.

        The postings are recompiled rather than persisted — they are
        derived data, and recompiling keeps the file format independent
        of the in-memory layout.
        """
        check_payload(payload, "rule-index")
        negatives: list[NegativeRule] = []
        positives: list[AssociationRule] = []
        for entry in payload["rules"]:
            if entry.get("kind") == "negative-rule":
                negatives.append(NegativeRule.from_dict(entry))
            else:
                positives.append(AssociationRule.from_dict(entry))
        taxonomy = None
        if "taxonomy" in payload:
            taxonomy = _taxonomy_from_payload(payload["taxonomy"])
        itemsets = None
        if "large_itemsets" in payload:
            itemsets = LargeItemsetIndex.from_payload(
                payload["large_itemsets"]
            )
        return cls(
            negative_rules=negatives,
            positive_rules=positives,
            taxonomy=taxonomy,
            large_itemsets=itemsets,
            # Indexes written before the streaming subsystem carry no
            # version counter; they load as version 0 (a fresh lineage).
            version=payload.get("index_version", 0),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_payload())

    @classmethod
    def from_json(cls, text: str) -> "RuleIndex":
        return cls.from_payload(json.loads(text))

    def save(self, path: str | Path) -> None:
        """Write the index as one JSON document at *path*."""
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "RuleIndex":
        """Read an index written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())


def _taxonomy_payload(taxonomy: Taxonomy) -> dict:
    """Serialize a taxonomy: parent edges, names, and the full node set.

    The node list makes the round-trip exact even for isolated items
    (valid leaves with neither parent nor children), which the parent
    map alone cannot represent.
    """
    return {
        **header("taxonomy"),
        "parents": [
            [child, parent]
            for child, parent in sorted(taxonomy.parent_map().items())
        ],
        "names": [
            [node, name]
            for node, name in sorted(taxonomy.names_map().items())
        ],
        "nodes": list(taxonomy.nodes),
    }


def _taxonomy_from_payload(payload: dict) -> Taxonomy:
    check_payload(payload, "taxonomy")
    return Taxonomy(
        parents={child: parent for child, parent in payload["parents"]},
        names={node: name for node, name in payload["names"]},
        extra_roots=payload["nodes"],
    )
