"""Unit tests for shard planning and cheap shard transport."""

import pickle

import pytest

from repro.data.database import TransactionDatabase
from repro.data.filedb import FileBackedDatabase
from repro.errors import ConfigError
from repro.parallel.shards import Shard, plan_shards, shard_bounds

ROWS = [(1, 2), (2, 3), (1, 3), (4,), (1, 2, 3), (5, 6), (2,), (3, 4)]


class TestShardBounds:
    def test_covers_total_exactly(self):
        bounds = shard_bounds(10, 4)
        assert bounds[0] == 0 and bounds[-1] == 10
        assert bounds == sorted(bounds)

    def test_matches_partition_rounding(self):
        # Same rule as repro.mining.partition phase 1.
        assert shard_bounds(10, 4) == [
            round(part * 10 / 4) for part in range(5)
        ]

    def test_rejects_zero_parts(self):
        with pytest.raises(ConfigError):
            shard_bounds(10, 0)


class TestPlanShards:
    def test_covers_every_row_once_in_order(self):
        shards = plan_shards(ROWS, n_shards=3)
        reassembled = [row for shard in shards for row in shard.rows]
        assert reassembled == ROWS
        assert shards[0].start == 0
        assert shards[-1].stop == len(ROWS)
        for left, right in zip(shards, shards[1:]):
            assert left.stop == right.start

    def test_shard_rows_takes_precedence(self):
        shards = plan_shards(ROWS, shard_rows=3, n_shards=1)
        assert len(shards) == 3  # ceil(8 / 3)
        assert all(1 <= shard.row_count <= 4 for shard in shards)

    def test_n_shards_clamped_to_row_count(self):
        shards = plan_shards([(1,), (2,)], n_shards=10)
        assert len(shards) == 2
        assert all(shard.row_count == 1 for shard in shards)

    def test_default_is_one_shard(self):
        shards = plan_shards(ROWS)
        assert len(shards) == 1
        assert shards[0].rows == tuple(ROWS)

    def test_empty_source_plans_nothing(self):
        assert plan_shards([]) == []

    def test_rejects_nonsense_source(self):
        with pytest.raises(ConfigError):
            plan_shards(42)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigError):
            plan_shards(ROWS, shard_rows=0)
        with pytest.raises(ConfigError):
            plan_shards(ROWS, n_shards=-1)


class TestPassAccounting:
    def test_database_plan_counts_one_parent_pass(self):
        database = TransactionDatabase(ROWS)
        plan_shards(database, n_shards=4)
        assert database.scans == 1

    def test_worker_local_scans_leave_parent_untouched(self):
        database = TransactionDatabase(ROWS)
        shards = plan_shards(database, n_shards=2)
        for shard in shards:
            local = TransactionDatabase.from_canonical_rows(shard.rows)
            list(local.scan())
            list(local.scan())
            assert local.scans == 2
        assert database.scans == 1

    def test_file_backed_database_shards(self, tmp_path):
        path = tmp_path / "data.basket"
        path.write_text("1 2\n2 3\n1 3\n4\n")
        database = FileBackedDatabase(path)
        shards = plan_shards(database, n_shards=2)
        assert database.scans == 1
        assert [row for shard in shards for row in shard.rows] == [
            (1, 2), (2, 3), (1, 3), (4,)
        ]

    def test_plain_iterable_needs_no_scan(self):
        shards = plan_shards(iter(ROWS), n_shards=2)
        assert sum(shard.row_count for shard in shards) == len(ROWS)


class TestShardTransport:
    def test_metadata(self):
        shard = Shard(2, 5, (ROWS[2], ROWS[3], ROWS[4]))
        assert shard.row_count == len(shard) == 3
        assert shard.items == frozenset({1, 2, 3, 4})

    def test_pickle_round_trip_preserves_rows_verbatim(self):
        shard = plan_shards(ROWS, n_shards=2)[0]
        clone = pickle.loads(pickle.dumps(shard))
        assert clone == shard
        assert clone.rows == shard.rows
        # Rows stay canonical tuples — no re-canonicalization required.
        assert all(isinstance(row, tuple) for row in clone.rows)

    def test_pickle_drops_cached_item_universe(self):
        shard = Shard(0, 2, (ROWS[0], ROWS[1]))
        _ = shard.items  # populate the cache
        clone = pickle.loads(pickle.dumps(shard))
        assert clone._items is None  # rebuilt lazily on the other side
        assert clone.items == shard.items

    def test_repr(self):
        assert "rows=2" in repr(Shard(0, 2, (ROWS[0], ROWS[1])))
