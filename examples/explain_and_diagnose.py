"""Explaining rules and diagnosing the taxonomy before trusting them.

Two practitioner workflows on top of the miner:

1. **Explanations** — for each reported rule, reconstruct the full
   derivation the paper walks through in its examples: the source large
   itemset, the taxonomy case, the expected-support formula with numbers,
   and the RI arithmetic (:mod:`repro.core.explain`).
2. **Taxonomy diagnostics** — before believing expectation-based rules,
   check the taxonomy's granularity (Section 2.1.3's warning) and whether
   the data actually spreads evenly over each category's children
   (:mod:`repro.taxonomy.analysis`).

Run with::

    python examples/explain_and_diagnose.py
"""

from repro import TransactionDatabase, mine_negative_rules
from repro.core.explain import explain_result_rule
from repro.measures import surprise_bits
from repro.taxonomy import (
    category_balance,
    format_profile,
    granularity_report,
    profile,
    taxonomy_from_nested,
)


def build_dataset():
    taxonomy = taxonomy_from_nested(
        {
            "Beverages": {
                "Carbonated": [],
                "NonCarbonated": {
                    "Bottled juices": [],
                    "Bottled water": ["Evian", "Perrier"],
                },
            },
            "Desserts": {
                "Ice creams": [],
                "Frozen yogurt": ["Bryers", "Healthy Choice"],
            },
        }
    )
    groups = [
        (("Bryers", "Evian"), 1200),
        (("Bryers", "Perrier"), 50),
        (("Bryers",), 750),
        (("Healthy Choice", "Evian"), 420),
        (("Healthy Choice", "Perrier"), 250),
        (("Healthy Choice",), 330),
        (("Evian",), 380),
        (("Perrier",), 500),
        (("Carbonated",), 6120),
    ]
    rows = [
        [taxonomy.id_of(name) for name in names]
        for names, count in groups
        for _ in range(count)
    ]
    return taxonomy, TransactionDatabase(rows)


def main() -> None:
    taxonomy, database = build_dataset()

    print("=== taxonomy diagnostics ===")
    print(format_profile(profile(taxonomy)))
    findings = granularity_report(taxonomy, coarse_fanout=3)
    if findings:
        for finding in findings:
            print(
                f"  coarse category {taxonomy.name_of(finding.category)}: "
                f"{finding.fanout} children "
                "(expected child share "
                f"{finding.expected_child_share:.0%})"
            )
    else:
        print("  no coarse categories — fine-granularity taxonomy")
    counts = database.item_counts()
    water = taxonomy.id_of("Bottled water")
    yogurt = taxonomy.id_of("Frozen yogurt")
    for category in (water, yogurt):
        balance = category_balance(taxonomy, counts, category)
        print(
            f"  balance of {taxonomy.name_of(category)!r} children: "
            f"{balance:.2f} (1 = uniformity assumption holds exactly)"
        )

    print()
    print("=== mined rules, with derivations ===")
    result = mine_negative_rules(database, taxonomy, minsup=0.04, minri=0.5)
    brand_rules = [
        rule
        for rule in result.rules
        if taxonomy.id_of("Carbonated") not in rule.items
    ]
    for rule in brand_rules:
        print()
        print(
            explain_result_rule(
                rule,
                result.negative_itemsets,
                result.large_itemsets,
                taxonomy,
            )
        )
        bits = surprise_bits(rule.expected_support, rule.actual_support)
        print(f"  information gained: {bits:.4f} bits/transaction")


if __name__ == "__main__":
    main()
