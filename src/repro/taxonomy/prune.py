"""Taxonomy pruning: "delete all small 1-itemsets from the taxonomy".

The Improved algorithm's first optimization (Section 2.2.2) shrinks the
taxonomy to the nodes whose 1-itemset support meets MinSup before generating
negative candidates. Because generalized support is monotone along the
taxonomy (a category is supported by every transaction that supports any of
its descendants), a small node can never have a large descendant — so
removing every small node removes whole subtrees and the result is still a
well-formed forest.

The paper motivates this as "reducing the fanout and hence the candidates
generated": candidate items are drawn from children/sibling lists, and after
pruning those lists contain only items that could participate in a rule
(both antecedent and consequent of a rule must be large).
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import TaxonomyError
from .tree import Taxonomy


def restrict_to_items(taxonomy: Taxonomy, keep: Iterable[int]) -> Taxonomy:
    """Return a copy of *taxonomy* containing only the nodes in *keep*.

    Parameters
    ----------
    taxonomy:
        The full taxonomy.
    keep:
        Node ids to retain — typically the large 1-itemsets. Ids not present
        in the taxonomy raise :class:`TaxonomyError` (they indicate a
        bookkeeping bug upstream).

    Notes
    -----
    When support counting is consistent, *keep* is ancestor-closed and every
    kept node keeps its original parent. Defensively, a kept node whose
    parent was pruned is re-rooted (becomes a root), which preserves the
    forest invariant even for inconsistent inputs.
    """
    keep_set = set(keep)
    for node in keep_set:
        if node not in taxonomy:
            raise TaxonomyError(f"cannot keep unknown node {node}")

    parents: dict[int, int] = {}
    extra_roots: list[int] = []
    names = taxonomy.names_map()
    for node in keep_set:
        node_parent = taxonomy.parent(node)
        if node_parent is not None and node_parent in keep_set:
            parents[node] = node_parent
        else:
            extra_roots.append(node)
    kept_names = {node: names[node] for node in keep_set if node in names}
    return Taxonomy(parents, names=kept_names, extra_roots=extra_roots)


def prune_small_items(
    taxonomy: Taxonomy, supports: dict[int, float], minsup: float
) -> Taxonomy:
    """Remove every node whose 1-itemset support is below *minsup*.

    *supports* maps node id to fractional support; nodes absent from the
    mapping are treated as support 0 (they never reached the counting phase,
    which means they were already known small).
    """
    keep = [
        node
        for node in taxonomy.nodes
        if supports.get(node, 0.0) >= minsup
    ]
    return restrict_to_items(taxonomy, keep)
