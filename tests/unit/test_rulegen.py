"""Unit tests for negative rule generation (Figure 4)."""

import pytest

from repro.core.negmining import NegativeItemset
from repro.core.rulegen import NegativeRule, generate_negative_rules
from repro.errors import ConfigError
from repro.mining.itemset_index import LargeItemsetIndex


def negative(items, expected, actual, source=(99, 100)):
    return NegativeItemset(
        items=items,
        expected_support=expected,
        actual_support=actual,
        source=source,
        case="children",
    )


class TestPairRules:
    @pytest.fixture
    def index(self):
        return LargeItemsetIndex({(1,): 0.05, (2,): 0.20})

    def test_direction_asymmetry(self, index):
        # The paper's Perrier =/=> Bryers example: the small-support side
        # makes the better antecedent.
        rules = generate_negative_rules(
            [negative((1, 2), expected=0.04, actual=0.005)], index, 0.5
        )
        assert len(rules) == 1
        rule = rules[0]
        assert rule.antecedent == (1,)
        assert rule.consequent == (2,)
        assert rule.ri == pytest.approx((0.04 - 0.005) / 0.05)

    def test_both_directions_when_ri_allows(self, index):
        rules = generate_negative_rules(
            [negative((1, 2), expected=0.04, actual=0.005)], index, 0.1
        )
        pairs = {(rule.antecedent, rule.consequent) for rule in rules}
        assert pairs == {((1,), (2,)), ((2,), (1,))}

    def test_small_side_blocks_rule(self):
        index = LargeItemsetIndex({(1,): 0.05})  # 2 is not large
        rules = generate_negative_rules(
            [negative((1, 2), 0.04, 0.0)], index, 0.1
        )
        assert rules == []

    def test_rule_metadata(self, index):
        rules = generate_negative_rules(
            [negative((1, 2), 0.04, 0.005)], index, 0.5
        )
        rule = rules[0]
        assert rule.expected_support == 0.04
        assert rule.actual_support == 0.005
        assert rule.antecedent_support == 0.05
        assert rule.consequent_support == 0.20
        assert rule.items == (1, 2)


class TestLargerItemsets:
    @pytest.fixture
    def index(self):
        return LargeItemsetIndex(
            {
                (1,): 0.2,
                (2,): 0.2,
                (3,): 0.2,
                (1, 2): 0.1,
                (1, 3): 0.1,
                (2, 3): 0.1,
            }
        )

    def test_all_splits_considered(self, index):
        rules = generate_negative_rules(
            [negative((1, 2, 3), expected=0.09, actual=0.0)], index, 0.05
        )
        pairs = {(rule.antecedent, rule.consequent) for rule in rules}
        assert ((1, 2), (3,)) in pairs
        assert ((1,), (2, 3)) in pairs
        assert len(pairs) == 6  # 3 single-consequent + 3 two-consequent

    def test_ri_uses_antecedent_support(self, index):
        rules = generate_negative_rules(
            [negative((1, 2, 3), 0.09, 0.0)], index, 0.05
        )
        by_split = {
            (rule.antecedent, rule.consequent): rule.ri for rule in rules
        }
        assert by_split[((1, 2), (3,))] == pytest.approx(0.09 / 0.1)
        assert by_split[((1,), (2, 3))] == pytest.approx(0.09 / 0.2)

    def test_failed_ri_prunes_superset_consequents(self, index):
        # minri chosen so single consequents pass but doubles fail:
        # single: 0.09/0.1 = 0.9 ; double: 0.09/0.2 = 0.45.
        rules = generate_negative_rules(
            [negative((1, 2, 3), 0.09, 0.0)], index, 0.5
        )
        assert all(len(rule.consequent) == 1 for rule in rules)

    def test_small_antecedent_pruning_toggle(self):
        # {2, 3} (antecedent of consequent {1}) is NOT large, but the
        # sub-antecedent {3} (for consequent {1, 2}) IS — exhaustive mode
        # must find the ((3,), (1, 2)) rule that Figure 4's pruning loses.
        index = LargeItemsetIndex(
            {
                (1,): 0.3,
                (2,): 0.3,
                (3,): 0.3,
                (1, 2): 0.1,
                (1, 3): 0.1,
            }
        )
        pruned = generate_negative_rules(
            [negative((1, 2, 3), 0.09, 0.0)], index, 0.05,
            prune_small_antecedents=True,
        )
        exhaustive = generate_negative_rules(
            [negative((1, 2, 3), 0.09, 0.0)], index, 0.05,
            prune_small_antecedents=False,
        )
        pruned_pairs = {(r.antecedent, r.consequent) for r in pruned}
        exhaustive_pairs = {(r.antecedent, r.consequent) for r in exhaustive}
        assert ((3,), (1, 2)) not in pruned_pairs
        assert ((3,), (1, 2)) in exhaustive_pairs
        assert pruned_pairs <= exhaustive_pairs


class TestOrderingAndValidation:
    def test_rules_sorted_by_ri(self):
        index = LargeItemsetIndex({(1,): 0.1, (2,): 0.4, (3,): 0.2,
                                   (4,): 0.2, (3, 4): 0.15})
        rules = generate_negative_rules(
            [
                negative((1, 2), 0.05, 0.0),
                negative((3, 4), 0.18, 0.15),
            ],
            index,
            0.01,
        )
        ri_values = [rule.ri for rule in rules]
        assert ri_values == sorted(ri_values, reverse=True)

    def test_empty_negatives(self):
        assert generate_negative_rules([], LargeItemsetIndex(), 0.5) == []

    def test_bad_minri(self):
        with pytest.raises(ConfigError):
            generate_negative_rules([], LargeItemsetIndex(), 0.0)

    def test_format_plain_and_named(self, figure2_taxonomy):
        taxonomy = figure2_taxonomy
        perrier = taxonomy.id_of("Perrier")
        bryers = taxonomy.id_of("Bryers")
        rule = NegativeRule(
            antecedent=(perrier,),
            consequent=(bryers,),
            ri=0.7,
            expected_support=0.04,
            actual_support=0.005,
            antecedent_support=0.05,
            consequent_support=0.2,
        )
        assert "=/=>" in rule.format()
        named = rule.format(taxonomy)
        assert "Perrier" in named and "Bryers" in named
