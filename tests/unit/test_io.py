"""Unit tests for basket / taxonomy file IO."""

import pytest

from repro.data.database import TransactionDatabase
from repro.data.io import (
    load_basket_file,
    load_taxonomy_file,
    save_basket_file,
    save_taxonomy_file,
)
from repro.errors import DatabaseError, TaxonomyError
from repro.taxonomy.tree import Taxonomy


class TestBasketFiles:
    def test_round_trip(self, tmp_path):
        original = TransactionDatabase([[1, 2, 3], [4], [2, 9]])
        path = tmp_path / "data.basket"
        save_basket_file(original, path)
        loaded = load_basket_file(path)
        assert list(loaded) == list(original)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "data.basket"
        path.write_text("# header\n\n1 2\n# mid\n3\n")
        loaded = load_basket_file(path)
        assert list(loaded) == [(1, 2), (3,)]

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.basket"
        path.write_text("1 2\nx y\n")
        with pytest.raises(DatabaseError, match="bad.basket:2"):
            load_basket_file(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.basket"
        path.write_text("# nothing here\n")
        with pytest.raises(DatabaseError, match="no transactions"):
            load_basket_file(path)


class TestTaxonomyFiles:
    def test_round_trip(self, tmp_path):
        original = Taxonomy(
            {1: 0, 2: 0, 3: 2},
            names={0: "root", 3: "leaf"},
            extra_roots=[9],
        )
        path = tmp_path / "tax.tsv"
        save_taxonomy_file(original, path)
        loaded = load_taxonomy_file(path)
        assert loaded.parent_map() == original.parent_map()
        assert loaded.nodes == original.nodes
        assert loaded.name_of(0) == "root"
        assert loaded.name_of(3) == "leaf"

    def test_isolated_root_round_trip(self, tmp_path):
        original = Taxonomy({}, extra_roots=[5])
        path = tmp_path / "tax.tsv"
        save_taxonomy_file(original, path)
        loaded = load_taxonomy_file(path)
        assert 5 in loaded
        assert loaded.parent(5) is None

    def test_wrong_field_count_rejected(self, tmp_path):
        path = tmp_path / "tax.tsv"
        path.write_text("1\t0\textra\ttoomuch\n")
        with pytest.raises(TaxonomyError, match="2 or 3"):
            load_taxonomy_file(path)

    def test_malformed_child_rejected(self, tmp_path):
        path = tmp_path / "tax.tsv"
        path.write_text("abc\t0\n")
        with pytest.raises(TaxonomyError, match="malformed child"):
            load_taxonomy_file(path)

    def test_malformed_parent_rejected(self, tmp_path):
        path = tmp_path / "tax.tsv"
        path.write_text("1\tzzz\n")
        with pytest.raises(TaxonomyError, match="malformed parent"):
            load_taxonomy_file(path)

    def test_names_with_spaces_survive(self, tmp_path):
        original = Taxonomy({1: 0}, names={1: "frozen yogurt"})
        path = tmp_path / "tax.tsv"
        save_taxonomy_file(original, path)
        assert load_taxonomy_file(path).name_of(1) == "frozen yogurt"
