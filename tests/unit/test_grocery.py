"""Unit tests for the curated grocery world."""

import pytest

from repro.core.api import mine_negative_rules
from repro.errors import GenerationError
from repro.synthetic.grocery import (
    DEFAULT_PERSONAS,
    Persona,
    generate_grocery_dataset,
    grocery_taxonomy,
    taxonomy_children_names,
)


class TestGroceryTaxonomy:
    def test_structure(self):
        taxonomy = grocery_taxonomy()
        cola = taxonomy.id_of("cola")
        assert taxonomy.parent(cola) == taxonomy.id_of("beverages")
        assert taxonomy.id_of("KolaRed") in taxonomy.leaves
        assert taxonomy.height == 2

    def test_all_brands_are_leaves(self):
        taxonomy = grocery_taxonomy()
        for category in ("cola", "chips", "cereal"):
            for brand in taxonomy_children_names(category):
                assert taxonomy.is_leaf(taxonomy.id_of(brand))

    def test_unknown_category_raises(self):
        with pytest.raises(GenerationError):
            taxonomy_children_names("unicorn food")


class TestGenerateGroceryDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_grocery_dataset(num_transactions=3000, seed=4)

    def test_transaction_count(self, dataset):
        assert len(dataset.database) == 3000

    def test_only_brand_leaves_in_baskets(self, dataset):
        leaves = dataset.taxonomy.leaves
        for row in dataset.database:
            assert all(item in leaves for item in row)

    def test_deterministic(self, dataset):
        again = generate_grocery_dataset(num_transactions=3000, seed=4)
        assert list(again.database) == list(dataset.database)

    def test_loyalty_shows_in_the_data(self, dataset):
        """KolaRed and KolaBlue must rarely share a basket."""
        taxonomy = dataset.taxonomy
        red, blue = taxonomy.id_of("KolaRed"), taxonomy.id_of("KolaBlue")
        both = sum(
            1 for row in dataset.database if red in row and blue in row
        )
        either = sum(
            1 for row in dataset.database if red in row or blue in row
        )
        assert either > 500
        assert both / either < 0.02

    def test_validation(self):
        with pytest.raises(GenerationError):
            generate_grocery_dataset(num_transactions=0)
        with pytest.raises(GenerationError):
            generate_grocery_dataset(personas=())
        with pytest.raises(GenerationError):
            generate_grocery_dataset(loyalty_strength=0.2)
        bad = Persona("x", weight=-1.0, categories={}, loyalties={})
        with pytest.raises(GenerationError):
            generate_grocery_dataset(personas=(bad,))


class TestMinerRecoversPlantedSignal:
    @pytest.fixture(scope="class")
    def result(self):
        dataset = generate_grocery_dataset(num_transactions=4000, seed=7)
        return dataset.taxonomy, mine_negative_rules(
            dataset.database, dataset.taxonomy, minsup=0.05, minri=0.4,
        )

    def test_loyalty_surfaces_as_cross_category_rule(self, result):
        """The paper's Example-1 structure: KolaBlue households are not
        gamers, so KolaBlue =/=> CrispWave even though cola and chips go
        together overall."""
        taxonomy, mined = result
        blue = taxonomy.id_of("KolaBlue")
        crisp = taxonomy.id_of("CrispWave")
        found = {
            (rule.antecedent, rule.consequent) for rule in mined.rules
        }
        assert ((blue,), (crisp,)) in found

    def test_same_category_sibling_pair_is_not_generable(self, result):
        """A structural property of the paper's framework: with a
        two-brand category there is no large itemset whose Cases 1-3
        replacement yields the sibling pair itself, so {KolaRed,
        KolaBlue} never becomes a candidate — loyalty must be (and is)
        detected through cross-category partners instead."""
        taxonomy, mined = result
        red, blue = taxonomy.id_of("KolaRed"), taxonomy.id_of("KolaBlue")
        pair = tuple(sorted((red, blue)))
        assert pair not in mined.candidates
        # ... even though the data screams negative association:
        both = sum(
            1
            for negative in mined.negative_itemsets
            if red in negative.items and blue in negative.items
        )
        assert both == 0

    def test_personas_recorded(self):
        dataset = generate_grocery_dataset(num_transactions=10, seed=1)
        assert dataset.personas == DEFAULT_PERSONAS
