"""Run every benchmark's standalone table in sequence.

Produces the complete paper-vs-measured evidence in one go::

    python -m benchmarks.run_all

Equivalent to invoking each ``python -m benchmarks.bench_*`` module; used
to refresh EXPERIMENTS.md.
"""

from __future__ import annotations

import time

from . import (
    bench_ablation_counting,
    bench_ablation_substitutes,
    bench_ablation_filedb,
    bench_ablation_miners,
    bench_ablation_estimate,
    bench_ablation_generalized,
    bench_ablation_memory,
    bench_ablation_passes,
    bench_ablation_pruning,
    bench_engine_matrix,
    bench_fig5_short,
    bench_fig6_tall,
    bench_fig7_candidates,
    bench_large_itemset_counts,
    bench_table12_example,
    bench_vertical_cache,
)

MODULES = [
    ("E1 Figure 5", bench_fig5_short),
    ("E2 Figure 6", bench_fig6_tall),
    ("E3 Figure 7", bench_fig7_candidates),
    ("E4 Tables 1-2", bench_table12_example),
    ("E5 itemset counts", bench_large_itemset_counts),
    ("A1 counting engines", bench_ablation_counting),
    ("A2 generalized miners", bench_ablation_generalized),
    ("A3 taxonomy pruning", bench_ablation_pruning),
    ("A4 candidate estimate", bench_ablation_estimate),
    ("A5 memory batching", bench_ablation_memory),
    ("A6 pass accounting", bench_ablation_passes),
    ("A7 disk-backed passes", bench_ablation_filedb),
    ("A8 frequent miners", bench_ablation_miners),
    ("A9 substitute knowledge", bench_ablation_substitutes),
    ("E8 vertical cache", bench_vertical_cache),
    ("E9 engine matrix", bench_engine_matrix),
]


def main() -> None:
    overall = time.perf_counter()
    for label, module in MODULES:
        print()
        print("#" * 72)
        print(f"# {label}")
        print("#" * 72)
        started = time.perf_counter()
        module.main()
        print(f"[{label} took {time.perf_counter() - started:.1f}s]")
    print()
    print(f"[all experiments took {time.perf_counter() - overall:.1f}s]")


if __name__ == "__main__":
    main()
