"""Interesting-itemset thresholding after Kong et al. (arXiv:1806.07084).

Kong, Jiang & Zhang mine *negatively correlated* itemsets by measuring
how far the observed joint support falls below the independence
baseline — the product of the member items' supports — instead of below
a taxonomy-derived expectation. The registered ``"kong-interest"``
measure maps that formulation onto this repo's pipeline:

* a counted candidate ``n = {i_1, …, i_k}`` is admitted as a negative
  itemset when ``∏ sup(i_j) - sup(n) >= MinSup × MinRI`` — the same
  deviation budget the paper's RI uses, but measured against
  independence, so no taxonomy is consulted
  (``needs_taxonomy_expectation=False``);
* a split ``X =/=> Y`` scores ``sup(X)·sup(Y) - sup(X ∪ Y)`` (the
  negative of Piatetsky-Shapiro leverage), admitted when the score
  meets the same ``MinSup × MinRI`` budget.

The score is a difference of fractions, hence bounded in ``[-1, 1]``;
it is *not* antitone in the antecedent support, so rule generation must
not prune superset consequents on a failed score
(``monotone_prune=False``).
"""

from __future__ import annotations

from ..errors import ConfigError
from .registry import InterestMeasure, MeasureCapabilities, register_measure


@register_measure("kong-interest")
class KongInterestMeasure(InterestMeasure):
    """Deviation below the independence baseline (Kong et al.).

    Taxonomy-free: both the itemset predicate and the rule score compare
    measured supports against independence products, making the measure
    applicable to flat databases where RI's taxonomy expectation does
    not exist.
    """

    capabilities = MeasureCapabilities(
        needs_taxonomy_expectation=False,
        supports_positive=False,
        bounded_range=True,
        monotone_prune=False,
    )

    @staticmethod
    def _budget(minsup: float | None, minri: float) -> float:
        if minsup is None:
            raise ConfigError(
                "the kong-interest measure thresholds on "
                "MinSup × MinRI; pass minsup to rule generation"
            )
        if minsup <= 0.0 or minri <= 0.0:
            raise ConfigError("minsup and minri must be positive")
        return minsup * minri

    def admits_itemset(
        self,
        expected: float,
        actual: float,
        singles: tuple[float, ...],
        minsup: float,
        minri: float,
    ) -> bool:
        independence = 1.0
        for support in singles:
            independence *= support
        return independence - actual >= self._budget(minsup, minri)

    def rule_score(
        self,
        expected: float,
        actual: float,
        antecedent_support: float,
        consequent_support: float,
    ) -> float:
        return antecedent_support * consequent_support - actual

    def admits_rule(
        self, score: float, minsup: float | None, minri: float
    ) -> bool:
        return score >= self._budget(minsup, minri)
