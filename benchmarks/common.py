"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index). Synthetic datasets are generated once per
process and cached; their size is controlled by two environment
variables:

``REPRO_BENCH_SCALE``
    Fraction of the paper's workload size (default ``0.02`` — 1,000
    transactions). ``REPRO_BENCH_SCALE=1`` reproduces the paper's full
    |D| = 50,000 / N = 8,000 workload (slow in pure Python).
``REPRO_BENCH_MINSUPS``
    Comma-separated support sweep for Figures 5/6 (default scaled to the
    dataset size; the paper sweeps 2.0 %% down to 0.5 %%).

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import os
from functools import lru_cache
from pathlib import Path

from repro.synthetic.generator import SyntheticDataset, generate_dataset
from repro.synthetic.params import SHORT, TALL

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "1998"))

#: MinRI used throughout, as in the paper: "The minimum RI was set to 0.5
#: in all cases."
MINRI = 0.5


def support_sweep() -> list[float]:
    """The MinSup sweep for the execution-time figures.

    The paper sweeps 2.0 -> 0.5 %. At reduced scale the same structure
    appears at slightly higher supports, so the default sweep shifts up;
    override with REPRO_BENCH_MINSUPS (comma-separated fractions).
    """
    env = os.environ.get("REPRO_BENCH_MINSUPS")
    if env:
        return [float(token) for token in env.split(",")]
    if SCALE >= 0.5:
        return [0.02, 0.015, 0.01, 0.0075, 0.005]
    return [0.10, 0.08, 0.06, 0.05]


@lru_cache(maxsize=None)
def dataset(kind: str) -> SyntheticDataset:
    """The cached 'short' (fan-out 9) or 'tall' (fan-out 3) dataset."""
    params = {"short": SHORT, "tall": TALL}[kind].scaled(SCALE)
    return generate_dataset(params, seed=SEED)


def engine_matrix_configurations() -> list[tuple[str, dict]]:
    """The serial engine × backend cells, derived from the registry.

    One cell per registered serial (shardable) engine, labelled by its
    name, plus a ``<name>-packed`` cell for every engine that supports
    both a cached and a bit-packed backend. Each entry is
    ``(label, session_kwargs)`` — the kwargs to build a
    :class:`~repro.core.session.MiningSession` for that cell. Adding an
    engine to the registry adds its row here (and in the regression
    gate's baseline) with no benchmark edit.
    """
    from repro.mining.engines import registered_engines

    cells: list[tuple[str, dict]] = []
    for name, cls in registered_engines().items():
        caps = cls.capabilities
        if not caps.shardable:
            continue  # the parallel wrapper is benchmarked separately
        cells.append((name, {"engine": name}))
        # Out-of-core engines are always packed; a "-packed" variant
        # would be the same cell twice.
        if caps.caching and caps.packed and not caps.out_of_core:
            cells.append(
                (f"{name}-packed", {"engine": name, "packed": True})
            )
    return cells


def paper_row(label: str, **columns) -> None:
    """Print one row of a paper-style results table to stdout."""
    rendered = "  ".join(
        f"{name}={value}" for name, value in columns.items()
    )
    print(f"[{label}] {rendered}")


def fold_report(
    path: Path, key: str, report: dict, quick: bool = False
) -> dict:
    """Fold one benchmark's report into the shared JSON file at *path*.

    ``BENCH_counting.json`` is shared by several benchmarks, each owning
    one top-level *key*. Full-size runs land under ``[key]``; ``--quick``
    smoke runs land under ``["quick"][key]`` so a CI-sized run can never
    clobber the committed full-size baseline. Every other key is
    preserved verbatim. Returns the merged document.
    """
    merged: dict = {}
    if path.exists():
        merged = json.loads(path.read_text())
    if quick:
        merged.setdefault("quick", {})[key] = report
    else:
        merged[key] = report
    path.write_text(json.dumps(merged, indent=2) + "\n")
    return merged
