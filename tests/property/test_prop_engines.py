"""Property-based tests: every registered engine agrees with brute force.

The registry is the source of truth: the parametrization enumerates
:func:`repro.mining.engines.all_engine_specs` — plain names plus every
``parallel:<inner>`` composition — so a newly registered engine is
covered by these bit-identity checks automatically, with and without a
taxonomy. Parallel compositions run with ``n_jobs=1`` here (the
in-process sharded path); real multiprocess agreement is covered by
``test_prop_parallel.py``. The exception is ``parallel-shm``, which
runs against one persistent module-level two-worker engine: every
example rebinds a different database, so the publish / re-publish /
pool-reconfigure cycle is exercised hundreds of times while the worker
processes themselves live for the whole module.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.session import MiningSession
from repro.itemset import itemset
from repro.mining.engines import all_engine_specs
from repro.taxonomy.builders import taxonomy_from_parents

transactions_strategy = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=25), min_size=1, max_size=8
    ).map(itemset),
    min_size=1,
    max_size=40,
)
candidates_strategy = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=25), min_size=1, max_size=4
    ).map(itemset),
    min_size=1,
    max_size=25,
).map(lambda cands: sorted(set(cands)))

# Leaves 1..12 under categories 100..103 under roots 200..201, with the
# shape drawn randomly per example.
taxonomy_strategy = st.builds(
    lambda mids, tops: taxonomy_from_parents(
        {leaf: mid for leaf, mid in enumerate(mids, start=1)}
        | {100 + index: top for index, top in enumerate(tops)}
    ),
    st.lists(
        st.integers(min_value=100, max_value=103), min_size=12, max_size=12
    ),
    st.lists(
        st.integers(min_value=200, max_value=201), min_size=4, max_size=4
    ),
)
leaf_transactions_strategy = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=12), min_size=1, max_size=5
    ).map(itemset),
    min_size=1,
    max_size=30,
)


_SHM_ENGINE = None


def _shm_engine():
    """One persistent two-worker shm engine shared by every example."""
    global _SHM_ENGINE
    if _SHM_ENGINE is None:
        from repro.mining.engines.parallel import ParallelShmEngine
        from repro.parallel.pool import PoolConfig

        _SHM_ENGINE = ParallelShmEngine(
            n_jobs=2,
            pool_config=PoolConfig(n_jobs=2, retries=1, backoff=0.0),
        )
    return _SHM_ENGINE


@pytest.fixture(scope="module", autouse=True)
def _close_shm_engine():
    """Tear the persistent engine down so its segment and workers do
    not outlive this module (later tests assert no live segments)."""
    yield
    global _SHM_ENGINE
    if _SHM_ENGINE is not None:
        _SHM_ENGINE.close()
        _SHM_ENGINE = None


def session_for(spec, transactions, taxonomy=None):
    """A session over *spec*; parallel specs pinned to one in-process job."""
    if spec == "parallel-shm":
        return MiningSession(transactions, taxonomy, _shm_engine())
    n_jobs = 1 if spec.startswith("parallel") else None
    return MiningSession(transactions, taxonomy, spec, n_jobs=n_jobs)


@pytest.mark.parametrize("spec", all_engine_specs())
@settings(max_examples=25, deadline=None)
@given(transactions_strategy, candidates_strategy)
def test_engine_matches_brute(spec, transactions, candidates):
    expected = MiningSession(transactions, engine="brute").count(candidates)
    assert session_for(spec, transactions).count(candidates) == expected


@pytest.mark.parametrize("spec", all_engine_specs())
@settings(max_examples=15, deadline=None)
@given(leaf_transactions_strategy, taxonomy_strategy, st.data())
def test_engine_matches_brute_generalized(spec, transactions, taxonomy, data):
    nodes = sorted(taxonomy.nodes)
    candidates = data.draw(
        st.lists(
            st.lists(st.sampled_from(nodes), min_size=1, max_size=3).map(
                itemset
            ),
            min_size=1,
            max_size=12,
        ).map(lambda cands: sorted(set(cands)))
    )
    expected = MiningSession(transactions, taxonomy, "brute").count(
        candidates
    )
    counted = session_for(spec, transactions, taxonomy).count(candidates)
    assert counted == expected


@pytest.mark.parametrize("spec", all_engine_specs())
@settings(max_examples=15, deadline=None)
@given(transactions_strategy, candidates_strategy)
def test_restriction_never_changes_counts(spec, transactions, candidates):
    plain = session_for(spec, transactions).count(candidates)
    restricted = session_for(spec, transactions).count(
        candidates, restrict_to_candidate_items=True
    )
    assert restricted == plain


# ----------------------------------------------------------------------
# Out-of-core segmentation: word/segment-boundary layouts and the
# incremental maintenance paths (append, then out-of-band mutation).
# ----------------------------------------------------------------------

#: Segment sizes straddling the uint64 word boundary plus tiny ones
#: that force many partial-tail / exact-multiple layouts over the
#: (up to 40-row) generated databases.
segment_rows_strategy = st.sampled_from([1, 3, 7, 8, 63, 64, 65])

#: The incrementally maintained engines: the vertical cache and the
#: segmented mmap matrix, serial and sharded.
INCREMENTAL_SPECS = ("cached", "mmap", "parallel:mmap")


def incremental_session(spec, database, segment_rows):
    n_jobs = 1 if spec.startswith("parallel") else None
    return MiningSession(
        database, engine=spec, n_jobs=n_jobs, segment_rows=segment_rows
    )


@settings(max_examples=20, deadline=None)
@given(transactions_strategy, candidates_strategy, segment_rows_strategy)
def test_mmap_segment_boundaries_match_brute(
    transactions, candidates, segment_rows
):
    expected = MiningSession(transactions, engine="brute").count(candidates)
    session = MiningSession(
        transactions, engine="mmap", segment_rows=segment_rows
    )
    assert session.count(candidates) == expected


@pytest.mark.parametrize("spec", INCREMENTAL_SPECS)
@settings(max_examples=15, deadline=None)
@given(
    transactions_strategy,
    transactions_strategy,
    transactions_strategy,
    candidates_strategy,
    segment_rows_strategy,
)
def test_append_mutate_recount_sequences(
    spec, first, tail, rewrite, candidates, segment_rows
):
    """One session through build -> append -> out-of-band rewrite.

    Every recount must match a fresh brute count over the rows the
    database holds *now*: the append must be absorbed incrementally
    without serving stale heads, and the rewrite must invalidate."""
    from repro.data.database import TransactionDatabase

    def brute(rows):
        return MiningSession(list(rows), engine="brute").count(candidates)

    database = TransactionDatabase(first)
    session = incremental_session(spec, database, segment_rows)
    assert session.count(candidates) == brute(first)
    database.append(tail)
    assert session.count(candidates) == brute(list(first) + list(tail))
    database._transactions = tuple(rewrite)  # out-of-band rewrite
    assert session.count(candidates) == brute(rewrite)
