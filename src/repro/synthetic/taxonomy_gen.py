"""Random taxonomy generation (paper Section 3.1, first stage).

"We first generate a taxonomy over the items. For any internal node, the
number of children are picked from a Poisson distribution with mean set to
F. This process is generated starting from the root level ... until there
are no more items."

The process below expands the forest breadth-first from ``R`` roots:
expanding a node draws ``Poisson(F)`` children (clamped to at least 2 so an
"internal" node is a real category) and consumes ``children - 1`` units of
the leaf budget ``N``. Expansion stops when the budget is exhausted; every
unexpanded node is a leaf. A small fan-out therefore produces a *tall*
taxonomy and a large fan-out a *short* one — the two experimental data
sets of Section 3.2.

Node ids are assigned in BFS order, so roots get the smallest ids and
leaves the largest.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..taxonomy.tree import Taxonomy
from .params import GeneratorParams


def generate_taxonomy(
    params: GeneratorParams, rng: np.random.Generator
) -> Taxonomy:
    """Generate a random taxonomy with ~``params.num_items`` leaves.

    Parameters
    ----------
    params:
        Uses ``num_items`` (N), ``num_roots`` (R) and ``fanout`` (F).
    rng:
        Numpy random generator — pass ``np.random.default_rng(seed)`` for
        reproducibility.

    Returns
    -------
    Taxonomy
        A forest with exactly ``num_roots`` roots and ``num_items`` leaves
        (up to the final node's clamping, the leaf count is exact).
    """
    target_leaves = params.num_items
    parents: dict[int, int] = {}
    next_id = params.num_roots
    queue: deque[int] = deque(range(params.num_roots))
    leaves = params.num_roots

    while queue and leaves < target_leaves:
        node = queue.popleft()
        remaining = target_leaves - leaves
        children = int(rng.poisson(params.fanout))
        if children < 2:
            children = 2  # a category with < 2 children is not a category
        # Expanding turns one leaf into `children` leaves.
        children = min(children, remaining + 1)
        for _ in range(children):
            parents[next_id] = node
            queue.append(next_id)
            next_id += 1
        leaves += children - 1

    # Roots that were never expanded are leaf items with no category; they
    # must be registered explicitly since they appear in no parent edge.
    return Taxonomy(parents, extra_roots=range(params.num_roots))
