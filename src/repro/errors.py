"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch a single base class. Sub-classes
distinguish the major failure domains: taxonomy construction, database
construction/IO, mining configuration, synthetic data generation, and
the online rule-serving layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class TaxonomyError(ReproError):
    """A taxonomy is structurally invalid (cycle, unknown node, ...)."""


class DatabaseError(ReproError):
    """A transaction database is invalid or an IO operation failed."""


class ConfigError(ReproError):
    """A mining parameter is out of range or inconsistent."""


class GenerationError(ReproError):
    """Synthetic data generation failed (inconsistent parameters)."""


class ServingError(ReproError):
    """A serving-layer request is invalid (bad basket, unknown target,
    selective generation unavailable, ...)."""


class VersionSkewError(ServingError):
    """A rule-index delta does not apply to the installed index version.

    Raised instead of silently mis-applying a delta built against a
    different base: the live index and the delta's ``from_version``
    must agree exactly (deltas form a linear version chain)."""


class StreamError(ReproError):
    """The streaming watcher failed (delta push rejected, bad retrigger
    policy, corrupt checkpoint, ...)."""
