"""The asyncio rule-serving service: score baskets over a socket.

The server speaks newline-delimited JSON over TCP — one request object
per line, one response object per line — because the container of the
reproduction has no HTTP framework and the protocol needs nothing more
than framing. Requests carry an ``op``:

``{"op": "ping"}``
    liveness check, answers ``{"ok": true, "rules": N}``;
``{"op": "score", "basket": [...]}``
    all index rules firing on the basket (items may be ids or taxonomy
    names);
``{"op": "score_batch", "baskets": [[...], ...]}``
    one ``score`` result per basket;
``{"op": "select", "target": item}``
    on-demand selective mining around one target (only when the service
    was built with a :class:`SelectiveContext`);
``{"op": "reload_delta", "delta": {...}}``
    install a versioned rule-index delta pushed by the streaming
    watcher (:mod:`repro.stream`) — the hot-basket cache is invalidated
    selectively by the delta's touched antecedent items, never flushed
    wholesale;
``{"op": "stats"}``
    request/cache/rule counters (including the live ``index_version``).

Scoring is CPU-cheap and non-blocking, so request handling stays on the
event loop; the hot path is the :class:`LRUCache` in front of the
matcher — identical baskets (after canonicalization) are answered
without touching the postings at all. Cache hits and misses are
reported both on the service (:meth:`RuleService.stats`) and through
the observability layer (``serve.cache.hits`` / ``serve.cache.misses``
counters), so the benchmark and the tests can assert on them.
"""

from __future__ import annotations

import asyncio
import json
import socket
from collections import OrderedDict
from dataclasses import dataclass

from ..core.session import MiningSession
from ..errors import ReproError, ServingError, TaxonomyError
from ..obs import api as obs
from .matcher import BasketMatcher, Match, expand_basket
from .rule_index import RuleIndex
from .selective import mine_selective


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``maxsize=0`` disables caching entirely (every lookup misses and
    :meth:`put` is a no-op). Hits and misses are tallied on the
    instance and mirrored to the active observability session as
    ``<metric_prefix>.hits`` / ``<metric_prefix>.misses`` counters.
    """

    __slots__ = ("_data", "maxsize", "hits", "misses", "metric_prefix")

    _MISSING = object()

    def __init__(
        self, maxsize: int = 1024, metric_prefix: str = "serve.cache"
    ) -> None:
        if maxsize < 0:
            raise ServingError(
                f"cache maxsize must be >= 0, got {maxsize}"
            )
        self._data: OrderedDict = OrderedDict()
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.metric_prefix = metric_prefix

    def get(self, key, default=None):
        value = self._data.get(key, self._MISSING)
        if value is self._MISSING:
            self.misses += 1
            obs.incr(f"{self.metric_prefix}.misses")
            return default
        self._data.move_to_end(key)
        self.hits += 1
        obs.incr(f"{self.metric_prefix}.hits")
        return value

    def put(self, key, value) -> None:
        if self.maxsize == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def entries(self):
        """All ``(key, value)`` pairs, least recently used first."""
        return list(self._data.items())

    def clear(self) -> None:
        self._data.clear()

    def replace(self, entries) -> None:
        """Reset the cache contents to *entries* (LRU order preserved);
        the hit/miss tallies are deliberately kept — selective delta
        invalidation is maintenance, not traffic."""
        self._data = OrderedDict(entries)


@dataclass(slots=True)
class SelectiveContext:
    """Everything ``op: select`` needs to mine at query time.

    The service itself only holds a compiled rule index; on-demand
    selective generation additionally needs the database, the taxonomy
    and the thresholds of the offline run it should be consistent with.
    """

    database: object
    taxonomy: object
    minsup: float
    minri: float
    minconf: float = 0.5
    session: MiningSession = None
    max_size: int | None = None
    max_neighbors: int = 32
    #: Interestingness-measure spec (or instance) for query-time
    #: mining; ``None`` follows the session's bound measure, so served
    #: selective rules stay consistent with the offline run.
    measure: object = None

    def __post_init__(self) -> None:
        if self.session is None:
            self.session = MiningSession(self.database, self.taxonomy)


def _match_payload(match: Match) -> dict:
    return {
        "slot": match.slot,
        "kind": match.kind,
        "rule": match.rule.as_dict(),
        "consequent_present": match.consequent_present,
    }


class RuleService:
    """The serving facade: matcher + caches + request counters.

    All methods are synchronous and cheap; the asyncio layer below is a
    thin framing shell around them, which also makes the service
    directly usable in-process (the CLI ``score --index`` path and the
    tests do exactly that).
    """

    def __init__(
        self,
        index: RuleIndex,
        cache_size: int = 1024,
        selective: SelectiveContext | None = None,
    ) -> None:
        self.index = index
        self.matcher = BasketMatcher(index)
        self.selective = selective
        self.requests = 0
        self._score_cache = LRUCache(cache_size, "serve.cache")
        self._selective_cache = LRUCache(
            cache_size, "serve.selective_cache"
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _resolve(self, entry) -> int:
        """An item id for *entry*: ids pass through, names resolve."""
        if isinstance(entry, bool):
            raise ServingError(f"invalid basket item {entry!r}")
        if isinstance(entry, int):
            return entry
        if isinstance(entry, str):
            taxonomy = self.index.taxonomy
            if taxonomy is None:
                raise ServingError(
                    f"cannot resolve item name {entry!r}: "
                    "index has no taxonomy"
                )
            try:
                return taxonomy.id_of(entry)
            except TaxonomyError as exc:
                raise ServingError(str(exc)) from exc
        raise ServingError(f"invalid basket item {entry!r}")

    def score(self, basket, limit: int | None = None) -> dict:
        """Match one basket; cached by its canonical item set.

        *limit* keeps only the strongest matches (slot order ranks
        negatives by RI, then positives by confidence); the payload's
        ``total_matches`` still reports the full count.
        """
        with obs.span("serve.score") as span:
            self.requests += 1
            obs.incr("serve.requests")
            if not isinstance(basket, (list, tuple)):
                raise ServingError(
                    "basket must be a list of item ids or names"
                )
            if limit is not None and limit < 0:
                raise ServingError(f"limit must be >= 0, got {limit}")
            items = tuple(
                sorted({self._resolve(entry) for entry in basket})
            )
            span.annotate("basket", len(items))
            key = (items, limit)
            cached = self._score_cache.get(key)
            if cached is not None:
                return cached
            matches = self.matcher.match(items)
            kept = matches if limit is None else matches[:limit]
            payload = {
                "basket": list(items),
                "total_matches": len(matches),
                "matches": [_match_payload(match) for match in kept],
            }
            self._score_cache.put(key, payload)
            return payload

    def score_batch(self, baskets, limit: int | None = None) -> dict:
        """One :meth:`score` result per basket, in order."""
        with obs.span("serve.score_batch") as span:
            if not isinstance(baskets, (list, tuple)):
                raise ServingError("baskets must be a list of baskets")
            span.annotate("baskets", len(baskets))
            return {
                "results": [
                    self.score(basket, limit) for basket in baskets
                ]
            }

    def select(self, target) -> dict:
        """On-demand selective mining around *target* (cached)."""
        context = self.selective
        if context is None:
            raise ServingError(
                "selective generation is unavailable: the service was "
                "started from a compiled index only (no database)"
            )
        with obs.span("serve.select") as span:
            self.requests += 1
            obs.incr("serve.requests")
            target_id = self._resolve(target)
            span.annotate("target", target_id)
            cached = self._selective_cache.get(target_id)
            if cached is not None:
                return cached
            result = mine_selective(
                context.database,
                context.taxonomy,
                target_id,
                context.minsup,
                context.minri,
                minconf=context.minconf,
                session=context.session,
                max_size=context.max_size,
                max_neighbors=context.max_neighbors,
                measure=context.measure,
            )
            payload = {
                "target": target_id,
                "negative_rules": [
                    rule.as_dict() for rule in result.negative_rules
                ],
                "positive_rules": [
                    rule.as_dict() for rule in result.positive_rules
                ],
                "neighborhood": list(result.neighborhood),
                "data_passes": result.stats.data_passes,
            }
            self._selective_cache.put(target_id, payload)
            return payload

    # ------------------------------------------------------------------
    # Delta ingestion (the streaming watcher's push path)
    # ------------------------------------------------------------------
    def apply_delta(self, delta) -> dict:
        """Install a :class:`~repro.stream.delta.RuleIndexDelta` in place.

        The index swap itself is
        :meth:`~repro.serve.rule_index.RuleIndex.apply_delta` (version
        skew raises there, before any state changes). What this method
        adds is cache maintenance without a flush:

        * a cached basket is **invalidated** only when its
          taxonomy-expanded item set intersects the delta's touched
          antecedent items — every added, removed or re-ranked rule
          needs its whole antecedent covered to fire, so any other
          basket provably keeps the same answer;
        * surviving entries are **slot-remapped**: rule slots shift when
          rules are inserted or removed, so the retained payloads get
          their slots rewritten through the old→new identity map,
          keeping them byte-identical to freshly scored responses.

        A taxonomy change (rare) changes basket expansion itself and
        falls back to a full flush. The selective-mining cache is always
        flushed: its entries were mined from the database, which has by
        definition grown.
        """
        with obs.span("serve.delta.apply") as span:
            old_index = self.index
            new_index = old_index.apply_delta(delta)
            kept = 0
            invalidated = 0
            if delta.taxonomy_changed:
                invalidated = len(self._score_cache)
                self._score_cache.clear()
                obs.incr("serve.cache.delta_flush")
            else:
                touched = delta.touched_antecedent_items()
                old_slots = old_index.slots_by_key()
                new_slots = new_index.slots_by_key()
                slot_map = {
                    old_slots[key]: new_slots[key]
                    for key in old_slots
                    if key in new_slots
                }
                retained = []
                for key, payload in self._score_cache.entries():
                    items, _limit = key
                    expanded = expand_basket(items, new_index)
                    if expanded & touched:
                        invalidated += 1
                        continue
                    retained.append((key, {
                        **payload,
                        "matches": [
                            {**match, "slot": slot_map[match["slot"]]}
                            for match in payload["matches"]
                        ],
                    }))
                    kept += 1
                self._score_cache.replace(retained)
            self._selective_cache.clear()
            self.index = new_index
            self.matcher.rebind(new_index)
            obs.incr("serve.delta.applied")
            obs.incr("serve.cache.delta_kept", kept)
            obs.incr("serve.cache.delta_invalidated", invalidated)
            span.annotate("to_version", new_index.version)
            span.annotate("edits", delta.rule_edits)
            return {
                "ok": True,
                "index_version": new_index.version,
                "rules": len(new_index),
                "added": len(delta.added),
                "removed": len(delta.removed),
                "changed": len(delta.changed),
                "cache_kept": kept,
                "cache_invalidated": invalidated,
            }

    def reload_delta(self, payload) -> dict:
        """The ``op: reload_delta`` entry: a delta as a wire payload."""
        # Function-level import: repro.stream imports the serve layer
        # (rule_index, request_once), so the reverse edge must stay out
        # of module scope.
        from ..stream.delta import RuleIndexDelta

        if not isinstance(payload, dict):
            raise ServingError(
                "reload_delta needs a 'delta' payload object"
            )
        return self.apply_delta(RuleIndexDelta.from_payload(payload))

    def stats(self) -> dict:
        return {
            "rules": len(self.index),
            "negative_rules": self.index.negative_count,
            "positive_rules": self.index.positive_count,
            "index_version": self.index.version,
            "requests": self.requests,
            "cache_hits": self._score_cache.hits,
            "cache_misses": self._score_cache.misses,
            "selective_hits": self._selective_cache.hits,
            "selective_misses": self._selective_cache.misses,
            "selective_available": self.selective is not None,
        }


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
def dispatch(service: RuleService, request: dict) -> dict:
    """Route one decoded request object to the service.

    Library errors come back as ``{"error": ...}`` response objects —
    a bad request must never take the server down.
    """
    try:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "rules": len(service.index)}
        if op == "score":
            return service.score(
                request.get("basket"), request.get("limit")
            )
        if op == "score_batch":
            return service.score_batch(
                request.get("baskets"), request.get("limit")
            )
        if op == "select":
            return service.select(request.get("target"))
        if op == "reload_delta":
            return service.reload_delta(request.get("delta"))
        if op == "stats":
            return service.stats()
        raise ServingError(f"unknown op {op!r}")
    except ReproError as exc:
        return {"error": str(exc)}


async def handle_client(
    service: RuleService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one connection: a JSON request per line until EOF."""
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                request = json.loads(text)
            except json.JSONDecodeError as exc:
                response = {"error": f"malformed request: {exc}"}
            else:
                if isinstance(request, dict):
                    response = dispatch(service, request)
                else:
                    response = {"error": "request must be a JSON object"}
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


#: Per-line buffer for the newline-JSON protocol. asyncio's 64 KiB
#: default fits score requests but not ``reload_delta`` — a delta over
#: a large index (every rule re-ranked by an append that shifts |D|)
#: is one line of tens of megabytes, and overrunning the limit resets
#: the watcher's connection mid-push.
MAX_REQUEST_BYTES = 256 * 1024 * 1024


async def start_server(
    service: RuleService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Bind the service; ``port=0`` picks a free port (for tests)."""

    async def _client(reader, writer):
        await handle_client(service, reader, writer)

    return await asyncio.start_server(
        _client, host, port, limit=MAX_REQUEST_BYTES
    )


def run_service(
    service: RuleService, host: str = "127.0.0.1", port: int = 7407
) -> None:
    """Run the server until interrupted (the ``repro serve`` entry)."""

    async def _main() -> None:
        server = await start_server(service, host, port)
        bound = server.sockets[0].getsockname()
        print(
            f"serving {len(service.index)} rules "
            f"on {bound[0]}:{bound[1]}",
            flush=True,
        )
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


def request_once(
    host: str, port: int, payload: dict, timeout: float = 10.0
) -> dict:
    """Send one request to a running server and return its response.

    A plain blocking socket client — used by the CLI ``score`` command
    and the CI smoke check, which talk to the server from a different
    process and need no asyncio of their own.
    """
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall(json.dumps(payload).encode() + b"\n")
        with conn.makefile("rb") as stream:
            line = stream.readline()
    if not line:
        raise ServingError("server closed the connection without a reply")
    return json.loads(line.decode())
