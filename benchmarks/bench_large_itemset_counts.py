"""E5 — In-text claim: "Tall" has far more generalized large itemsets.

Section 3.2: "at a support level of 1.5 %, 15,476 large itemsets were
generated for the 'Tall' dataset as opposed to 1,499 for 'Short'". At
benchmark scale the absolute numbers shrink but the ordering (Tall >>
Short at equal support) must hold — the deeper taxonomy multiplies the
number of category-level itemsets.

Run directly for the table::

    python -m benchmarks.bench_large_itemset_counts
"""

import pytest

from repro.mining.generalized import mine_generalized

from .common import dataset, support_sweep

MINSUP = support_sweep()[1]


@pytest.mark.parametrize("kind", ["short", "tall"])
def test_large_itemset_counts(benchmark, kind):
    data = dataset(kind)

    def mine():
        return mine_generalized(data.database, data.taxonomy, MINSUP)

    index = benchmark.pedantic(mine, rounds=1, iterations=1)
    benchmark.extra_info.update(
        large_itemsets=len(index),
        by_size={size: len(index.of_size(size)) for size in index.sizes},
        taxonomy_height=data.taxonomy.height,
    )


def main() -> None:
    print(
        f"=== E5: generalized large itemsets at MinSup={MINSUP} ==="
    )
    counts = {}
    for kind in ("short", "tall"):
        data = dataset(kind)
        index = mine_generalized(data.database, data.taxonomy, MINSUP)
        counts[kind] = len(index)
        by_size = {size: len(index.of_size(size)) for size in index.sizes}
        print(
            f"  {kind:<6} height={data.taxonomy.height} "
            f"fanout={data.taxonomy.fanout():.1f} "
            f"large={len(index):>6} by_size={by_size}"
        )
    ratio = counts["tall"] / max(1, counts["short"])
    print(
        f"\nshape check: tall/short ratio = {ratio:.1f}x "
        "(paper: 15,476 / 1,499 = 10.3x at 1.5% support)"
    )


if __name__ == "__main__":
    main()
