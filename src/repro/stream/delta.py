"""Versioned rule-index deltas: ship what changed, not the whole index.

A re-mine over an appended database mostly reproduces the previous rule
set — appends shift a few supports, add a few rules, retire a few.
:class:`RuleIndexDelta` captures exactly that difference between two
compiled :class:`~repro.serve.rule_index.RuleIndex` versions:

``added``
    Rules in the new set that have no identity (kind + antecedent +
    consequent, :func:`~repro.serve.rule_index.rule_key`) in the old.
``removed``
    Identities in the old set that vanished.
``changed``
    Rules present in both whose *strength statistics* moved (RI,
    supports, confidence) — the slot reordering case: same rule, new
    rank.

The delta is *versioned*: ``from_version`` names the exact index it was
diffed against and ``to_version`` the index it produces. Application
(:meth:`~repro.serve.rule_index.RuleIndex.apply_delta`) refuses any
other base with :class:`~repro.errors.VersionSkewError`, so a watcher
and a server that drift apart fail loudly instead of serving a
mis-assembled rule set. Applying a delta is bit-identical to compiling
the new rule set from scratch (property-tested), which is what makes
pushing deltas to a live server sound.

The taxonomy and the large-itemset table ride along only when they
actually changed (rare — the taxonomy is static in the paper's setting),
so steady-state deltas stay proportional to the rule churn.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections.abc import Iterable

from ..core.rulegen import NegativeRule
from ..errors import ConfigError
from ..mining.itemset_index import LargeItemsetIndex
from ..mining.rules import AssociationRule
from ..serialize import check_payload, header
from ..serve.rule_index import (
    RuleIndex,
    RuleKey,
    _taxonomy_from_payload,
    _taxonomy_payload,
    rule_key,
)
from ..taxonomy.tree import Taxonomy

Rule = NegativeRule | AssociationRule


@dataclass(frozen=True, slots=True)
class RuleIndexDelta:
    """The difference between rule-index version ``from_version`` and
    ``to_version``.

    Attributes
    ----------
    from_version, to_version:
        The lineage edge this delta is: it applies to exactly
        ``from_version`` and produces ``to_version``.
    added, changed:
        Full rule objects (the receiver needs their statistics).
    removed:
        Cross-version identities only — enough to find and drop them.
    taxonomy_changed, taxonomy:
        The new taxonomy, carried only when it differs from the old
        index's (``taxonomy`` is meaningless unless the flag is set).
    itemsets_changed, large_itemsets:
        Same for the embedded large-itemset table.
    """

    from_version: int
    to_version: int
    added: tuple[Rule, ...] = ()
    removed: tuple[RuleKey, ...] = ()
    changed: tuple[Rule, ...] = ()
    taxonomy_changed: bool = False
    taxonomy: Taxonomy | None = None
    itemsets_changed: bool = False
    large_itemsets: LargeItemsetIndex | None = field(
        default=None, compare=False
    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def diff(
        cls,
        old: RuleIndex,
        negative_rules: Iterable[NegativeRule],
        positive_rules: Iterable[AssociationRule],
        taxonomy: Taxonomy | None = None,
        large_itemsets: LargeItemsetIndex | None = None,
        to_version: int | None = None,
    ) -> "RuleIndexDelta":
        """Diff the *old* index against a freshly mined rule set.

        *to_version* defaults to ``old.version + 1``. The new taxonomy /
        large-itemset table are compared against the old index's by
        serialized payload and carried only on change, so
        ``old.apply_delta(diff(...))`` reproduces, bit for bit, the
        index a fresh compile of the new rule set would build.
        """
        if to_version is None:
            to_version = old.version + 1
        old_rules = {
            rule_key(entry.rule): entry.rule for entry in old.rules
        }
        added: list[Rule] = []
        changed: list[Rule] = []
        seen: set[RuleKey] = set()
        for rule in (*negative_rules, *positive_rules):
            key = rule_key(rule)
            if key in seen:
                raise ConfigError(
                    f"duplicate rule identity in the new rule set: {key!r}"
                )
            seen.add(key)
            previous = old_rules.get(key)
            if previous is None:
                added.append(rule)
            elif previous != rule:
                changed.append(rule)
        removed = tuple(
            sorted(key for key in old_rules if key not in seen)
        )
        taxonomy_changed = _payload_or_none(
            _taxonomy_payload, old.taxonomy
        ) != _payload_or_none(_taxonomy_payload, taxonomy)
        itemsets_changed = _payload_or_none(
            LargeItemsetIndex.to_payload, old.large_itemsets
        ) != _payload_or_none(LargeItemsetIndex.to_payload, large_itemsets)
        return cls(
            from_version=old.version,
            to_version=to_version,
            added=tuple(added),
            removed=removed,
            changed=tuple(changed),
            taxonomy_changed=taxonomy_changed,
            taxonomy=taxonomy if taxonomy_changed else None,
            itemsets_changed=itemsets_changed,
            large_itemsets=large_itemsets if itemsets_changed else None,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rule_edits(self) -> int:
        """Total rule-level edits the delta carries."""
        return len(self.added) + len(self.removed) + len(self.changed)

    def is_empty(self) -> bool:
        """True when applying the delta only bumps the version."""
        return (
            not self.rule_edits
            and not self.taxonomy_changed
            and not self.itemsets_changed
        )

    def touched_antecedent_items(self) -> frozenset[int]:
        """Items appearing in any edited rule's antecedent.

        This is the serving layer's selective-invalidation key: a cached
        basket can only have changed answers if its (taxonomy-expanded)
        item set intersects these items — every added, removed or
        re-ranked rule needs its whole antecedent covered to fire, and
        every antecedent contains at least one touched item.
        """
        items: set[int] = set()
        for rule in (*self.added, *self.changed):
            items.update(rule.antecedent)
        for _kind, antecedent, _consequent in self.removed:
            items.update(antecedent)
        return frozenset(items)

    # ------------------------------------------------------------------
    # Persistence (the wire format of the ``reload_delta`` op)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        payload: dict = {
            **header("rule-index-delta"),
            "from_version": self.from_version,
            "to_version": self.to_version,
            "added": [rule.as_dict() for rule in self.added],
            "removed": [
                [kind, list(antecedent), list(consequent)]
                for kind, antecedent, consequent in self.removed
            ],
            "changed": [rule.as_dict() for rule in self.changed],
        }
        if self.taxonomy_changed:
            payload["taxonomy"] = (
                _taxonomy_payload(self.taxonomy)
                if self.taxonomy is not None
                else None
            )
        if self.itemsets_changed:
            payload["large_itemsets"] = (
                self.large_itemsets.to_payload()
                if self.large_itemsets is not None
                else None
            )
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "RuleIndexDelta":
        check_payload(payload, "rule-index-delta")
        taxonomy_changed = "taxonomy" in payload
        taxonomy = None
        if taxonomy_changed and payload["taxonomy"] is not None:
            taxonomy = _taxonomy_from_payload(payload["taxonomy"])
        itemsets_changed = "large_itemsets" in payload
        itemsets = None
        if itemsets_changed and payload["large_itemsets"] is not None:
            itemsets = LargeItemsetIndex.from_payload(
                payload["large_itemsets"]
            )
        return cls(
            from_version=payload["from_version"],
            to_version=payload["to_version"],
            added=tuple(
                _rule_from_dict(entry) for entry in payload["added"]
            ),
            removed=tuple(
                (kind, tuple(antecedent), tuple(consequent))
                for kind, antecedent, consequent in payload["removed"]
            ),
            changed=tuple(
                _rule_from_dict(entry) for entry in payload["changed"]
            ),
            taxonomy_changed=taxonomy_changed,
            taxonomy=taxonomy,
            itemsets_changed=itemsets_changed,
            large_itemsets=itemsets,
        )

    def to_json(self) -> str:
        return json.dumps(self.to_payload())

    @classmethod
    def from_json(cls, text: str) -> "RuleIndexDelta":
        return cls.from_payload(json.loads(text))

    def summary(self) -> str:
        parts = [
            f"v{self.from_version} -> v{self.to_version}",
            f"+{len(self.added)}",
            f"-{len(self.removed)}",
            f"~{len(self.changed)}",
        ]
        if self.taxonomy_changed:
            parts.append("taxonomy")
        if self.itemsets_changed:
            parts.append("itemsets")
        return " ".join(parts)


def _payload_or_none(serializer, value):
    return None if value is None else serializer(value)


def _rule_from_dict(entry: dict) -> Rule:
    if entry.get("kind") == "negative-rule":
        return NegativeRule.from_dict(entry)
    return AssociationRule.from_dict(entry)
