"""Unit tests for the benchmark-regression gate arithmetic."""

import math

import pytest

from benchmarks.check_regression import (
    DEFAULT_THRESHOLD,
    MEASUREMENT_FLOOR_S,
    compare,
    geometric_mean,
    normalize,
)

BASELINE = {
    "bitmap": 0.040,
    "numpy": 0.012,
    "index": 0.080,
    "cached": 0.024,
}


class TestNormalize:
    def test_geometric_mean_of_equal_values(self):
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_normalized_profile_has_unit_geomean(self):
        engines = sorted(BASELINE)
        norm = normalize(BASELINE, engines)
        product = math.prod(norm[e] for e in engines)
        assert product == pytest.approx(1.0)

    def test_scale_factor_divides_out(self):
        engines = sorted(BASELINE)
        slowed = {e: v * 3.0 for e, v in BASELINE.items()}
        assert normalize(BASELINE, engines) == pytest.approx(
            normalize(slowed, engines)
        )


class TestCompare:
    def test_identical_profiles_pass(self):
        rows, failed = compare(BASELINE, dict(BASELINE), DEFAULT_THRESHOLD)
        assert failed == []
        assert all(row["verdict"] == "ok" for row in rows)
        assert all(row["normalized_ratio"] == 1.0 for row in rows)

    def test_uniform_slowdown_passes(self):
        """A uniformly slower machine is not a regression."""
        current = {e: v * 3.0 for e, v in BASELINE.items()}
        rows, failed = compare(BASELINE, current, DEFAULT_THRESHOLD)
        assert failed == []
        assert all(row["normalized_ratio"] == 1.0 for row in rows)

    def test_single_engine_2x_fails(self):
        """Acceptance: an injected 2x slowdown must trip the gate."""
        current = dict(BASELINE)
        current["index"] *= 2.0
        rows, failed = compare(BASELINE, current, DEFAULT_THRESHOLD)
        assert failed == ["index"]
        by_engine = {row["engine"]: row for row in rows}
        assert by_engine["index"]["verdict"] == "REGRESSED"
        assert by_engine["index"]["normalized_ratio"] > DEFAULT_THRESHOLD
        # The others drift slightly *down* (the geomean rose) — still ok.
        for engine in set(BASELINE) - {"index"}:
            assert by_engine[engine]["verdict"] == "ok"

    def test_sub_floor_jitter_is_ignored(self):
        """Timer noise below the floor must not look like a regression."""
        baseline = dict(BASELINE, numpy=0.001)
        current = dict(BASELINE, numpy=0.004)  # 4x, but both < floor
        rows, failed = compare(baseline, current, DEFAULT_THRESHOLD)
        assert failed == []
        by_engine = {row["engine"]: row for row in rows}
        assert by_engine["numpy"]["baseline_per_pass_s"] == (
            MEASUREMENT_FLOOR_S
        )
        assert by_engine["numpy"]["current_per_pass_s"] == (
            MEASUREMENT_FLOOR_S
        )

    def test_sub_floor_engine_regressing_to_real_time_fails(self):
        baseline = dict(BASELINE, numpy=0.002)
        current = dict(BASELINE, numpy=0.050)  # well above the floor
        _, failed = compare(baseline, current, DEFAULT_THRESHOLD)
        assert failed == ["numpy"]

    def test_only_shared_engines_compared(self):
        """A renamed/added engine is ignored, not a spurious failure."""
        current = dict(BASELINE)
        current.pop("cached")
        current["cached-packed"] = 0.011
        rows, failed = compare(BASELINE, current, DEFAULT_THRESHOLD)
        assert failed == []
        engines = {row["engine"] for row in rows}
        assert engines == {"bitmap", "numpy", "index"}

    def test_no_shared_engines_is_an_error(self):
        with pytest.raises(SystemExit):
            compare({"a": 1.0}, {"b": 1.0}, DEFAULT_THRESHOLD)
