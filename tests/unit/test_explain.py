"""Unit tests for rule/derivation explanations."""

import pytest

from repro.core.api import mine_negative_rules
from repro.core.explain import (
    derive,
    explain_result_rule,
    explain_rule,
    format_derivation,
)
from repro.data.database import TransactionDatabase


@pytest.fixture
def mined(figure2_taxonomy):
    """The consistent Table-1 database mined end to end."""
    taxonomy = figure2_taxonomy
    bryers = taxonomy.id_of("Bryers")
    healthy = taxonomy.id_of("Healthy Choice")
    evian = taxonomy.id_of("Evian")
    perrier = taxonomy.id_of("Perrier")
    filler = taxonomy.id_of("Carbonated")
    groups = [
        ([bryers, evian], 1200),
        ([bryers, perrier], 50),
        ([bryers], 750),
        ([healthy, evian], 420),
        ([healthy, perrier], 250),
        ([healthy], 330),
        ([evian], 380),
        ([perrier], 500),
        ([filler], 6120),
    ]
    rows = [row for row, count in groups for _ in range(count)]
    database = TransactionDatabase(rows)
    result = mine_negative_rules(
        database, taxonomy, minsup=0.04, minri=0.5
    )
    return taxonomy, result


class TestDerive:
    def test_reconstructs_expectation(self, mined):
        taxonomy, result = mined
        bryers = taxonomy.id_of("Bryers")
        perrier = taxonomy.id_of("Perrier")
        pair = tuple(sorted((bryers, perrier)))
        negative = next(
            n for n in result.negative_itemsets if n.items == pair
        )
        derivation = derive(negative, result.large_itemsets, taxonomy)
        rebuilt = derivation.base_support
        for replacement in derivation.replacements:
            rebuilt *= replacement.ratio
        assert rebuilt == pytest.approx(negative.expected_support)

    def test_replacement_partners_are_relatives(self, mined):
        taxonomy, result = mined
        for negative in result.negative_itemsets:
            derivation = derive(negative, result.large_itemsets, taxonomy)
            for replacement in derivation.replacements:
                new, old = replacement.new_item, replacement.source_item
                related = (
                    taxonomy.parent(new) == old
                    or taxonomy.parent(new) == taxonomy.parent(old)
                )
                assert related


class TestFormatting:
    def test_derivation_text_shows_formula(self, mined):
        taxonomy, result = mined
        negative = result.negative_itemsets[0]
        derivation = derive(negative, result.large_itemsets, taxonomy)
        text = format_derivation(derivation, taxonomy)
        assert "E[sup] =" in text
        assert "derived from large itemset" in text
        assert f"{negative.actual_support:.4f}" in text

    def test_rule_explanation_shows_ri(self, mined):
        taxonomy, result = mined
        rule = result.rules[0]
        negative = next(
            n for n in result.negative_itemsets if n.items == rule.items
        )
        text = explain_rule(
            rule, negative, result.large_itemsets, taxonomy
        )
        assert "RI =" in text
        assert f"{rule.ri:.3f}" in text
        assert "=/=>" in text

    def test_explain_result_rule_lookup(self, mined):
        taxonomy, result = mined
        rule = result.rules[-1]
        text = explain_result_rule(
            rule, result.negative_itemsets, result.large_itemsets,
            taxonomy,
        )
        assert "negative itemset" in text

    def test_explain_unknown_rule_raises(self, mined):
        taxonomy, result = mined
        rule = result.rules[0]
        with pytest.raises(KeyError):
            explain_result_rule(
                rule, [], result.large_itemsets, taxonomy
            )

    def test_paper_style_perrier_explanation(self, mined):
        """The flagship rule's explanation reads like Section 2.1.3."""
        taxonomy, result = mined
        perrier = taxonomy.id_of("Perrier")
        bryers = taxonomy.id_of("Bryers")
        rule = next(
            r
            for r in result.rules
            if r.antecedent == (perrier,) and r.consequent == (bryers,)
        )
        text = explain_result_rule(
            rule, result.negative_itemsets, result.large_itemsets,
            taxonomy,
        )
        assert "Perrier" in text and "Bryers" in text
        assert "case:" in text
