"""Unit tests for database sampling (EstMerge substrate)."""

import random

import pytest

from repro.data.database import TransactionDatabase
from repro.data.sampling import sample_database
from repro.errors import ConfigError


@pytest.fixture
def database():
    return TransactionDatabase([[i] for i in range(200)])


class TestSampleDatabase:
    def test_sample_size_tracks_fraction(self, database):
        sample = sample_database(database, 0.5, rng=random.Random(1))
        assert 60 <= len(sample) <= 140  # loose binomial bounds

    def test_sample_rows_come_from_source(self, database):
        sample = sample_database(database, 0.3, rng=random.Random(2))
        source_rows = set(database)
        assert all(row in source_rows for row in sample)

    def test_full_fraction_keeps_everything(self, database):
        sample = sample_database(database, 1.0, rng=random.Random(3))
        assert len(sample) == len(database)

    def test_sampling_counts_a_pass(self, database):
        sample_database(database, 0.5, rng=random.Random(4))
        assert database.scans == 1

    def test_deterministic_with_seed(self, database):
        first = sample_database(database, 0.4, rng=random.Random(7))
        second = sample_database(database, 0.4, rng=random.Random(7))
        assert list(first) == list(second)

    def test_never_empty(self):
        tiny = TransactionDatabase([[1], [2]])
        sample = sample_database(tiny, 0.001, rng=random.Random(0))
        assert len(sample) >= 1

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_invalid_fraction_rejected(self, database, fraction):
        with pytest.raises(ConfigError):
            sample_database(database, fraction)
