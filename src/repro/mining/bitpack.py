"""NumPy bit-packed counting kernel: batched word-AND plus popcount.

The pure-Python engines count one candidate at a time against
arbitrary-precision integer bitmaps (``mask &= other; mask.bit_count()``).
That inner loop is the remaining hot path once the vertical index cache
has collapsed physical passes to ~1 (DESIGN.md §6). This module replaces
it with the word-packed vertical layout of the MAFIA / diffset literature
(Burdick et al. 2001; Zaki & Gouda 2003 — see PAPERS.md): every item owns
one row of ``ceil(n_rows / 64)`` little-endian ``uint64`` words, bit ``t``
of the row set when transaction ``t`` contains the item, and whole batches
of candidates are counted at once:

1. gather each candidate's item rows into a ``(batch, k, n_words)`` cube,
2. ``np.bitwise_and.reduce`` over the item axis — one intersection per
   candidate, all in C,
3. a vectorized popcount: ``np.bitwise_count`` where it exists
   (NumPy >= 2.0), otherwise view the result as ``uint8`` and sum a
   256-entry lookup table — the two paths return identical ``int64``
   counts, and the NumPy-1.x CI leg exercises the LUT fallback.

Packing is vectorized too: one Python-level flatten of the rows, then a
``searchsorted`` membership filter, a boolean scatter, and one
``np.packbits`` call — no arbitrary-precision integer arithmetic on the
hot path. Candidate slot resolution is equally array-shaped: each node's
row is resolved once, and whole ``(n, k)`` candidate blocks map to row
indices via ``searchsorted``.

The batching layer bounds peak memory: a batch never gathers more than
``batch_words`` 64-bit words (default ~16 MiB), so candidate sets of any
size stream through a fixed-size working set.

Generalized (taxonomy) counting never extends rows: a category's packed
row is the OR of its own and all its descendants' base rows
(``np.bitwise_or.reduce``), memoized per call — the same descendant-OR
argument as the cached engine's big-int path (DESIGN.md §6.1), and
bit-identical to per-row ``ancestor_closure`` extension (property-tested
against the ``"brute"`` oracle).

Consumers:

* :func:`count_rows` — the serial ``"numpy"`` engine
  (:mod:`repro.mining.counting`): pack one pass of rows, count all
  candidates.
* :func:`count_candidates` — the shared batched kernel, also driven by
  the packed :class:`~repro.mining.vertical.VerticalIndex` backend
  (``packed=True``) so the ``"cached"`` engine and packed shard-local
  indexes reuse exactly this code path.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Collection, Iterable
from itertools import chain

import numpy as np

from .._util import check_positive
from ..errors import ConfigError
from ..itemset import Itemset
from ..obs import api as obs
from ..taxonomy.tree import Taxonomy

#: Upper bound on the 64-bit words gathered per kernel batch — the
#: ``(batch, k, n_words)`` cube of step 1. 2**21 words = 16 MiB.
DEFAULT_BATCH_WORDS = 1 << 21

#: Per-byte population counts; indexing this with a ``uint8`` view of the
#: intersection words and summing is the popcount that works on both
#: NumPy 1.x and 2.x.
_POPCOUNT_LUT = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint8
)


def words_for(n_rows: int) -> int:
    """Number of 64-bit words holding one bit per transaction."""
    return (n_rows + 63) >> 6


def zeros(n_words: int) -> np.ndarray:
    """An all-absent packed row (shared zero row for unknown items)."""
    return np.zeros(n_words, dtype=np.uint64)


def pack_bigint(mask: int, n_words: int) -> np.ndarray:
    """An arbitrary-precision bitmap as little-endian ``uint64`` words.

    Bit ``t`` of *mask* lands in word ``t >> 6``, bit ``t & 63`` — rows
    that are not a multiple of 64 leave the tail of the last word zero,
    so popcounts need no masking.
    """
    return np.frombuffer(mask.to_bytes(n_words * 8, "little"), dtype="<u8")


def unpack_to_bigint(words: np.ndarray) -> int:
    """Inverse of :func:`pack_bigint`."""
    return int.from_bytes(np.ascontiguousarray(words).tobytes(), "little")


def _popcount_lut(words: np.ndarray) -> np.ndarray:
    """LUT popcount — the NumPy-1.x fallback (no ``np.bitwise_count``)."""
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return _POPCOUNT_LUT[as_bytes].sum(axis=-1, dtype=np.int64)


def _popcount_native(words: np.ndarray) -> np.ndarray:
    return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)


def popcount(words: np.ndarray) -> np.ndarray:
    """Population count over the last axis of a ``uint64`` array.

    ``(n_words,)`` input yields a scalar, ``(batch, n_words)`` a
    ``(batch,)`` vector of per-candidate counts. Uses the native
    ``np.bitwise_count`` ufunc on NumPy >= 2.0 and the byte-LUT path on
    1.x; both return identical ``int64`` counts.
    """
    return _POPCOUNT(words)


_POPCOUNT = (
    _popcount_native if hasattr(np, "bitwise_count") else _popcount_lut
)


def count_candidates(
    resolve: Callable[[int], np.ndarray],
    candidates: Collection[Itemset],
    n_words: int,
    batch_words: int | None = None,
    stats=None,
) -> dict[Itemset, int]:
    """Batched AND-of-rows + popcount for every candidate.

    *resolve(node)* returns the packed row of a node (base item row,
    derived category row, or a zero row for absent items); it is called
    once per distinct node. Candidates are grouped by size — the gather
    needs rectangular index blocks — and each size is streamed in batches
    whose gathered footprint stays under *batch_words* 64-bit words.
    *stats*, when given, has its ``kernel_batches`` attribute incremented
    once per executed batch and ``kernel_words`` by the 64-bit words the
    batch gathered (its work volume).
    """
    counts: dict[Itemset, int] = {}
    if not candidates:
        return counts
    if batch_words is None:
        budget = DEFAULT_BATCH_WORDS
    else:
        budget = check_positive(batch_words, "batch_words")
    by_size: dict[int, list[Itemset]] = defaultdict(list)
    unique_nodes: set[int] = set()
    for candidate in candidates:
        if not candidate:
            raise ConfigError("cannot count an empty candidate itemset")
        by_size[len(candidate)].append(candidate)
        unique_nodes.update(candidate)
    nodes = sorted(unique_nodes)
    matrix = np.vstack([resolve(node) for node in nodes])
    nodes_arr = np.asarray(nodes, dtype=np.int64)

    for size, group in by_size.items():
        # Whole candidate blocks map to row indices in one searchsorted —
        # every candidate node is in nodes_arr by construction.
        slots = np.searchsorted(
            nodes_arr, np.asarray(group, dtype=np.int64)
        )
        per_candidate_words = size * max(n_words, 1)
        batch = max(1, budget // per_candidate_words)
        for start in range(0, len(group), batch):
            block = slots[start:start + batch]
            masks = np.bitwise_and.reduce(matrix[block], axis=1)
            totals = popcount(masks)
            counts.update(zip(group[start:start + batch], totals.tolist()))
            if stats is not None:
                stats.kernel_batches += 1
                stats.kernel_words += len(block) * per_candidate_words
    return counts


class PackedMatrix:
    """Bit-packed vertical transaction matrix over one pass of rows.

    One ``uint64`` row of :func:`words_for` words per wanted item (items
    absent from the data keep an all-zero row); derived category rows (OR
    over descendants) are memoized per taxonomy for the lifetime of the
    matrix. The ``"numpy"`` engine builds one per counting pass; the
    long-lived packed storage lives in
    :class:`~repro.mining.vertical.VerticalIndex` instead.
    """

    __slots__ = (
        "n_rows", "n_words", "_nodes", "_matrix", "_slot", "_derived",
        "_zero",
    )

    def __init__(
        self, n_rows: int, nodes: np.ndarray, matrix: np.ndarray
    ) -> None:
        self.n_rows = n_rows
        self.n_words = words_for(n_rows)
        self._nodes = nodes
        self._matrix = matrix
        self._slot = {int(node): slot for slot, node in enumerate(nodes)}
        self._derived: dict[tuple[int, int], np.ndarray] = {}
        self._zero = zeros(self.n_words)

    @classmethod
    def from_rows(
        cls,
        transactions: Iterable[Itemset],
        wanted: Collection[int] | None = None,
    ) -> "PackedMatrix":
        """Pack one scan of *transactions*, keeping only *wanted* items.

        Entirely array-shaped after a single Python-level flatten: a
        ``searchsorted`` membership filter, one boolean scatter, and one
        little-endian ``np.packbits`` — the packed bytes reinterpret
        directly as the ``uint64`` word rows.
        """
        rows = (
            transactions
            if isinstance(transactions, (list, tuple))
            else list(transactions)
        )
        n_rows = len(rows)
        n_words = words_for(n_rows)
        lengths = np.fromiter(map(len, rows), dtype=np.int64, count=n_rows)
        items = np.fromiter(
            chain.from_iterable(rows),
            dtype=np.int64,
            count=int(lengths.sum()),
        )
        if wanted is None:
            nodes = np.unique(items)
        else:
            nodes = np.asarray(sorted(wanted), dtype=np.int64)
        if not len(nodes) or not len(items) or not n_words:
            matrix = np.zeros((len(nodes), n_words), dtype=np.uint64)
            return cls(n_rows, nodes, matrix)
        positions = np.repeat(np.arange(n_rows, dtype=np.int64), lengths)
        top = int(nodes[-1])
        if 0 <= top <= 4 * len(items) + 65536:
            # Dense node-id -> slot table: item ids are small here, so a
            # direct gather beats binary search over 10^4+ occurrences.
            table = np.full(top + 2, -1, dtype=np.int64)
            table[nodes] = np.arange(len(nodes), dtype=np.int64)
            clipped = np.clip(items, 0, top + 1)
            slots = table[clipped]
            present = (slots >= 0) & (items == clipped)
        else:
            slots = np.minimum(
                np.searchsorted(nodes, items), len(nodes) - 1
            )
            present = nodes[slots] == items
        bits = np.zeros((len(nodes), n_words * 64), dtype=bool)
        bits[slots[present], positions[present]] = True
        packed = np.packbits(bits, axis=1, bitorder="little")
        return cls(n_rows, nodes, packed.view("<u8"))

    @property
    def nodes(self) -> np.ndarray:
        """The sorted ``int64`` node ids owning matrix rows, slot order.

        Together with :attr:`words` this is the matrix's entire portable
        state: :mod:`repro.parallel.shm` copies both arrays into one
        shared-memory segment and rebuilds an identical matrix over
        zero-copy views on the worker side.
        """
        return self._nodes

    @property
    def words(self) -> np.ndarray:
        """The raw ``(n_items, n_words)`` ``uint64`` word matrix."""
        return self._matrix

    @property
    def nbytes(self) -> int:
        """Bytes held by the slot table plus the word matrix."""
        return int(self._nodes.nbytes) + int(self._matrix.nbytes)

    def row(self, node: int, taxonomy: Taxonomy | None = None) -> np.ndarray:
        """The packed row of *node*; generalized under a taxonomy.

        A category's row is the OR of its own and every descendant's base
        row (memoized). Items absent from the data — or unknown to the
        taxonomy — resolve to a shared zero row / their own base row, the
        same leniency as the cached engine (DESIGN.md §6.1).
        """
        if taxonomy is not None and node in taxonomy:
            if taxonomy.children(node):
                key = (id(taxonomy), node)
                derived = self._derived.get(key)
                if derived is None:
                    members = [
                        self._slot[member]
                        for member in (node, *taxonomy.descendants(node))
                        if member in self._slot
                    ]
                    if members:
                        derived = np.bitwise_or.reduce(
                            self._matrix[members], axis=0
                        )
                    else:
                        derived = self._zero
                    self._derived[key] = derived
                return derived
        slot = self._slot.get(node)
        return self._matrix[slot] if slot is not None else self._zero

    def count(
        self,
        candidates: Collection[Itemset],
        taxonomy: Taxonomy | None = None,
        batch_words: int | None = None,
        stats=None,
    ) -> dict[Itemset, int]:
        """Count every candidate with the batched kernel."""
        return count_candidates(
            lambda node: self.row(node, taxonomy),
            candidates,
            self.n_words,
            batch_words=batch_words,
            stats=stats,
        )

    def __repr__(self) -> str:
        return (
            f"PackedMatrix(rows={self.n_rows}, words={self.n_words}, "
            f"items={len(self._slot)})"
        )


def count_rows(
    transactions: Iterable[Itemset],
    candidates: Collection[Itemset],
    taxonomy: Taxonomy | None = None,
    batch_words: int | None = None,
    stats=None,
) -> dict[Itemset, int]:
    """The ``"numpy"`` engine: pack one pass of rows, count all candidates.

    Packing is restricted to the items that can influence some candidate
    (the candidates' own nodes plus, under a taxonomy, all their
    descendants) — the packed analogue of Cumulate's row filtering.
    Taxonomy candidates are matched by descendant-OR, so no per-row
    ancestor extension happens at all.
    """
    if not candidates:
        return {}
    wanted: set[int] = set()
    for candidate in candidates:
        wanted.update(candidate)
    if taxonomy is not None:
        for node in tuple(wanted):
            if node in taxonomy:
                wanted.update(taxonomy.descendants(node))
    with obs.span("kernel.pack") as span:
        matrix = PackedMatrix.from_rows(transactions, wanted)
        span.annotate("rows", matrix.n_rows)
        span.annotate("items", len(wanted))
    if stats is not None:
        # Gauge, not counter: the per-pass matrix footprint the
        # out-of-core engine exists to bound.
        stats.matrix_bytes = max(stats.matrix_bytes, matrix.nbytes)
    return matrix.count(
        candidates,
        taxonomy=taxonomy,
        batch_words=batch_words,
        stats=stats,
    )
