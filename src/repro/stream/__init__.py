"""Streaming incremental mining: watch a growing basket log, re-mine
appends, and push versioned rule-index deltas to the live server.

This package is the long-running glue between the incremental counting
substrate (:mod:`repro.data.filedb`, the ``"mmap"`` engine's append-only
sync, ``VerticalIndex.extend_from``) and the serving layer
(:mod:`repro.serve`):

* :mod:`.policy` — pluggable retrigger policies (``rows:N``,
  ``fraction:F``, ``interval:S``) deciding when a backlog of appended
  rows is worth a re-mine;
* :mod:`.delta` — :class:`RuleIndexDelta`, the versioned
  added/removed/changed difference between two compiled rule indexes,
  whose application is bit-identical to recompiling from scratch;
* :mod:`.watcher` — :class:`StreamingMiner`, the poll → retrigger →
  re-mine → diff → push loop, with crash-restart from file checkpoints;
* :mod:`.push` — delivery of deltas to a live server (TCP) or an
  in-process service.

See DESIGN.md §13 for the architecture and failure-mode analysis.
"""

from __future__ import annotations

from .delta import RuleIndexDelta
from .policy import (
    FractionPolicy,
    IntervalPolicy,
    RetriggerPolicy,
    RowCountPolicy,
    parse_policy,
)
from .push import push_to_server, push_to_service
from .watcher import StreamingMiner

__all__ = [
    "FractionPolicy",
    "IntervalPolicy",
    "RetriggerPolicy",
    "RowCountPolicy",
    "RuleIndexDelta",
    "StreamingMiner",
    "parse_policy",
    "push_to_server",
    "push_to_service",
]
