"""Taxonomy quality diagnostics (paper Section 2.1.3).

The paper argues that negative-rule quality depends on the taxonomy's
*granularity*: fine taxonomies (few children per category, more levels)
produce better expectations than coarse ones, because "as the number of
children or siblings in a category increases, the relative support of an
individual child or sibling decreases" and the expectation error grows.

This module quantifies exactly those properties so users can judge a
taxonomy before mining:

* structural profile — node/leaf/category counts, depth histogram,
  fan-out distribution;
* :func:`granularity_report` — the paper's two warning signs, measured:
  the expected relative support of a child (``1 / fanout``) per category,
  and the candidate blow-up factor of Section 2.1.2;
* :func:`category_balance` — how evenly transactions distribute over a
  category's children (entropy-based), a direct check of the uniformity
  assumption on real data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import TaxonomyError
from .tree import Taxonomy


@dataclass(frozen=True, slots=True)
class TaxonomyProfile:
    """Structural summary of a taxonomy."""

    nodes: int
    leaves: int
    categories: int
    roots: int
    height: int
    average_fanout: float
    max_fanout: int
    depth_histogram: dict[int, int] = field(hash=False)
    fanout_histogram: dict[int, int] = field(hash=False)


def profile(taxonomy: Taxonomy) -> TaxonomyProfile:
    """Compute the structural profile of *taxonomy*."""
    depth_histogram: dict[int, int] = {}
    for node in taxonomy.nodes:
        depth = taxonomy.depth(node)
        depth_histogram[depth] = depth_histogram.get(depth, 0) + 1
    fanout_histogram: dict[int, int] = {}
    max_fanout = 0
    for category in taxonomy.categories:
        fanout = len(taxonomy.children(category))
        fanout_histogram[fanout] = fanout_histogram.get(fanout, 0) + 1
        max_fanout = max(max_fanout, fanout)
    return TaxonomyProfile(
        nodes=len(taxonomy),
        leaves=len(taxonomy.leaves),
        categories=len(taxonomy.categories),
        roots=len(taxonomy.roots),
        height=taxonomy.height,
        average_fanout=taxonomy.fanout(),
        max_fanout=max_fanout,
        depth_histogram=dict(sorted(depth_histogram.items())),
        fanout_histogram=dict(sorted(fanout_histogram.items())),
    )


@dataclass(frozen=True, slots=True)
class GranularityFinding:
    """One category flagged by the granularity check."""

    category: int
    fanout: int
    expected_child_share: float


def granularity_report(
    taxonomy: Taxonomy, coarse_fanout: int = 20
) -> list[GranularityFinding]:
    """Categories whose fan-out endangers expectation quality.

    Parameters
    ----------
    taxonomy:
        The taxonomy to inspect.
    coarse_fanout:
        Categories with at least this many children are flagged — at
        fan-out 100 "the relative support will drop to 1 %", the paper's
        own example of a taxonomy too coarse to predict well.

    Returns
    -------
    list of GranularityFinding, worst (highest fan-out) first.
    """
    if coarse_fanout < 2:
        raise TaxonomyError(
            f"coarse_fanout must be >= 2, got {coarse_fanout}"
        )
    findings = [
        GranularityFinding(
            category=category,
            fanout=len(taxonomy.children(category)),
            expected_child_share=1.0 / len(taxonomy.children(category)),
        )
        for category in taxonomy.categories
        if len(taxonomy.children(category)) >= coarse_fanout
    ]
    findings.sort(key=lambda finding: -finding.fanout)
    return findings


def category_balance(
    taxonomy: Taxonomy, item_counts: dict[int, int], category: int
) -> float:
    """Normalized entropy of a category's children in the data.

    Returns a value in ``[0, 1]``: 1 means transactions spread perfectly
    evenly over the children (the uniformity assumption holds exactly),
    0 means a single child absorbs everything (expectations computed from
    the category will be badly wrong for the rest).

    Parameters
    ----------
    taxonomy:
        The taxonomy.
    item_counts:
        Occurrence counts per item, e.g.
        :meth:`repro.data.TransactionDatabase.item_counts`. Category
        counts are derived by summing leaf descendants.
    category:
        The category to score; must have at least two children.
    """
    children = taxonomy.children(category)
    if len(children) < 2:
        raise TaxonomyError(
            f"node {category} has fewer than 2 children; "
            "balance is undefined"
        )
    weights = []
    for child in children:
        weight = sum(
            item_counts.get(leaf, 0)
            for leaf in taxonomy.leaf_descendants(child)
        )
        weights.append(weight)
    total = sum(weights)
    if total == 0:
        return 1.0  # no data: vacuously balanced
    entropy = 0.0
    for weight in weights:
        if weight:
            share = weight / total
            entropy -= share * math.log(share)
    return entropy / math.log(len(children))


def format_profile(taxonomy_profile: TaxonomyProfile) -> str:
    """Render a profile as a short report block."""
    lines = [
        f"nodes={taxonomy_profile.nodes} "
        f"leaves={taxonomy_profile.leaves} "
        f"categories={taxonomy_profile.categories} "
        f"roots={taxonomy_profile.roots}",
        f"height={taxonomy_profile.height} "
        f"avg_fanout={taxonomy_profile.average_fanout:.2f} "
        f"max_fanout={taxonomy_profile.max_fanout}",
        f"depth histogram : {taxonomy_profile.depth_histogram}",
        f"fanout histogram: {taxonomy_profile.fanout_histogram}",
    ]
    return "\n".join(lines)
