"""Classical interestingness measures.

The paper's RI is "only one measure of interestingness" (its own footnote);
this subpackage provides the standard complementary measures — lift,
leverage (Piatetsky-Shapiro, paper ref [9]), conviction, and the chi-square
statistic — so users can cross-score both positive and negative rules.
"""

from .information import expected_itemset_support, surprise_bits
from .metrics import (
    chi_square,
    confidence,
    conviction,
    leverage,
    lift,
    negative_confidence,
)
from .scoring import RuleScores, score_negative_rule, score_positive_rule

__all__ = [
    "confidence",
    "lift",
    "leverage",
    "conviction",
    "chi_square",
    "negative_confidence",
    "RuleScores",
    "score_negative_rule",
    "score_positive_rule",
    "surprise_bits",
    "expected_itemset_support",
]
