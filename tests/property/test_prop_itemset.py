"""Property-based tests for itemset primitives."""

from hypothesis import given
from hypothesis import strategies as st

from repro.itemset import (
    difference,
    is_canonical,
    is_subset,
    itemset,
    proper_nonempty_subsets,
    union,
)

items_lists = st.lists(st.integers(min_value=0, max_value=200), max_size=12)
canonical = items_lists.map(itemset)
small_canonical = st.lists(
    st.integers(min_value=0, max_value=30), min_size=1, max_size=6
).map(itemset).filter(lambda s: len(s) >= 1)


@given(items_lists)
def test_itemset_is_canonical(raw):
    assert is_canonical(itemset(raw))


@given(items_lists)
def test_itemset_idempotent(raw):
    once = itemset(raw)
    assert itemset(once) == once


@given(canonical, canonical)
def test_union_matches_set_semantics(left, right):
    assert union(left, right) == itemset(set(left) | set(right))


@given(canonical, canonical)
def test_union_commutative(left, right):
    assert union(left, right) == union(right, left)


@given(canonical, canonical)
def test_difference_matches_set_semantics(left, right):
    assert difference(left, right) == itemset(set(left) - set(right))


@given(canonical, canonical)
def test_is_subset_matches_set_semantics(left, right):
    assert is_subset(left, right) == (set(left) <= set(right))


@given(canonical)
def test_self_subset(items):
    assert is_subset(items, items)


@given(small_canonical)
def test_proper_subsets_count(items):
    subsets = proper_nonempty_subsets(items)
    assert len(subsets) == 2 ** len(items) - 2
    assert len(set(subsets)) == len(subsets)
    for subset in subsets:
        assert is_subset(subset, items)
        assert subset != items
        assert subset != ()


@given(canonical, canonical)
def test_union_difference_round_trip(left, right):
    merged = union(left, right)
    assert union(difference(merged, right), right) == merged
