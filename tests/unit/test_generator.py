"""Unit tests for synthetic transaction emission."""

import numpy as np
import pytest

from repro.synthetic.generator import generate_dataset, generate_transactions
from repro.synthetic.params import GeneratorParams


@pytest.fixture(scope="module")
def dataset():
    params = GeneratorParams(
        num_transactions=400,
        num_items=300,
        num_roots=5,
        num_clusters=30,
        fanout=5.0,
        avg_transaction_size=8.0,
    )
    return generate_dataset(params, seed=123)


class TestGenerateDataset:
    def test_transaction_count(self, dataset):
        assert len(dataset.database) == 400

    def test_transactions_contain_only_leaves(self, dataset):
        leaves = dataset.taxonomy.leaves
        for row in dataset.database:
            assert all(item in leaves for item in row)

    def test_average_length_near_parameter(self, dataset):
        # Itemset assignment overshoots the Poisson target slightly
        # (the last itemset is added whole), so allow generous slack.
        average = dataset.database.average_length()
        assert 4.0 <= average <= 16.0

    def test_deterministic_with_seed(self, dataset):
        again = generate_dataset(dataset.params, seed=123)
        assert list(again.database) == list(dataset.database)
        assert again.taxonomy.parent_map() == dataset.taxonomy.parent_map()

    def test_different_seed_differs(self, dataset):
        other = generate_dataset(dataset.params, seed=124)
        assert list(other.database) != list(dataset.database)

    def test_provenance_recorded(self, dataset):
        assert dataset.seed == 123
        assert dataset.params.num_transactions == 400


class TestGenerateTransactions:
    def test_rows_come_from_model_itemsets(self, dataset):
        model_items = {
            item
            for cluster in dataset.model.clusters
            for items in cluster.itemsets
            for item in items
        }
        for row in dataset.database:
            assert set(row) <= model_items

    def test_respects_num_transactions(self, dataset):
        params = GeneratorParams(
            num_transactions=37,
            num_items=300,
            num_roots=5,
            num_clusters=30,
            fanout=5.0,
        )
        database = generate_transactions(
            dataset.model, params, np.random.default_rng(1)
        )
        assert len(database) == 37

    def test_no_empty_transactions(self, dataset):
        assert all(len(row) >= 1 for row in dataset.database)


class TestStatisticalShape:
    def test_popular_clusters_dominate(self, dataset):
        """Exponential weights: some itemsets occur far more than others."""
        counts = dataset.database.item_counts()
        values = sorted(counts.values(), reverse=True)
        top_share = sum(values[:20]) / sum(values)
        assert top_share > 0.3

    def test_mining_finds_positive_structure(self, dataset):
        """Cluster itemsets should surface as frequent pairs."""
        from repro.mining.apriori import find_large_itemsets

        index = find_large_itemsets(dataset.database, 0.03, max_size=2)
        assert index.of_size(2)
