"""Unit tests for the counting-engine layer and ``count_supports``."""

import pytest

from repro.errors import ConfigError
from repro.mining.counting import count_supports
from repro.mining.engines import count_pass, create_engine, engine_names
from repro.taxonomy.builders import taxonomy_from_parents

ROWS = [(1, 2, 3), (2, 3), (1, 3), (3,), (1, 2)]
CANDIDATES = [(1,), (2, 3), (1, 2, 3), (4,), (1, 3)]
EXPECTED = {(1,): 3, (2, 3): 2, (1, 2, 3): 1, (4,): 0, (1, 3): 2}


def count(engine_spec, rows, candidates, taxonomy=None, restrict=False):
    """One counting pass through the registry, as the session does it."""
    engine = create_engine(engine_spec)
    return count_pass(
        engine,
        engine.prepare(rows, taxonomy),
        candidates,
        restrict_to_candidate_items=restrict,
    )


class TestEnginesAgree:
    @pytest.mark.parametrize("engine", engine_names())
    def test_counts(self, engine):
        assert count(engine, ROWS, CANDIDATES) == EXPECTED

    @pytest.mark.parametrize("engine", engine_names())
    def test_empty_candidates(self, engine):
        assert count(engine, ROWS, []) == {}

    @pytest.mark.parametrize("engine", engine_names())
    def test_empty_candidates_never_touch_transactions(self, engine):
        """The empty fast path must not consume (or even start) a scan.

        Sharded calls with filtered-out candidates rely on this: they may
        issue many counting calls per pass and must not pay mask/tree
        setup — or iterator consumption — for empty ones.
        """

        def explode():
            raise AssertionError("transactions were consumed")
            yield  # pragma: no cover

        assert count(engine, explode(), []) == {}
        assert count(engine, explode(), ()) == {}

    @pytest.mark.parametrize("engine", engine_names())
    def test_empty_candidates_with_taxonomy_short_circuit(self, engine):
        taxonomy = taxonomy_from_parents({1: 0, 2: 0})

        def explode():
            raise AssertionError("transactions were consumed")
            yield  # pragma: no cover

        assert count(engine, explode(), [], taxonomy=taxonomy) == {}

    @pytest.mark.parametrize("engine", engine_names())
    def test_empty_candidate_itemset_rejected(self, engine):
        """An empty candidate must fail loudly on every engine.

        Historically the bitmap engine raised a bare ``IndexError`` on
        ``candidate[0]`` while other engines silently returned a bogus
        full-database count (an empty AND is the identity mask). The
        contract is now uniform: :class:`ConfigError` in the registry's
        precheck, before any engine dispatch.
        """
        with pytest.raises(ConfigError, match="empty candidate"):
            count(engine, ROWS, [(1,), ()])

    @pytest.mark.parametrize("engine", engine_names())
    def test_empty_candidate_rejected_before_scan(self, engine):
        def explode():
            raise AssertionError("transactions were consumed")
            yield  # pragma: no cover

        with pytest.raises(ConfigError, match="empty candidate"):
            count(engine, explode(), [()])

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown counting engine"):
            count("quantum", ROWS, CANDIDATES)

    def test_unknown_engine_rejected_even_with_empty_candidates(self):
        with pytest.raises(ConfigError, match="unknown counting engine"):
            count("quantum", ROWS, [])


class TestGeneralizedCounting:
    @pytest.fixture
    def taxonomy(self):
        # 0 -> (1, 2); 10 -> (3,); isolated 4.
        return taxonomy_from_parents({1: 0, 2: 0, 3: 10}, extra_roots=[4])

    @pytest.mark.parametrize("engine", engine_names())
    def test_category_counts_cover_descendants(self, taxonomy, engine):
        rows = [(1,), (2,), (3,), (1, 3)]
        counts = count(
            engine, rows, [(0,), (10,), (0, 10)], taxonomy=taxonomy
        )
        assert counts == {(0,): 3, (10,): 2, (0, 10): 1}

    @pytest.mark.parametrize("engine", engine_names())
    def test_leaf_candidates_unchanged_by_extension(self, taxonomy, engine):
        rows = [(1,), (1, 2)]
        counts = count(engine, rows, [(1,), (1, 2)], taxonomy=taxonomy)
        assert counts == {(1,): 2, (1, 2): 1}

    def test_restriction_does_not_change_counts(self, taxonomy):
        rows = [(1, 3), (2, 4), (1, 2, 3)]
        candidates = [(0,), (0, 10)]
        plain = count("bitmap", rows, candidates, taxonomy=taxonomy)
        restricted = count(
            "bitmap", rows, candidates, taxonomy=taxonomy, restrict=True
        )
        assert plain == restricted

    def test_mixed_level_candidate(self, taxonomy):
        # {leaf 1, category 10} matched through ancestor extension.
        rows = [(1, 3), (1,), (3,)]
        counts = count("bitmap", rows, [(1, 10)], taxonomy=taxonomy)
        assert counts == {(1, 10): 1}


class TestMixedSizeCandidates:
    @pytest.mark.parametrize("engine", engine_names())
    def test_sizes_one_to_three_in_one_call(self, engine):
        counts = count(engine, ROWS, [(3,), (1, 2), (1, 2, 3)])
        assert counts == {(3,): 4, (1, 2): 2, (1, 2, 3): 1}


class TestCountSupportsPlainForm:
    """Only the plain ``count_supports`` form survives the shim removal."""

    def test_plain_call_counts(self):
        assert count_supports(ROWS, CANDIDATES) == EXPECTED

    def test_taxonomy_positional(self):
        taxonomy = taxonomy_from_parents({1: 0, 2: 0})
        counts = count_supports([(1,), (2,)], [(0,)], taxonomy)
        assert counts == {(0,): 2}

    def test_policy_kwargs_removed(self):
        """The deprecated policy surface is gone, not silently ignored."""
        for kwarg in (
            "engine", "n_jobs", "shard_rows", "use_cache", "cache_bytes",
            "packed", "batch_words", "cache_stats", "parallel_stats",
        ):
            with pytest.raises(TypeError, match="unexpected keyword"):
                count_supports(ROWS, CANDIDATES, **{kwarg: 1})
