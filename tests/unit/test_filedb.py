"""Unit tests for the disk-backed streaming database."""

import pytest

from repro.core.api import mine_negative_rules
from repro.data.database import TransactionDatabase
from repro.data.filedb import FileBackedDatabase
from repro.data.io import save_basket_file
from repro.errors import DatabaseError
from repro.mining.apriori import find_large_itemsets
from repro.taxonomy.builders import taxonomy_from_nested


@pytest.fixture
def basket_path(tmp_path):
    database = TransactionDatabase(
        [[1, 2, 3], [1, 2], [2, 3], [4], [1, 2, 3, 4]]
    )
    path = tmp_path / "data.basket"
    save_basket_file(database, path)
    return path


class TestFileBackedDatabase:
    def test_rows_match_file(self, basket_path):
        database = FileBackedDatabase(basket_path)
        assert list(database) == [
            (1, 2, 3), (1, 2), (2, 3), (4,), (1, 2, 3, 4)
        ]

    def test_len_and_stats(self, basket_path):
        database = FileBackedDatabase(basket_path)
        assert len(database) == 5
        assert database.items == {1, 2, 3, 4}
        assert database.average_length() == pytest.approx(12 / 5)

    def test_scan_counting(self, basket_path):
        database = FileBackedDatabase(basket_path)
        assert database.scans == 0  # validation read not counted
        list(database.scan())
        list(database.scan())
        assert database.scans == 2
        database.reset_scans()
        assert database.scans == 0

    def test_each_scan_rereads_the_file(self, basket_path):
        database = FileBackedDatabase(basket_path)
        first = list(database.scan())
        # Mutate the file between passes: the next scan must see it.
        with open(basket_path, "a", encoding="utf-8") as handle:
            handle.write("7 8\n")
        second = list(database.scan())
        assert len(second) == len(first) + 1

    def test_absolute_and_fraction(self, basket_path):
        database = FileBackedDatabase(basket_path)
        assert database.absolute(0.4) == pytest.approx(2.0)
        assert database.fraction(2) == pytest.approx(0.4)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DatabaseError, match="cannot open"):
            FileBackedDatabase(tmp_path / "nope.basket")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.basket"
        path.write_text("# nothing\n")
        with pytest.raises(DatabaseError, match="no transactions"):
            FileBackedDatabase(path)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.basket"
        path.write_text("1 2\nx\n")
        with pytest.raises(DatabaseError, match="malformed"):
            FileBackedDatabase(path)

    def test_repr(self, basket_path):
        assert "transactions=5" in repr(FileBackedDatabase(basket_path))


class TestMinersOnFileBackedData:
    def test_apriori_matches_in_memory(self, basket_path):
        in_memory = TransactionDatabase(
            [[1, 2, 3], [1, 2], [2, 3], [4], [1, 2, 3, 4]]
        )
        from_disk = FileBackedDatabase(basket_path)
        assert find_large_itemsets(from_disk, 0.4) == find_large_itemsets(
            in_memory, 0.4
        )

    def test_full_pipeline_streams_from_disk(self, tmp_path):
        taxonomy = taxonomy_from_nested(
            {"drinks": {"soda": ["cola", "lemonade"], "water": ["still"]}}
        )
        cola = taxonomy.id_of("cola")
        lemonade = taxonomy.id_of("lemonade")
        still = taxonomy.id_of("still")
        rows = [[cola, still]] * 40 + [[lemonade]] * 40 + [[cola]] * 20
        path = tmp_path / "pipe.basket"
        save_basket_file(TransactionDatabase(rows), path)

        from_disk = FileBackedDatabase(path)
        result = mine_negative_rules(
            from_disk, taxonomy, minsup=0.2, minri=0.3
        )
        reference = mine_negative_rules(
            TransactionDatabase(rows), taxonomy, minsup=0.2, minri=0.3
        )
        assert {
            (rule.antecedent, rule.consequent) for rule in result.rules
        } == {
            (rule.antecedent, rule.consequent) for rule in reference.rules
        }
        assert from_disk.scans == result.stats.data_passes
