"""Unit tests for the parallel counting engine and partition driver."""

import multiprocessing
import os

import pytest

import repro.parallel.engine as engine_module
from repro.core.api import MiningConfig, mine_negative_rules
from repro.errors import ConfigError
from repro.mining.apriori import find_large_itemsets
from repro.core.session import MiningSession
from repro.mining.partition import find_large_itemsets_partition
from repro.parallel.engine import (
    ParallelStats,
    parallel_count_supports,
    parallel_partition,
)
from repro.parallel.pool import PoolConfig

CANDIDATES = [(1,), (2,), (1, 2), (2, 3), (1, 2, 3), (4, 5), (6,)]


_REAL_COUNT_SHARD = engine_module._count_shard


def _crashy_count(payload):
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return _REAL_COUNT_SHARD(payload)


class TestParallelCounting:
    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_matches_serial_engine(self, small_database, n_jobs):
        rows = list(small_database)
        expected = MiningSession(rows, engine="bitmap").count(CANDIDATES)
        stats = ParallelStats()
        counts = parallel_count_supports(
            rows, CANDIDATES, n_jobs=n_jobs, stats=stats
        )
        assert counts == expected
        assert stats.shards >= 1

    def test_shard_rows_sizing_changes_no_counts(self, small_database):
        rows = list(small_database)
        expected = MiningSession(rows, engine="bitmap").count(CANDIDATES)
        stats = ParallelStats()
        counts = parallel_count_supports(
            rows, CANDIDATES, n_jobs=2, shard_rows=7, stats=stats
        )
        assert counts == expected
        assert stats.shards == 6  # ceil(40 / 7)

    def test_generalized_counting_matches(
        self, soft_drinks_database, soft_drinks_taxonomy
    ):
        rows = list(soft_drinks_database)
        nodes = sorted(soft_drinks_taxonomy.nodes)
        candidates = [(node,) for node in nodes[:6]] + [tuple(nodes[:2])]
        expected = MiningSession(
            rows, soft_drinks_taxonomy, "brute"
        ).count(candidates, restrict_to_candidate_items=True)
        counts = parallel_count_supports(
            rows,
            candidates,
            taxonomy=soft_drinks_taxonomy,
            restrict_to_candidate_items=True,
            n_jobs=3,
        )
        assert counts == expected

    def test_empty_candidates_short_circuit(self):
        assert parallel_count_supports([(1,)], [], n_jobs=4) == {}

    def test_empty_transactions_count_zero(self):
        counts = parallel_count_supports([], CANDIDATES, n_jobs=4)
        assert counts == dict.fromkeys(CANDIDATES, 0)

    def test_session_routes_parallel_engine(self, small_database):
        rows = list(small_database)
        expected = MiningSession(rows, engine="bitmap").count(CANDIDATES)
        assert MiningSession(
            rows, engine="parallel", n_jobs=2
        ).count(CANDIDATES) == expected
        # A shardable serial spec with n_jobs > 1 auto-wraps.
        assert MiningSession(
            rows, engine="index", n_jobs=2
        ).count(CANDIDATES) == expected

    def test_crashed_workers_retry_then_fall_back(
        self, small_database, monkeypatch
    ):
        monkeypatch.setattr(engine_module, "_count_shard", _crashy_count)
        rows = list(small_database)
        expected = MiningSession(rows, engine="bitmap").count(CANDIDATES)
        stats = ParallelStats()
        counts = parallel_count_supports(
            rows,
            CANDIDATES,
            n_jobs=2,
            pool_config=PoolConfig(n_jobs=2, retries=1, backoff=0.0),
            stats=stats,
        )
        assert counts == expected  # correct despite every worker dying
        assert stats.worker_crashes == 4
        assert stats.worker_retries == 2
        assert stats.worker_fallbacks == 2


class TestParallelPartition:
    def test_matches_serial_partition_and_apriori(self, random_database):
        random_database.reset_scans()
        reference = find_large_itemsets_partition(
            random_database, 0.08, partitions=4
        )
        assert random_database.scans == 2
        random_database.reset_scans()
        stats = ParallelStats()
        parallel = parallel_partition(
            random_database, 0.08, n_jobs=4, stats=stats
        )
        assert random_database.scans == 2  # sharding preserves pass count
        assert sorted(parallel) == sorted(reference)
        for items in reference:
            assert parallel.support(items) == reference.support(items)
        apriori = find_large_itemsets(random_database, 0.08)
        assert sorted(parallel) == sorted(apriori)
        assert stats.shards >= 2

    def test_serial_n_jobs_one(self, small_database):
        small_database.reset_scans()
        reference = find_large_itemsets_partition(
            small_database, 0.2, partitions=2
        )
        small_database.reset_scans()
        result = parallel_partition(
            small_database, 0.2, n_jobs=1, partitions=2
        )
        assert sorted(result) == sorted(reference)

    def test_high_minsup_yields_empty_index(self, small_database):
        result = parallel_partition(small_database, 1.0, n_jobs=2)
        assert len(result) == 0

    def test_rejects_bad_minsup(self, small_database):
        with pytest.raises(ConfigError):
            parallel_partition(small_database, 0.0, n_jobs=2)


class TestPipelineWiring:
    def test_mine_negative_rules_n_jobs_matches_serial(
        self, soft_drinks_database, soft_drinks_taxonomy
    ):
        serial = mine_negative_rules(
            soft_drinks_database, soft_drinks_taxonomy,
            minsup=0.1, minri=0.3,
        )
        parallel = mine_negative_rules(
            soft_drinks_database, soft_drinks_taxonomy,
            minsup=0.1, minri=0.3, n_jobs=2,
        )
        assert [rule.format(soft_drinks_taxonomy)
                for rule in serial.rules] == [
            rule.format(soft_drinks_taxonomy) for rule in parallel.rules
        ]
        assert parallel.stats.data_passes == serial.stats.data_passes
        assert parallel.stats.shards > 0
        assert parallel.stats.worker_tasks > 0
        assert serial.stats.shards == 0

    def test_naive_miner_threads_n_jobs(
        self, soft_drinks_database, soft_drinks_taxonomy
    ):
        serial = mine_negative_rules(
            soft_drinks_database, soft_drinks_taxonomy,
            minsup=0.1, minri=0.3, miner="naive",
        )
        parallel = mine_negative_rules(
            soft_drinks_database, soft_drinks_taxonomy,
            minsup=0.1, minri=0.3, miner="naive", n_jobs=2,
        )
        assert [n.items for n in serial.negative_itemsets] == [
            n.items for n in parallel.negative_itemsets
        ]
        assert parallel.stats.shards > 0

    def test_summary_reports_shards(
        self, soft_drinks_database, soft_drinks_taxonomy
    ):
        result = mine_negative_rules(
            soft_drinks_database, soft_drinks_taxonomy,
            minsup=0.1, minri=0.3, n_jobs=2,
        )
        assert "shards" in result.summary(soft_drinks_taxonomy)

    def test_config_validates_parallel_fields(self):
        with pytest.raises(ConfigError):
            MiningConfig(n_jobs=0)
        with pytest.raises(ConfigError):
            MiningConfig(shard_rows=0)
        assert MiningConfig(n_jobs=4, shard_rows=100).n_jobs == 4

    def test_parallel_engine_name_accepted_by_config(self):
        assert MiningConfig(engine="parallel").engine == "parallel"
