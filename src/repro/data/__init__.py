"""Transaction database substrate.

The paper's cost model is *passes over the data* — the Naive negative miner
makes two passes per level, the Improved one n + 1 in total — so the central
class here, :class:`~repro.data.database.TransactionDatabase`, counts full
scans and exposes that counter to the benchmark harness. The subpackage also
provides simple text IO for baskets and taxonomies, and sampling (needed by
the EstMerge generalized miner).
"""

from .database import TransactionDatabase
from .filedb import FileBackedDatabase
from .io import (
    load_basket_file,
    load_taxonomy_file,
    save_basket_file,
    save_taxonomy_file,
)
from .sampling import sample_database

__all__ = [
    "TransactionDatabase",
    "FileBackedDatabase",
    "load_basket_file",
    "save_basket_file",
    "load_taxonomy_file",
    "save_taxonomy_file",
    "sample_database",
]
