"""Unit tests for taxonomy convenience constructors."""

import pytest

from repro.errors import TaxonomyError
from repro.taxonomy.builders import (
    taxonomy_from_edges,
    taxonomy_from_nested,
    taxonomy_from_parents,
)


class TestFromParents:
    def test_basic(self):
        taxonomy = taxonomy_from_parents({1: 0, 2: 0})
        assert taxonomy.children(0) == (1, 2)

    def test_names_and_extra_roots(self):
        taxonomy = taxonomy_from_parents(
            {1: 0}, names={0: "top"}, extra_roots=[9]
        )
        assert taxonomy.name_of(0) == "top"
        assert 9 in taxonomy


class TestFromEdges:
    def test_ids_in_first_appearance_order(self):
        taxonomy = taxonomy_from_edges(
            [("food", "fruit"), ("fruit", "apple")]
        )
        assert taxonomy.id_of("food") == 0
        assert taxonomy.id_of("fruit") == 1
        assert taxonomy.id_of("apple") == 2

    def test_structure(self):
        taxonomy = taxonomy_from_edges(
            [("food", "fruit"), ("food", "dairy"), ("fruit", "apple")]
        )
        fruit = taxonomy.id_of("fruit")
        assert taxonomy.parent(fruit) == taxonomy.id_of("food")
        assert taxonomy.id_of("apple") in taxonomy.leaves

    def test_repeated_edge_is_idempotent(self):
        taxonomy = taxonomy_from_edges(
            [("food", "fruit"), ("food", "fruit")]
        )
        assert len(taxonomy) == 2

    def test_two_parents_rejected(self):
        with pytest.raises(TaxonomyError):
            taxonomy_from_edges([("a", "c"), ("b", "c")])

    def test_isolated_items(self):
        taxonomy = taxonomy_from_edges(
            [("food", "fruit")], isolated=["misc"]
        )
        misc = taxonomy.id_of("misc")
        assert misc in taxonomy.leaves
        assert taxonomy.parent(misc) is None

    def test_names_attached(self):
        taxonomy = taxonomy_from_edges([("food", "fruit")])
        assert taxonomy.name_of(taxonomy.id_of("fruit")) == "fruit"


class TestFromNested:
    def test_mixed_nesting(self):
        taxonomy = taxonomy_from_nested(
            {
                "store": {
                    "drinks": ["coke", "water"],
                    "food": {"fruit": ["apple"]},
                }
            }
        )
        drinks = taxonomy.id_of("drinks")
        assert taxonomy.parent(drinks) == taxonomy.id_of("store")
        assert taxonomy.id_of("apple") in taxonomy.leaves
        assert taxonomy.depth(taxonomy.id_of("apple")) == 3

    def test_empty_sequence_makes_leaf_category(self):
        taxonomy = taxonomy_from_nested({"store": {"misc": []}})
        misc = taxonomy.id_of("misc")
        assert taxonomy.is_leaf(misc)

    def test_multiple_roots(self):
        taxonomy = taxonomy_from_nested(
            {"a": ["x"], "b": ["y"]}
        )
        assert len(taxonomy.roots) == 2

    def test_non_string_leaf_rejected(self):
        with pytest.raises(TaxonomyError):
            taxonomy_from_nested({"store": [1, 2]})

    def test_non_mapping_top_level_rejected(self):
        with pytest.raises(TaxonomyError):
            taxonomy_from_nested(["store"])

    def test_same_name_reused_across_branches_rejected(self):
        # "x" would need two parents.
        with pytest.raises(TaxonomyError):
            taxonomy_from_nested({"a": ["x"], "b": ["x"]})
