"""MiningSession: one execution context from the CLI down to the kernel.

Before this module existed, every layer of the pipeline threaded the
same ~8 engine kwargs (``engine``, ``n_jobs``, ``use_cache``,
``cache_bytes``, ``cache_stats``, ``packed``, ``batch_words``, …) from
:class:`~repro.core.api.MiningConfig` through the miners down to
``count_supports``. A :class:`MiningSession` binds all of it once —
database, taxonomy, the resolved :class:`~repro.mining.engines.
CountingEngine`, cache/parallel policy and the observability sinks — and
is the only object passed down. ``count_supports`` survives only in
its plain default-engine form (:mod:`repro.mining.counting`); the
policy-kwargs shim was removed in PR 7.

Lifecycle
---------
``MiningSession.from_config`` resolves the config's engine spec through
the registry (including ``"parallel:<inner>"`` compositions and the
``n_jobs > 1`` auto-wrap). ``prepare()`` runs once per session for the
bound database, so engines with per-database state build it a single
time. Each miner ``mine()`` run brackets itself with :meth:`begin_run`
(fresh per-run stats accumulators — a second run never reports the
first run's numbers) and :meth:`publish_run` (folds the run's private
registries into the active observability session).
"""

from __future__ import annotations

import contextlib
from collections.abc import Collection
from typing import Any

from ..errors import ConfigError
from ..itemset import Itemset
from ..measures.registry import (
    DEFAULT_MEASURE,
    InterestMeasure,
    MeasurePolicy,
    create_measure,
)
from ..mining.engines import (
    DEFAULT_ENGINE,
    CountingEngine,
    EnginePolicy,
    EngineState,
    count_pass,
    create_engine,
)
from ..mining.vertical import CacheStats
from ..obs import api as obs
from ..parallel.engine import ParallelStats
from ..taxonomy.tree import Taxonomy

_UNSET = object()

#: Valid run kinds for :meth:`MiningSession.begin_run`. The kind
#: prefixes the headline counters :meth:`MiningSession.publish_run`
#: folds into the observability registry — ``mine.*`` for offline
#: mining runs, ``serving.*`` for on-demand selective generation inside
#: the serving layer, ``streaming.*`` for the incremental re-mines of
#: the streaming watcher — so a service process that also mines never
#: pollutes the offline counters.
RUN_KINDS = ("mine", "serving", "streaming")


class MiningSession:
    """Database + taxonomy + resolved engine + policy, bound once.

    Parameters
    ----------
    transactions:
        The scan-counted database (required for the caching engines to
        persist their index) or plain rows.
    taxonomy:
        Default taxonomy for :meth:`count`; ``None`` for flat mining.
    engine:
        An engine spec (``"bitmap"``, ``"parallel:numpy"``, …) or an
        already-built :class:`CountingEngine`.
    n_jobs, shard_rows:
        Parallel policy. ``n_jobs > 1`` auto-wraps a serial engine spec
        in the parallel wrapper; ``None`` leaves serial engines serial
        (and means one worker per CPU for explicit ``parallel`` specs).
    use_cache, cache_bytes, packed, batch_words:
        Cache/kernel policy consumed by the engines that understand it.
    segment_rows, max_resident_bytes, spill_dir:
        Out-of-core policy for the ``"mmap"`` engine: rows per spilled
        segment, the budget for concurrently open segment blocks, and
        the parent directory for the temporary spill directory.
    shm:
        Upgrade parallel counting to the zero-copy shared-memory kernel
        (``parallel-shm``): the packed word matrix is published once via
        ``multiprocessing.shared_memory`` and persistent workers attach
        to it instead of receiving pickled row slices. Requires a
        parallel configuration (``n_jobs > 1`` or a parallel engine
        spec).
    measure:
        The interestingness measure bound to this execution context — a
        registered spec (``"ri"``, ``"kong-interest"``, ``"coherent"``)
        or a ready :class:`~repro.measures.registry.InterestMeasure`
        instance. Miners run under this session default to it, exactly
        as they default to the session's engine.
    trace_path, metrics:
        Observability sinks for :meth:`observed` (see
        :mod:`repro.obs`).
    """

    def __init__(
        self,
        transactions: Any,
        taxonomy: Taxonomy | None = None,
        engine: str | CountingEngine = DEFAULT_ENGINE,
        *,
        n_jobs: int | None = None,
        shard_rows: int | None = None,
        use_cache: bool = True,
        cache_bytes: int | None = None,
        packed: bool = False,
        batch_words: int | None = None,
        shm: bool = False,
        segment_rows: int | None = None,
        max_resident_bytes: int | None = None,
        spill_dir: str | None = None,
        measure: str | InterestMeasure = DEFAULT_MEASURE,
        trace_path: str | None = None,
        metrics: str = "none",
        default_run_kind: str = "mine",
    ) -> None:
        self.transactions = transactions
        self.taxonomy = taxonomy
        self.engine = create_engine(
            engine,
            EnginePolicy(
                n_jobs=n_jobs,
                shard_rows=shard_rows,
                use_cache=use_cache,
                cache_bytes=cache_bytes,
                packed=packed,
                batch_words=batch_words,
                shm=shm,
                segment_rows=segment_rows,
                max_resident_bytes=max_resident_bytes,
                spill_dir=spill_dir,
            ),
        )
        self.measure = create_measure(measure)
        self.trace_path = trace_path
        self.metrics = metrics
        if default_run_kind not in RUN_KINDS:
            raise ConfigError(
                f"unknown run kind {default_run_kind!r}; "
                f"choose from {RUN_KINDS}"
            )
        self.default_run_kind = default_run_kind
        self._state: EngineState | None = None
        self._run_kind = default_run_kind
        self.cache_stats = CacheStats()
        self.parallel_stats = ParallelStats()

    @classmethod
    def from_config(
        cls,
        transactions: Any,
        taxonomy: Taxonomy | None,
        config,
        *,
        default_run_kind: str = "mine",
    ) -> "MiningSession":
        """Build the session a :class:`MiningConfig` describes.

        *default_run_kind* sets the counter prefix runs report under
        when the miners open them with a bare :meth:`begin_run` — the
        streaming watcher passes ``"streaming"`` so its re-mines stay
        separate from offline ``mine.*`` runs.
        """
        return cls(
            transactions,
            taxonomy,
            engine=config.engine,
            n_jobs=config.n_jobs,
            shard_rows=config.shard_rows,
            use_cache=config.use_cache,
            cache_bytes=config.cache_bytes,
            packed=config.packed,
            shm=config.shm,
            segment_rows=config.segment_rows,
            max_resident_bytes=config.max_resident_bytes,
            spill_dir=config.spill_dir,
            measure=create_measure(
                config.measure,
                MeasurePolicy(figure3_literal=config.figure3_literal),
            ),
            trace_path=config.trace_path,
            metrics=config.metrics,
            default_run_kind=default_run_kind,
        )

    # -- counting -----------------------------------------------------

    def count(
        self,
        candidates: Collection[Itemset],
        *,
        transactions: Any = None,
        taxonomy: Taxonomy | None | object = _UNSET,
        restrict_to_candidate_items: bool = False,
        serial: bool = False,
    ) -> dict[Itemset, int]:
        """Count one logical pass with the session's engine.

        *transactions* / *taxonomy* override the session's defaults for
        this pass only (the EstMerge sample, a flat count under a
        generalized session). *serial* unwraps the parallel wrapper for
        passes too small to shard profitably.
        """
        engine = self.engine
        if serial and engine.wraps:
            engine = engine.inner
        source = self.transactions if transactions is None else transactions
        tax = self.taxonomy if taxonomy is _UNSET else taxonomy
        if (
            engine is self.engine
            and source is self.transactions
            and tax is self.taxonomy
        ):
            if self._state is None:
                self._state = engine.prepare(source, tax)
            state = self._state
        else:
            state = engine.prepare(source, tax)
        return count_pass(
            engine,
            state,
            candidates,
            restrict_to_candidate_items=restrict_to_candidate_items,
            cache_stats=self.cache_stats,
            parallel_stats=self.parallel_stats,
        )

    # -- run lifecycle ------------------------------------------------

    def begin_run(self, kind: str | None = None) -> None:
        """Start a fresh run of the given kind: reset the accumulators.

        A second ``mine()`` on the same session must never report the
        first run's cache/shard activity. *kind* (one of
        :data:`RUN_KINDS`; ``None`` means the session's
        ``default_run_kind``) selects the counter prefix
        :meth:`publish_run` reports under: the offline miners open runs
        with a bare ``begin_run()`` — ``"mine"`` unless the session was
        built for streaming; the serving layer's on-demand selective
        generation passes ``"serving"`` so query-time mining stays
        separate from offline runs in the metrics registry.
        """
        if kind is None:
            kind = self.default_run_kind
        if kind not in RUN_KINDS:
            raise ConfigError(
                f"unknown run kind {kind!r}; choose from {RUN_KINDS}"
            )
        self._run_kind = kind
        self.cache_stats = CacheStats()
        self.parallel_stats = ParallelStats()

    def observed(self) -> contextlib.AbstractContextManager:
        """An observability session with this session's sinks."""
        return obs.obs_session(
            trace_path=self.trace_path, metrics=self.metrics
        )

    def publish_run(self, stats) -> None:
        """Fold one run's accounting into the active obs session.

        The session accumulates cache/parallel activity in private
        per-run registries; when an observability session is active,
        those registries are merged into it here and the run's headline
        figures land under ``<kind>.*`` counters — ``mine.*`` by
        default, ``serving.*`` when the run was opened with
        ``begin_run(kind="serving")``. *stats* is any object with the
        :class:`~repro.core.negmining.MiningStats` counters.
        """
        state = obs.current()
        if state is None:
            return
        registry = state.registry
        if self.parallel_stats.registry is not registry:
            registry.merge(self.parallel_stats.registry)
        if self.cache_stats.registry is not registry:
            registry.merge(self.cache_stats.registry)
        kind = self._run_kind
        registry.incr(f"{kind}.runs")
        registry.incr(f"{kind}.data_passes", stats.data_passes)
        registry.incr(f"{kind}.physical_passes", stats.physical_passes)
        registry.incr(f"{kind}.large_itemsets", stats.large_itemsets)
        registry.incr(f"{kind}.candidates", stats.candidates_generated)
        registry.incr(f"{kind}.negative_itemsets", stats.negative_itemsets)

    def __repr__(self) -> str:
        return (
            f"MiningSession(engine={self.engine.spec!r}, "
            f"measure={self.measure.spec!r}, "
            f"taxonomy={'yes' if self.taxonomy is not None else 'no'})"
        )
